//! The `.swdb` on-disk layout (version 1).
//!
//! Everything is little-endian. The file is one fixed header followed by
//! the metadata sections and, 64-byte aligned, the residue arena:
//!
//! ```text
//! off  size  field
//!   0     8  magic            b"SWHYBDB\0"
//!   8     4  version          u32 (= 1)
//!  12     4  flags            u32 (bit 0: perm section present)
//!  16     1  alphabet         u8 (0 = DNA, 1 = RNA, 2 = protein)
//!  17     7  pad              zero
//!  24     8  db_digest        u64  FNV-1a over ids + codes (db order)
//!  32     8  num_seqs         u64
//!  40     8  total_residues   u64  (= arena_len)
//!  48     8  max_len          u64
//!  56     8  min_len          u64
//!  64     8  name_off         u64 ┐ database name (UTF-8)
//!  72     8  name_len         u64 ┘
//!  80     8  ids_off          u64 ┐ concatenated id bytes (UTF-8)
//!  88     8  ids_len          u64 ┘
//!  96     8  id_offsets_off   u64  (num_seqs + 1) × u64 prefix offsets
//! 104     8  spans_off        u64  num_seqs × (offset u64, len u64)
//! 112     8  perm_off         u64  num_seqs × u64 (iff flags bit 0)
//! 120     8  chunks_off       u64  ⌈num_seqs / chunk_stride⌉ × u64
//! 128     8  chunk_stride     u64  sequences per chunk entry
//! 136     8  arena_off        u64  64-byte aligned
//! 144     8  arena_len        u64
//! 152     8  meta_checksum    u64  FNV-1a over bytes [0, 152) ++ every
//!                                  metadata section, in field order
//! 160     8  arena_checksum   u64  FNV-1a over the arena bytes
//! 168        sections…
//! ```
//!
//! The arena holds every sequence's codes concatenated **in database
//! order** — a scan position over it *is* the database index, the
//! invariant the serve shard scheduler depends on. The length-sorted scan
//! permutation is carried as metadata for consumers that re-pack a
//! sorted arena. `meta_checksum` is always verified on open (it is tiny);
//! `arena_checksum` and the db digest re-hash are opt-in
//! ([`crate::Verify::Full`]) so cold start stays O(metadata), with an
//! always-on code-bound scan guaranteeing corrupt arena bytes can never
//! reach a kernel out of matrix range.

use swhybrid_seq::Alphabet;

use crate::error::StoreError;

/// Magic bytes identifying a `.swdb` store.
pub const MAGIC: &[u8; 8] = b"SWHYBDB\0";

/// Format version this build reads and writes.
pub const VERSION: u32 = 1;

/// Fixed header length in bytes.
pub const HEADER_LEN: u64 = 168;

/// Required alignment of the arena section.
pub const ARENA_ALIGN: u64 = 64;

/// Flag bit: the length-sorted scan permutation section is present.
pub const FLAG_HAS_PERM: u32 = 1;

/// Byte range of the header covered by `meta_checksum` (both checksum
/// fields excluded).
pub const META_CHECKSUM_COVERS: u64 = 152;

/// Alphabet → header byte.
pub fn alphabet_code(a: Alphabet) -> u8 {
    match a {
        Alphabet::Dna => 0,
        Alphabet::Rna => 1,
        Alphabet::Protein => 2,
    }
}

/// Header byte → alphabet.
pub fn alphabet_from_code(code: u8) -> Result<Alphabet, StoreError> {
    match code {
        0 => Ok(Alphabet::Dna),
        1 => Ok(Alphabet::Rna),
        2 => Ok(Alphabet::Protein),
        other => Err(StoreError::BadGeometry(format!(
            "unknown alphabet code {other}"
        ))),
    }
}

/// The parsed fixed header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    pub flags: u32,
    pub alphabet: Alphabet,
    pub db_digest: u64,
    pub num_seqs: u64,
    pub total_residues: u64,
    pub max_len: u64,
    pub min_len: u64,
    pub name_off: u64,
    pub name_len: u64,
    pub ids_off: u64,
    pub ids_len: u64,
    pub id_offsets_off: u64,
    pub spans_off: u64,
    pub perm_off: u64,
    pub chunks_off: u64,
    pub chunk_stride: u64,
    pub arena_off: u64,
    pub arena_len: u64,
    pub meta_checksum: u64,
    pub arena_checksum: u64,
}

impl Header {
    /// Whether the permutation section is present.
    pub fn has_perm(&self) -> bool {
        self.flags & FLAG_HAS_PERM != 0
    }

    /// Byte length of the id-offsets section.
    pub fn id_offsets_len(&self) -> u64 {
        (self.num_seqs + 1) * 8
    }

    /// Byte length of the spans section.
    pub fn spans_len(&self) -> u64 {
        self.num_seqs * 16
    }

    /// Byte length of the permutation section (0 when absent).
    pub fn perm_len(&self) -> u64 {
        if self.has_perm() {
            self.num_seqs * 8
        } else {
            0
        }
    }

    /// Number of chunk entries.
    pub fn num_chunks(&self) -> u64 {
        self.num_seqs.div_ceil(self.chunk_stride.max(1))
    }

    /// Byte length of the chunks section.
    pub fn chunks_len(&self) -> u64 {
        self.num_chunks() * 8
    }

    /// Serialise to the fixed 168-byte layout.
    pub fn to_bytes(&self) -> [u8; HEADER_LEN as usize] {
        let mut out = [0u8; HEADER_LEN as usize];
        out[0..8].copy_from_slice(MAGIC);
        out[8..12].copy_from_slice(&VERSION.to_le_bytes());
        out[12..16].copy_from_slice(&self.flags.to_le_bytes());
        out[16] = alphabet_code(self.alphabet);
        let fields = [
            (24, self.db_digest),
            (32, self.num_seqs),
            (40, self.total_residues),
            (48, self.max_len),
            (56, self.min_len),
            (64, self.name_off),
            (72, self.name_len),
            (80, self.ids_off),
            (88, self.ids_len),
            (96, self.id_offsets_off),
            (104, self.spans_off),
            (112, self.perm_off),
            (120, self.chunks_off),
            (128, self.chunk_stride),
            (136, self.arena_off),
            (144, self.arena_len),
            (152, self.meta_checksum),
            (160, self.arena_checksum),
        ];
        for (off, v) in fields {
            out[off..off + 8].copy_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Parse and structurally validate the fixed header from the start of
    /// `bytes` (the whole file).
    pub fn parse(bytes: &[u8]) -> Result<Header, StoreError> {
        let have = bytes.len() as u64;
        if have < HEADER_LEN {
            return Err(StoreError::Truncated {
                what: "fixed header".into(),
                need: HEADER_LEN,
                have,
            });
        }
        if &bytes[0..8] != MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(&bytes[0..8]);
            return Err(StoreError::BadMagic { found });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(StoreError::BadVersion {
                found: version,
                supported: VERSION,
            });
        }
        let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        let header = Header {
            flags: u32::from_le_bytes(bytes[12..16].try_into().unwrap()),
            alphabet: alphabet_from_code(bytes[16])?,
            db_digest: u64_at(24),
            num_seqs: u64_at(32),
            total_residues: u64_at(40),
            max_len: u64_at(48),
            min_len: u64_at(56),
            name_off: u64_at(64),
            name_len: u64_at(72),
            ids_off: u64_at(80),
            ids_len: u64_at(88),
            id_offsets_off: u64_at(96),
            spans_off: u64_at(104),
            perm_off: u64_at(112),
            chunks_off: u64_at(120),
            chunk_stride: u64_at(128),
            arena_off: u64_at(136),
            arena_len: u64_at(144),
            meta_checksum: u64_at(152),
            arena_checksum: u64_at(160),
        };
        if header.chunk_stride == 0 {
            return Err(StoreError::BadGeometry("chunk stride of zero".into()));
        }
        if header.total_residues != header.arena_len {
            return Err(StoreError::BadGeometry(format!(
                "total_residues {} != arena_len {}",
                header.total_residues, header.arena_len
            )));
        }
        if !header.arena_off.is_multiple_of(ARENA_ALIGN) {
            return Err(StoreError::Misaligned {
                section: "arena",
                offset: header.arena_off,
                align: ARENA_ALIGN,
            });
        }
        for (section, off, len) in header.sections() {
            let end = off.checked_add(len).ok_or_else(|| {
                StoreError::BadGeometry(format!("{section} section offset + length overflows"))
            })?;
            if off < HEADER_LEN {
                return Err(StoreError::BadGeometry(format!(
                    "{section} section at {off} overlaps the header"
                )));
            }
            if end > have {
                return Err(StoreError::Truncated {
                    what: format!("{section} section"),
                    need: end,
                    have,
                });
            }
        }
        Ok(header)
    }

    /// Every section as `(name, offset, byte length)`, in file order.
    pub fn sections(&self) -> Vec<(&'static str, u64, u64)> {
        let mut v = vec![
            ("name", self.name_off, self.name_len),
            ("ids", self.ids_off, self.ids_len),
            ("id_offsets", self.id_offsets_off, self.id_offsets_len()),
            ("spans", self.spans_off, self.spans_len()),
        ];
        if self.has_perm() {
            v.push(("perm", self.perm_off, self.perm_len()));
        }
        v.push(("chunks", self.chunks_off, self.chunks_len()));
        v.push(("arena", self.arena_off, self.arena_len));
        v
    }

    /// The metadata sections covered by `meta_checksum` (everything except
    /// the arena), in checksum order.
    pub fn meta_sections(&self) -> Vec<(&'static str, u64, u64)> {
        let mut v = self.sections();
        v.pop(); // arena
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Header {
        Header {
            flags: FLAG_HAS_PERM,
            alphabet: Alphabet::Protein,
            db_digest: 0xdead_beef_cafe_f00d,
            num_seqs: 3,
            total_residues: 10,
            max_len: 5,
            min_len: 2,
            name_off: HEADER_LEN,
            name_len: 4,
            ids_off: HEADER_LEN + 4,
            ids_len: 6,
            id_offsets_off: HEADER_LEN + 10,
            spans_off: HEADER_LEN + 10 + 32,
            perm_off: HEADER_LEN + 10 + 32 + 48,
            chunks_off: HEADER_LEN + 10 + 32 + 48 + 24,
            chunk_stride: 1024,
            arena_off: 320,
            arena_len: 10,
            meta_checksum: 1,
            arena_checksum: 2,
        }
    }

    #[test]
    fn header_round_trips() {
        let h = sample();
        let mut file = h.to_bytes().to_vec();
        file.resize(h.arena_off as usize + h.arena_len as usize, 0);
        assert_eq!(Header::parse(&file).unwrap(), h);
    }

    #[test]
    fn alphabet_codes_round_trip() {
        for a in [Alphabet::Dna, Alphabet::Rna, Alphabet::Protein] {
            assert_eq!(alphabet_from_code(alphabet_code(a)).unwrap(), a);
        }
        assert!(alphabet_from_code(9).is_err());
    }
}
