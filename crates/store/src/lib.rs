//! Persistent memory-mapped database store for `swhybrid`.
//!
//! The paper's §IV-B introduces an indexed sequence-file format so the
//! master can retrieve sequences without re-parsing flat FASTA;
//! `seq::index` reproduces it for *queries*. This crate is the *database*
//! side: a versioned, checksummed `.swdb` file holding everything the
//! runtime previously reconstructed per boot — the encoded flat residue
//! arena, per-sequence spans and ids, the length-sorted scan permutation,
//! per-chunk residue counts for shard balancing, and the FNV db digest —
//! laid out little-endian with a 64-byte-aligned arena so [`DbArena`]
//! borrows straight from the mapping with zero copies.
//!
//! * [`format`] — the on-disk layout (header, sections, checksums),
//! * [`writer`] — atomic store builds (temp file + fsync + rename),
//! * [`reader`] — validated opens and zero-copy [`DbSnapshot`] loads,
//! * [`mmap`] — read-only file mapping with an owned-read fallback,
//! * [`error`] — one typed variant per way a store can be corrupt.
//!
//! [`DbArena`]: swhybrid_seq::DbArena
//! [`DbSnapshot`]: swhybrid_seq::DbSnapshot

pub mod error;
pub mod format;
pub mod mmap;
pub mod reader;
pub mod writer;

pub use error::StoreError;
pub use mmap::StoreBytes;
pub use reader::{Store, Verify};
pub use writer::{build_store, BuildSummary};
