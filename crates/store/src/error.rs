//! Typed errors for the `.swdb` store.
//!
//! Every way a store file can be wrong — truncated, foreign, version-skewed,
//! bit-flipped, or internally inconsistent — maps to a distinct variant, so
//! callers (and operators reading daemon logs) see *what* is corrupt, and no
//! corruption path ever reaches the scan kernels as a panic or a silently
//! wrong score.

use std::fmt;
use std::io;

use swhybrid_seq::SeqError;

/// Errors produced while building or opening a `.swdb` store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not begin with the `.swdb` magic.
    BadMagic {
        /// The first eight bytes actually found.
        found: [u8; 8],
    },
    /// The file's format version is not supported by this build.
    BadVersion {
        /// Version recorded in the file.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The file ends before a section it promises.
    Truncated {
        /// What was being read.
        what: String,
        /// Bytes required.
        need: u64,
        /// Bytes actually present.
        have: u64,
    },
    /// A section offset violates its alignment requirement.
    Misaligned {
        /// Section name.
        section: &'static str,
        /// Offset recorded in the header.
        offset: u64,
        /// Required alignment.
        align: u64,
    },
    /// Header fields or section contents are internally inconsistent.
    BadGeometry(String),
    /// A stored checksum does not match the bytes on disk.
    ChecksumMismatch {
        /// Which checksum failed ("metadata" or "arena").
        section: &'static str,
        /// Checksum recorded in the header.
        recorded: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
    /// The recorded db digest does not match the re-hashed content
    /// (only checked on verified opens).
    DigestMismatch {
        /// Digest recorded in the header.
        recorded: u64,
        /// Digest of the content actually present.
        actual: u64,
    },
    /// An arena byte is not a valid code for the store's alphabet — a
    /// kernel fed this byte would index past its score matrix.
    CodeOutOfRange {
        /// Byte offset within the arena.
        position: u64,
        /// The offending byte.
        byte: u8,
        /// Number of codes in the alphabet.
        alphabet_size: u8,
    },
    /// A sequence-layer invariant failed while assembling the snapshot.
    Seq(SeqError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::BadMagic { found } => write!(
                f,
                "not a .swdb store (magic {:?})",
                String::from_utf8_lossy(found)
            ),
            StoreError::BadVersion { found, supported } => write!(
                f,
                "unsupported store version {found} (this build reads version {supported})"
            ),
            StoreError::Truncated { what, need, have } => {
                write!(f, "truncated store: {what} needs {need} bytes, file has {have}")
            }
            StoreError::Misaligned {
                section,
                offset,
                align,
            } => write!(
                f,
                "misaligned store: {section} section at offset {offset}, required alignment {align}"
            ),
            StoreError::BadGeometry(msg) => write!(f, "inconsistent store geometry: {msg}"),
            StoreError::ChecksumMismatch {
                section,
                recorded,
                actual,
            } => write!(
                f,
                "{section} checksum mismatch: header records {recorded:016x}, bytes hash to {actual:016x}"
            ),
            StoreError::DigestMismatch { recorded, actual } => write!(
                f,
                "db digest mismatch: header records {recorded:016x}, content hashes to {actual:016x}"
            ),
            StoreError::CodeOutOfRange {
                position,
                byte,
                alphabet_size,
            } => write!(
                f,
                "arena byte {byte} at offset {position} is not a valid code (alphabet has {alphabet_size} codes)"
            ),
            StoreError::Seq(e) => write!(f, "sequence layer rejected store contents: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Seq(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<SeqError> for StoreError {
    fn from(e: SeqError) -> Self {
        StoreError::Seq(e)
    }
}
