//! Read-only file bytes, memory-mapped where the platform allows.
//!
//! No external mmap crate is available in this build environment, so the
//! Unix path declares the two libc symbols it needs directly (std already
//! links libc there). Elsewhere — or when mapping fails — the file is read
//! into an owned buffer; callers cannot tell the difference except through
//! [`StoreBytes::is_mapped`].
//!
//! The mapping is `MAP_PRIVATE` over an immutable store file. Store builds
//! are atomic (temp file + rename), so the mapped inode is never rewritten
//! in place; a reload maps a *new* file while old snapshots keep the old
//! mapping alive until their last `Arc` drops.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

#[cfg(unix)]
mod sys {
    use core::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub fn map_failed(ptr: *mut c_void) -> bool {
        ptr as isize == -1
    }
}

enum Inner {
    Owned(Vec<u8>),
    #[cfg(unix)]
    Mapped {
        ptr: *const u8,
        len: usize,
    },
}

/// An immutable byte buffer backing a store: a private file mapping on
/// Unix, an owned read elsewhere.
pub struct StoreBytes {
    inner: Inner,
}

// The mapped region is read-only for the lifetime of the value, so sharing
// the raw pointer across threads is sound.
#[cfg(unix)]
unsafe impl Send for StoreBytes {}
#[cfg(unix)]
unsafe impl Sync for StoreBytes {}

impl StoreBytes {
    /// Map (or read) the whole of `path`.
    pub fn open(path: impl AsRef<Path>) -> io::Result<StoreBytes> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file too large for address space",
            ));
        }
        let len = len as usize;
        #[cfg(unix)]
        {
            // mmap of length 0 is EINVAL; an empty file is trivially owned.
            if len > 0 {
                use std::os::unix::io::AsRawFd;
                let ptr = unsafe {
                    sys::mmap(
                        std::ptr::null_mut(),
                        len,
                        sys::PROT_READ,
                        sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if !sys::map_failed(ptr) {
                    return Ok(StoreBytes {
                        inner: Inner::Mapped {
                            ptr: ptr as *const u8,
                            len,
                        },
                    });
                }
                // Mapping refused (e.g. odd filesystem): fall through to read.
            }
        }
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(StoreBytes {
            inner: Inner::Owned(buf),
        })
    }

    /// Wrap an in-memory buffer (tests, corruption injection).
    pub fn from_vec(bytes: Vec<u8>) -> StoreBytes {
        StoreBytes {
            inner: Inner::Owned(bytes),
        }
    }

    /// Whether the bytes come from a live memory mapping.
    pub fn is_mapped(&self) -> bool {
        match self.inner {
            Inner::Owned(_) => false,
            #[cfg(unix)]
            Inner::Mapped { .. } => true,
        }
    }

    /// Byte length.
    pub fn len(&self) -> usize {
        self.as_ref().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl AsRef<[u8]> for StoreBytes {
    fn as_ref(&self) -> &[u8] {
        match &self.inner {
            Inner::Owned(v) => v,
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }
}

impl Drop for StoreBytes {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Inner::Mapped { ptr, len } = self.inner {
            unsafe {
                sys::munmap(ptr as *mut core::ffi::c_void, len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_and_reads_back_file_contents() {
        let dir = std::env::temp_dir().join(format!("swdb_mmap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bytes.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(70_000).collect();
        File::create(&path).unwrap().write_all(&payload).unwrap();
        let bytes = StoreBytes::open(&path).unwrap();
        assert_eq!(bytes.as_ref(), &payload[..]);
        #[cfg(unix)]
        assert!(bytes.is_mapped());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_file_is_owned_and_empty() {
        let dir = std::env::temp_dir().join(format!("swdb_mmap_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        File::create(&path).unwrap();
        let bytes = StoreBytes::open(&path).unwrap();
        assert!(bytes.is_empty());
        assert!(!bytes.is_mapped());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_across_threads() {
        let bytes = std::sync::Arc::new(StoreBytes::from_vec(vec![7u8; 1024]));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = bytes.clone();
                std::thread::spawn(move || (*b).as_ref().iter().map(|&x| x as u64).sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7 * 1024);
        }
    }
}
