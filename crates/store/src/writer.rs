//! Building `.swdb` stores.
//!
//! A build is atomic: the store is assembled in a temp file next to the
//! destination, flushed and fsynced, then renamed into place — a daemon
//! hot-reloading onto the path can never observe a half-written store.
//! The arena is streamed straight from the encoded sequences, so peak
//! memory is the encoded database plus O(metadata), not 2× the residues.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use swhybrid_seq::digest::{db_digest, Fnv1a};
use swhybrid_seq::sequence::EncodedSequence;
use swhybrid_seq::snapshot::CHUNK_STRIDE;
use swhybrid_seq::Alphabet;

use crate::error::StoreError;
use crate::format::{Header, ARENA_ALIGN, FLAG_HAS_PERM, HEADER_LEN};

/// What a finished build wrote.
#[derive(Debug, Clone)]
pub struct BuildSummary {
    /// Final store path.
    pub path: PathBuf,
    /// Sequences stored.
    pub sequences: u64,
    /// Residues stored (arena bytes).
    pub residues: u64,
    /// The FNV db digest recorded in the header.
    pub db_digest: u64,
    /// Total file size in bytes.
    pub file_bytes: u64,
}

/// Build a `.swdb` store at `path` from encoded sequences (database order).
///
/// All sequences must share one alphabet; the length-sorted scan
/// permutation is always computed and stored.
pub fn build_store(
    path: impl AsRef<Path>,
    name: &str,
    subjects: &[EncodedSequence],
) -> Result<BuildSummary, StoreError> {
    let path = path.as_ref();
    let alphabet = subjects
        .first()
        .map(|s| s.alphabet)
        .unwrap_or(Alphabet::Protein);
    if let Some(bad) = subjects.iter().find(|s| s.alphabet != alphabet) {
        return Err(StoreError::BadGeometry(format!(
            "sequence {:?} is encoded in {:?}, database is {:?}",
            bad.id, bad.alphabet, alphabet
        )));
    }

    let num_seqs = subjects.len() as u64;
    let total_residues: u64 = subjects.iter().map(|s| s.len() as u64).sum();
    let max_len = subjects.iter().map(|s| s.len() as u64).max().unwrap_or(0);
    let min_len = subjects.iter().map(|s| s.len() as u64).min().unwrap_or(0);

    // Metadata sections.
    let name_bytes = name.as_bytes();
    let mut ids = Vec::new();
    let mut id_offsets = Vec::with_capacity(subjects.len() + 1);
    id_offsets.push(0u64);
    for s in subjects {
        ids.extend_from_slice(s.id.as_bytes());
        id_offsets.push(ids.len() as u64);
    }
    let mut spans = Vec::with_capacity(subjects.len());
    let mut cursor = 0u64;
    for s in subjects {
        spans.push((cursor, s.len() as u64));
        cursor += s.len() as u64;
    }
    let mut perm: Vec<u64> = (0..num_seqs).collect();
    perm.sort_by_key(|&i| subjects[i as usize].len());
    let chunks: Vec<u64> = (0..subjects.len().div_ceil(CHUNK_STRIDE))
        .map(|j| {
            subjects[j * CHUNK_STRIDE..((j + 1) * CHUNK_STRIDE).min(subjects.len())]
                .iter()
                .map(|s| s.len() as u64)
                .sum()
        })
        .collect();

    // Lay out the file.
    let name_off = HEADER_LEN;
    let ids_off = name_off + name_bytes.len() as u64;
    let id_offsets_off = ids_off + ids.len() as u64;
    let spans_off = id_offsets_off + id_offsets.len() as u64 * 8;
    let perm_off = spans_off + spans.len() as u64 * 16;
    let chunks_off = perm_off + perm.len() as u64 * 8;
    let chunks_end = chunks_off + chunks.len() as u64 * 8;
    let arena_off = chunks_end.div_ceil(ARENA_ALIGN) * ARENA_ALIGN;

    let le = |v: &[u64]| -> Vec<u8> { v.iter().flat_map(|x| x.to_le_bytes()).collect() };
    let id_offsets_bytes = le(&id_offsets);
    let spans_bytes: Vec<u8> = spans
        .iter()
        .flat_map(|&(o, l)| {
            let mut b = [0u8; 16];
            b[..8].copy_from_slice(&o.to_le_bytes());
            b[8..].copy_from_slice(&l.to_le_bytes());
            b
        })
        .collect();
    let perm_bytes = le(&perm);
    let chunks_bytes = le(&chunks);

    // Arena checksum streams over codes in database order.
    let mut arena_hash = Fnv1a::new();
    for s in subjects {
        arena_hash.update(&s.codes);
    }

    let mut header = Header {
        flags: FLAG_HAS_PERM,
        alphabet,
        db_digest: db_digest(subjects),
        num_seqs,
        total_residues,
        max_len,
        min_len,
        name_off,
        name_len: name_bytes.len() as u64,
        ids_off,
        ids_len: ids.len() as u64,
        id_offsets_off,
        spans_off,
        perm_off,
        chunks_off,
        chunk_stride: CHUNK_STRIDE as u64,
        arena_off,
        arena_len: total_residues,
        meta_checksum: 0,
        arena_checksum: arena_hash.finish(),
    };

    // meta_checksum covers header bytes [0, 152) — which exclude both
    // checksum fields — then every metadata section in field order.
    let mut meta_hash = Fnv1a::new();
    meta_hash.update(&header.to_bytes()[..crate::format::META_CHECKSUM_COVERS as usize]);
    meta_hash.update(name_bytes);
    meta_hash.update(&ids);
    meta_hash.update(&id_offsets_bytes);
    meta_hash.update(&spans_bytes);
    meta_hash.update(&perm_bytes);
    meta_hash.update(&chunks_bytes);
    header.meta_checksum = meta_hash.finish();

    // Assemble in a temp file, fsync, rename: readers see old or new, never
    // a torn store.
    let tmp_path = path.with_file_name(format!(
        "{}.tmp.{}",
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "store.swdb".into()),
        std::process::id()
    ));
    let file = File::create(&tmp_path)?;
    let mut w = BufWriter::new(file);
    let write = (|| -> Result<u64, StoreError> {
        w.write_all(&header.to_bytes())?;
        w.write_all(name_bytes)?;
        w.write_all(&ids)?;
        w.write_all(&id_offsets_bytes)?;
        w.write_all(&spans_bytes)?;
        w.write_all(&perm_bytes)?;
        w.write_all(&chunks_bytes)?;
        w.write_all(&vec![0u8; (arena_off - chunks_end) as usize])?;
        for s in subjects {
            w.write_all(&s.codes)?;
        }
        w.flush()?;
        let file = w.get_ref();
        file.sync_all()?;
        Ok(arena_off + total_residues)
    })();
    let file_bytes = match write {
        Ok(n) => n,
        Err(e) => {
            std::fs::remove_file(&tmp_path).ok();
            return Err(e);
        }
    };
    drop(w);
    if let Err(e) = std::fs::rename(&tmp_path, path) {
        std::fs::remove_file(&tmp_path).ok();
        return Err(e.into());
    }

    Ok(BuildSummary {
        path: path.to_path_buf(),
        sequences: num_seqs,
        residues: total_residues,
        db_digest: header.db_digest,
        file_bytes,
    })
}
