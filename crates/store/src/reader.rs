//! Opening `.swdb` stores and borrowing snapshots out of them.
//!
//! [`Store::open`] performs the always-on validation: fixed-header
//! geometry, section bounds, the metadata checksum (tiny), id/span/chunk
//! consistency, and a vectorizable code-bound sweep of the arena — the
//! last one guarantees that no corrupt byte can ever index a score matrix
//! out of range, even on the fast path. [`Store::open_verified`]
//! additionally re-hashes the arena checksum and the full db digest
//! (`--verify-store`, `db inspect`).
//!
//! [`Store::into_snapshot`] hands the daemon a [`DbSnapshot`] whose arena
//! **borrows the mapping** — residues are never copied; the kernels scan
//! the page cache directly.

use std::path::Path;
use std::sync::Arc;

use swhybrid_seq::arena::DbArena;
use swhybrid_seq::digest::db_digest_parts;
use swhybrid_seq::snapshot::DbSnapshot;
use swhybrid_seq::{Alphabet, SharedBytes};

use crate::error::StoreError;
use crate::format::Header;
use crate::mmap::StoreBytes;

/// How much of the store to check at open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verify {
    /// Structural validation, metadata checksum, arena code bounds.
    Quick,
    /// `Quick` plus the arena checksum and a full db-digest re-hash.
    Full,
}

/// An opened, validated `.swdb` store.
pub struct Store {
    bytes: Arc<StoreBytes>,
    header: Header,
    name: String,
    ids: Vec<String>,
    spans: Vec<(usize, usize)>,
    perm: Option<Vec<usize>>,
    chunks: Vec<u64>,
}

impl Store {
    /// Open with [`Verify::Quick`].
    pub fn open(path: impl AsRef<Path>) -> Result<Store, StoreError> {
        Store::open_with(path, Verify::Quick)
    }

    /// Open with [`Verify::Full`].
    pub fn open_verified(path: impl AsRef<Path>) -> Result<Store, StoreError> {
        Store::open_with(path, Verify::Full)
    }

    /// Open `path`, memory-mapping where possible, at the given
    /// verification level.
    pub fn open_with(path: impl AsRef<Path>, verify: Verify) -> Result<Store, StoreError> {
        Store::from_bytes(StoreBytes::open(path)?, verify)
    }

    /// Validate an already-loaded byte buffer (tests, corruption
    /// injection).
    pub fn from_bytes(bytes: StoreBytes, verify: Verify) -> Result<Store, StoreError> {
        let data = bytes.as_ref();
        let header = Header::parse(data)?;

        // Metadata checksum first: everything below parses those bytes.
        let mut meta_hash = swhybrid_seq::digest::Fnv1a::new();
        meta_hash.update(&data[..crate::format::META_CHECKSUM_COVERS as usize]);
        for (_, off, len) in header.meta_sections() {
            meta_hash.update(&data[off as usize..(off + len) as usize]);
        }
        let actual = meta_hash.finish();
        if actual != header.meta_checksum {
            return Err(StoreError::ChecksumMismatch {
                section: "metadata",
                recorded: header.meta_checksum,
                actual,
            });
        }

        let section = |off: u64, len: u64| &data[off as usize..(off + len) as usize];
        let u64s = |off: u64, count: u64| -> Vec<u64> {
            section(off, count * 8)
                .chunks_exact(8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                .collect()
        };

        let name = String::from_utf8(section(header.name_off, header.name_len).to_vec())
            .map_err(|_| StoreError::BadGeometry("database name is not UTF-8".into()))?;

        // Ids: prefix offsets must be monotonic and end at ids_len.
        let id_offsets = u64s(header.id_offsets_off, header.num_seqs + 1);
        if id_offsets.first() != Some(&0) || id_offsets.last() != Some(&header.ids_len) {
            return Err(StoreError::BadGeometry(format!(
                "id offsets span [{:?}, {:?}], ids section holds {} bytes",
                id_offsets.first(),
                id_offsets.last(),
                header.ids_len
            )));
        }
        let ids_bytes = section(header.ids_off, header.ids_len);
        let mut ids = Vec::with_capacity(header.num_seqs as usize);
        for (i, w) in id_offsets.windows(2).enumerate() {
            if w[1] < w[0] {
                return Err(StoreError::BadGeometry(format!(
                    "id offsets decrease at entry {i}"
                )));
            }
            let id = std::str::from_utf8(&ids_bytes[w[0] as usize..w[1] as usize])
                .map_err(|_| StoreError::BadGeometry(format!("id {i} is not UTF-8")))?;
            ids.push(id.to_string());
        }

        let spans: Vec<(usize, usize)> = section(header.spans_off, header.spans_len())
            .chunks_exact(16)
            .map(|b| {
                (
                    u64::from_le_bytes(b[..8].try_into().unwrap()) as usize,
                    u64::from_le_bytes(b[8..].try_into().unwrap()) as usize,
                )
            })
            .collect();
        if let Some((max, min)) =
            spans
                .iter()
                .map(|&(_, l)| l as u64)
                .fold(None, |acc: Option<(u64, u64)>, l| {
                    Some(acc.map_or((l, l), |(mx, mn)| (mx.max(l), mn.min(l))))
                })
        {
            if max != header.max_len || min != header.min_len {
                return Err(StoreError::BadGeometry(format!(
                    "header records lengths [{}, {}], spans hold [{min}, {max}]",
                    header.min_len, header.max_len
                )));
            }
        }

        let perm = if header.has_perm() {
            Some(
                u64s(header.perm_off, header.num_seqs)
                    .into_iter()
                    .map(|v| v as usize)
                    .collect::<Vec<usize>>(),
            )
        } else {
            None
        };
        let chunks = u64s(header.chunks_off, header.num_chunks());

        // Always-on arena safety sweep: every byte must be a valid code, so
        // a Quick open can never feed an out-of-range byte to a kernel.
        // A max-reduction has no early exit, so the compiler vectorizes it;
        // only when it fails do we rescan to locate the offending byte.
        let arena = section(header.arena_off, header.arena_len);
        let bound = header.alphabet.size() as u8;
        let max_code = arena.iter().fold(0u8, |m, &b| m.max(b));
        if max_code >= bound {
            let pos = arena
                .iter()
                .position(|&b| b >= bound)
                .expect("max_code >= bound implies an offending byte exists");
            return Err(StoreError::CodeOutOfRange {
                position: pos as u64,
                byte: arena[pos],
                alphabet_size: bound,
            });
        }

        if verify == Verify::Full {
            let mut h = swhybrid_seq::digest::Fnv1a::new();
            h.update(arena);
            let actual = h.finish();
            if actual != header.arena_checksum {
                return Err(StoreError::ChecksumMismatch {
                    section: "arena",
                    recorded: header.arena_checksum,
                    actual,
                });
            }
        }

        let store = Store {
            bytes: Arc::new(bytes),
            header,
            name,
            ids,
            spans,
            perm,
            chunks,
        };

        if verify == Verify::Full {
            // Re-hash ids + codes and compare against the recorded digest.
            let arena = store.arena()?;
            let actual = db_digest_parts(&store.ids, &arena);
            if actual != store.header.db_digest {
                return Err(StoreError::DigestMismatch {
                    recorded: store.header.db_digest,
                    actual,
                });
            }
        }
        Ok(store)
    }

    /// The parsed header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Database name recorded in the store.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The alphabet the arena is encoded in.
    pub fn alphabet(&self) -> Alphabet {
        self.header.alphabet
    }

    /// The recorded FNV db digest — *trusted* on Quick opens; verified
    /// opens have re-hashed it.
    pub fn db_digest(&self) -> u64 {
        self.header.db_digest
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the store holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Subject ids, database order.
    pub fn ids(&self) -> &[String] {
        &self.ids
    }

    /// The length-sorted scan permutation, if stored.
    pub fn scan_permutation(&self) -> Option<&[usize]> {
        self.perm.as_deref()
    }

    /// Per-chunk residue counts ([`swhybrid_seq::snapshot::CHUNK_STRIDE`]
    /// sequences per entry).
    pub fn chunk_residues(&self) -> &[u64] {
        &self.chunks
    }

    /// Whether the bytes are served by a live memory mapping (as opposed
    /// to an owned read).
    pub fn is_mapped(&self) -> bool {
        self.bytes.is_mapped()
    }

    /// A database-order arena borrowing the mapped bytes (zero-copy).
    fn arena(&self) -> Result<DbArena, StoreError> {
        let shared: SharedBytes = self.bytes.clone();
        Ok(DbArena::from_shared(
            shared,
            self.header.arena_off as usize,
            self.header.arena_len as usize,
            self.spans.clone(),
            None,
        )?)
    }

    /// Turn the store into a [`DbSnapshot`] whose arena borrows the
    /// mapping. The stored chunk table is cross-checked against the spans.
    pub fn into_snapshot(self) -> Result<DbSnapshot, StoreError> {
        let arena = self.arena()?;
        Ok(DbSnapshot::from_parts(
            self.name,
            self.header.alphabet,
            self.ids,
            arena,
            self.header.db_digest,
            Some(&self.chunks),
        )?)
    }
}
