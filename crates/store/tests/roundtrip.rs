//! Build → open → snapshot round-trips: everything a store persists must
//! come back bit-identical, and the snapshot must be indistinguishable
//! from one packed out of the original sequences.

use std::path::PathBuf;

use swhybrid_seq::digest::db_digest;
use swhybrid_seq::sequence::EncodedSequence;
use swhybrid_seq::snapshot::DbSnapshot;
use swhybrid_seq::{Alphabet, DbArena};
use swhybrid_store::{build_store, Store};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swdb_rt_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn toy_db(lens: &[usize]) -> Vec<EncodedSequence> {
    lens.iter()
        .enumerate()
        .map(|(i, &len)| EncodedSequence {
            id: format!("subject-{i:03}"),
            codes: (0..len).map(|j| ((i * 7 + j) % 20) as u8).collect(),
            alphabet: Alphabet::Protein,
        })
        .collect()
}

#[test]
fn build_open_snapshot_round_trip() {
    let dir = tmp_dir("basic");
    let path = dir.join("db.swdb");
    let db = toy_db(&[40, 0, 17, 5, 5, 123]);
    let summary = build_store(&path, "toy-db", &db).unwrap();
    assert_eq!(summary.sequences, 6);
    assert_eq!(summary.residues, 190);
    assert_eq!(summary.db_digest, db_digest(&db));

    // Full verification must pass on a freshly built store.
    let store = Store::open_verified(&path).unwrap();
    assert_eq!(store.name(), "toy-db");
    assert_eq!(store.len(), 6);
    assert_eq!(store.alphabet(), Alphabet::Protein);
    assert_eq!(store.db_digest(), db_digest(&db));
    assert_eq!(store.ids()[3], "subject-003");

    // The stored scan permutation matches DbArena::length_sorted.
    let sorted = DbArena::length_sorted(&db);
    let expect: Vec<usize> = (0..db.len()).map(|p| sorted.db_index(p)).collect();
    assert_eq!(store.scan_permutation().unwrap(), &expect[..]);

    // The snapshot is indistinguishable from a FASTA-packed one.
    let snap = store.into_snapshot().unwrap();
    let packed = DbSnapshot::from_encoded("toy-db", &db);
    assert_eq!(snap.digest(), packed.digest());
    assert_eq!(snap.ids(), packed.ids());
    assert_eq!(snap.arena(), packed.arena());
    assert!(snap.arena().is_shared());
    assert_eq!(snap.to_encoded(), db);
    snap.verify_digest().unwrap();
    for shards in 1..8 {
        assert_eq!(snap.shard_ranges(shards), packed.shard_ranges(shards));
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_database_round_trips() {
    let dir = tmp_dir("empty");
    let path = dir.join("empty.swdb");
    build_store(&path, "", &[]).unwrap();
    let store = Store::open_verified(&path).unwrap();
    assert!(store.is_empty());
    let snap = store.into_snapshot().unwrap();
    assert_eq!(snap.len(), 0);
    assert_eq!(snap.digest(), db_digest(&[]));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quick_open_trusts_digest_without_rehash() {
    // Quick and Full opens agree on a healthy store; Quick is the serve
    // fast path, Full is --verify-store.
    let dir = tmp_dir("quick");
    let path = dir.join("db.swdb");
    let db = toy_db(&[9, 30, 2]);
    build_store(&path, "q", &db).unwrap();
    let quick = Store::open(&path).unwrap();
    let full = Store::open_verified(&path).unwrap();
    assert_eq!(quick.db_digest(), full.db_digest());
    assert_eq!(quick.ids(), full.ids());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn build_is_atomic_rename_and_leaves_no_temp() {
    let dir = tmp_dir("atomic");
    let path = dir.join("db.swdb");
    let db = toy_db(&[3, 3, 3]);
    build_store(&path, "one", &db).unwrap();
    // Rebuilding over an existing store replaces it atomically.
    let db2 = toy_db(&[8, 1]);
    build_store(&path, "two", &db2).unwrap();
    let store = Store::open_verified(&path).unwrap();
    assert_eq!(store.name(), "two");
    assert_eq!(store.len(), 2);
    // No .tmp droppings.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp files left behind: {leftovers:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mixed_alphabets_rejected_at_build() {
    let dir = tmp_dir("mixed");
    let mut db = toy_db(&[4]);
    db.push(EncodedSequence {
        id: "dna".into(),
        codes: vec![0, 1, 2],
        alphabet: Alphabet::Dna,
    });
    assert!(build_store(dir.join("x.swdb"), "", &db).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_outlives_store_handle() {
    // The snapshot's arena keeps the mapping alive after the Store (and
    // even the file) are gone — the daemon's in-flight-jobs guarantee.
    let dir = tmp_dir("outlive");
    let path = dir.join("db.swdb");
    let db = toy_db(&[64, 32]);
    build_store(&path, "", &db).unwrap();
    let snap = Store::open(&path).unwrap().into_snapshot().unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(snap.residues(0), &db[0].codes[..]);
    assert_eq!(snap.to_encoded(), db);
    std::fs::remove_dir_all(&dir).ok();
}
