//! Corruption suite: every way a `.swdb` can be damaged must surface as a
//! typed [`StoreError`] — never a panic, never a silently wrong snapshot.

use swhybrid_seq::sequence::EncodedSequence;
use swhybrid_seq::Alphabet;
use swhybrid_store::format::{ARENA_ALIGN, HEADER_LEN};
use swhybrid_store::{build_store, Store, StoreBytes, StoreError, Verify};

fn healthy_store_bytes() -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!(
        "swdb_corrupt_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("db.swdb");
    let db: Vec<EncodedSequence> = (0..20)
        .map(|i| EncodedSequence {
            id: format!("s{i}"),
            codes: (0..(10 + i * 3)).map(|j| ((i + j) % 20) as u8).collect(),
            alphabet: Alphabet::Protein,
        })
        .collect();
    build_store(&path, "corruptible", &db).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    bytes
}

fn open(bytes: Vec<u8>, verify: Verify) -> Result<Store, StoreError> {
    Store::from_bytes(StoreBytes::from_vec(bytes), verify)
}

fn u64_at(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())
}

fn put_u64(bytes: &mut [u8], off: usize, v: u64) {
    bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

#[test]
fn healthy_bytes_open_at_both_levels() {
    assert!(open(healthy_store_bytes(), Verify::Quick).is_ok());
    assert!(open(healthy_store_bytes(), Verify::Full).is_ok());
}

#[test]
fn wrong_magic_rejected() {
    let mut bytes = healthy_store_bytes();
    bytes[0] = b'X';
    match open(bytes, Verify::Quick) {
        Err(StoreError::BadMagic { .. }) => {}
        other => panic!("expected BadMagic, got {:?}", other.err()),
    }
}

#[test]
fn wrong_version_rejected() {
    let mut bytes = healthy_store_bytes();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    match open(bytes, Verify::Quick) {
        Err(StoreError::BadVersion {
            found: 99,
            supported: 1,
        }) => {}
        other => panic!("expected BadVersion, got {:?}", other.err()),
    }
}

#[test]
fn truncated_below_header_rejected() {
    let bytes = healthy_store_bytes();
    for keep in [0, 7, 8, 100, HEADER_LEN as usize - 1] {
        match open(bytes[..keep].to_vec(), Verify::Quick) {
            Err(StoreError::Truncated { .. }) | Err(StoreError::BadMagic { .. }) => {}
            other => panic!("keep={keep}: expected Truncated, got {:?}", other.err()),
        }
    }
}

#[test]
fn truncated_mid_arena_rejected() {
    let bytes = healthy_store_bytes();
    let cut = bytes.len() - 5;
    match open(bytes[..cut].to_vec(), Verify::Quick) {
        Err(StoreError::Truncated { what, .. }) => {
            assert!(what.contains("arena"), "{what}")
        }
        other => panic!("expected Truncated, got {:?}", other.err()),
    }
}

#[test]
fn flipped_arena_byte_caught_by_checksum() {
    let mut bytes = healthy_store_bytes();
    let arena_off = u64_at(&bytes, 136) as usize;
    // Flip a byte to another *in-range* code: only the checksum can see it.
    let target = arena_off + 11;
    bytes[target] = (bytes[target] + 1) % 20;
    match open(bytes.clone(), Verify::Full) {
        Err(StoreError::ChecksumMismatch {
            section: "arena", ..
        }) => {}
        other => panic!("expected arena ChecksumMismatch, got {:?}", other.err()),
    }
    // A Quick open cannot see an in-range flip — documented tradeoff —
    // but it must still open without panicking.
    assert!(open(bytes, Verify::Quick).is_ok());
}

#[test]
fn out_of_range_arena_byte_caught_even_on_quick_open() {
    let mut bytes = healthy_store_bytes();
    let arena_off = u64_at(&bytes, 136) as usize;
    bytes[arena_off + 3] = 200; // not a protein code
    match open(bytes, Verify::Quick) {
        Err(StoreError::CodeOutOfRange {
            position: 3,
            byte: 200,
            ..
        }) => {}
        other => panic!("expected CodeOutOfRange, got {:?}", other.err()),
    }
}

#[test]
fn flipped_metadata_byte_caught_by_meta_checksum() {
    let mut bytes = healthy_store_bytes();
    let ids_off = u64_at(&bytes, 80) as usize;
    bytes[ids_off] ^= 0x01; // rename a subject
    match open(bytes, Verify::Quick) {
        Err(StoreError::ChecksumMismatch {
            section: "metadata",
            ..
        }) => {}
        other => panic!("expected metadata ChecksumMismatch, got {:?}", other.err()),
    }
}

#[test]
fn misaligned_arena_offset_rejected() {
    let mut bytes = healthy_store_bytes();
    let arena_off = u64_at(&bytes, 136);
    assert_eq!(arena_off % ARENA_ALIGN, 0);
    put_u64(&mut bytes, 136, arena_off + 1);
    match open(bytes, Verify::Quick) {
        Err(StoreError::Misaligned {
            section: "arena", ..
        }) => {}
        other => panic!("expected Misaligned, got {:?}", other.err()),
    }
}

#[test]
fn section_offset_pointing_into_header_rejected() {
    let mut bytes = healthy_store_bytes();
    put_u64(&mut bytes, 104, 8); // spans inside the fixed header
    match open(bytes, Verify::Quick) {
        Err(StoreError::BadGeometry(msg)) => assert!(msg.contains("spans"), "{msg}"),
        other => panic!("expected BadGeometry, got {:?}", other.err()),
    }
}

#[test]
fn section_offset_past_eof_rejected() {
    let mut bytes = healthy_store_bytes();
    let len = bytes.len() as u64;
    put_u64(&mut bytes, 96, len + 1024); // id_offsets beyond the file
    match open(bytes, Verify::Quick) {
        Err(StoreError::Truncated { what, .. }) => {
            assert!(what.contains("id_offsets"), "{what}")
        }
        other => panic!("expected Truncated, got {:?}", other.err()),
    }
}

#[test]
fn overflowing_section_offset_rejected() {
    let mut bytes = healthy_store_bytes();
    put_u64(&mut bytes, 136, u64::MAX - 63); // aligned, but off + len overflows
    match open(bytes, Verify::Quick) {
        Err(StoreError::BadGeometry(_)) | Err(StoreError::Truncated { .. }) => {}
        other => panic!("expected geometry error, got {:?}", other.err()),
    }
}

/// Recompute and patch the metadata checksum the way the writer does —
/// the tool of a *consistent* forger, and of these tests.
fn refresh_meta_checksum(bytes: &mut [u8]) {
    let num_seqs = u64_at(bytes, 32);
    let has_perm = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) & 1 != 0;
    let stride = u64_at(bytes, 128).max(1);
    let chunks = num_seqs.div_ceil(stride);
    let mut sections = vec![
        (u64_at(bytes, 64), u64_at(bytes, 72)),  // name
        (u64_at(bytes, 80), u64_at(bytes, 88)),  // ids
        (u64_at(bytes, 96), (num_seqs + 1) * 8), // id_offsets
        (u64_at(bytes, 104), num_seqs * 16),     // spans
    ];
    if has_perm {
        sections.push((u64_at(bytes, 112), num_seqs * 8));
    }
    sections.push((u64_at(bytes, 120), chunks * 8));
    let mut h = swhybrid_seq::digest::Fnv1a::new();
    h.update(&bytes[..152]);
    for (off, len) in sections {
        h.update(&bytes[off as usize..(off + len) as usize]);
    }
    let sum = h.finish();
    put_u64(bytes, 152, sum);
}

#[test]
fn lying_digest_caught_by_full_verify_only() {
    let mut bytes = healthy_store_bytes();
    let digest = u64_at(&bytes, 24);
    put_u64(&mut bytes, 24, digest ^ 0xff);
    // The digest field is under the meta checksum, so a naive flip is
    // caught even on Quick.
    assert!(matches!(
        open(bytes.clone(), Verify::Quick),
        Err(StoreError::ChecksumMismatch { .. })
    ));
    // A consistent forgery (meta checksum recomputed) passes Quick — the
    // digest is trusted there by design — but Full re-hashes the content.
    refresh_meta_checksum(&mut bytes);
    assert!(open(bytes.clone(), Verify::Quick).is_ok());
    match open(bytes, Verify::Full) {
        Err(StoreError::DigestMismatch { .. }) => {}
        other => panic!("expected DigestMismatch, got {:?}", other.err()),
    }
}

#[test]
fn inconsistent_spans_rejected() {
    // Spans whose lengths disagree with the header's min/max, or whose
    // offsets do not tile the arena, must be rejected even with a valid
    // checksum (refresh it after tampering).
    let mut bytes = healthy_store_bytes();
    let spans_off = u64_at(&bytes, 104) as usize;
    // First span: shift its offset by 1 — spans no longer tile the arena.
    let first = u64_at(&bytes, spans_off);
    put_u64(&mut bytes, spans_off, first + 1);
    refresh_meta_checksum(&mut bytes);
    // Caught no later than snapshot assembly (Full opens catch it earlier,
    // at the digest re-hash arena build).
    match open(bytes, Verify::Quick).and_then(Store::into_snapshot) {
        Err(StoreError::Seq(_)) | Err(StoreError::BadGeometry(_)) => {}
        Err(other) => panic!("expected span geometry error, got {other:?}"),
        Ok(_) => panic!("non-tiling spans produced a snapshot"),
    }
}

#[test]
fn inconsistent_chunk_table_rejected() {
    let mut bytes = healthy_store_bytes();
    let chunks_off = u64_at(&bytes, 120) as usize;
    let c0 = u64_at(&bytes, chunks_off);
    put_u64(&mut bytes, chunks_off, c0 + 7);
    refresh_meta_checksum(&mut bytes);
    let store = open(bytes, Verify::Quick).unwrap();
    // The lie survives open (chunks are cross-checked against spans at
    // snapshot assembly), but never reaches a scan.
    match store.into_snapshot() {
        Err(StoreError::Seq(_)) => {}
        Err(other) => panic!("expected Seq error, got {other:?}"),
        Ok(_) => panic!("corrupt chunk table produced a snapshot"),
    }
}

#[test]
fn no_input_panics_on_arbitrary_prefixes() {
    // Sledgehammer: opening any prefix of a healthy store must return an
    // error (or, for the full length, succeed) — never panic.
    let bytes = healthy_store_bytes();
    for keep in (0..bytes.len()).step_by(17).chain([bytes.len()]) {
        let result = std::panic::catch_unwind(|| open(bytes[..keep].to_vec(), Verify::Full));
        match result {
            Ok(Ok(_)) => assert_eq!(keep, bytes.len(), "short prefix {keep} opened"),
            Ok(Err(_)) => {}
            Err(_) => panic!("panicked at prefix {keep}"),
        }
    }
}
