//! Tasks, task states, and the task pool.
//!
//! "Each task can be in one of three states: *ready*, *executing* or
//! *finished*. … When a slave PE requests tasks and there are no more ready
//! tasks, the workload adjustment mechanism assigns tasks in the executing
//! state to the idle PE. Note that, in this case, there can be more than
//! one node executing the same task." (§IV-A-3)

use swhybrid_device::task::TaskSpec;

/// Identifier of a task (index into the pool).
pub type TaskId = usize;

/// Identifier of a processing element (index into the platform).
pub type PeId = usize;

/// The three task states of §IV-A-3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Not yet assigned to any PE.
    Ready,
    /// Assigned to (and possibly replicated on) one or more PEs.
    Executing,
    /// Completed; results can be collected.
    Finished,
}

/// A task plus its scheduling state.
#[derive(Debug, Clone)]
pub struct Task {
    /// The immutable work description.
    pub spec: TaskSpec,
    /// Current state.
    pub state: TaskState,
    /// PEs currently holding the task (assigned or running).
    pub executors: Vec<PeId>,
    /// The PE that completed the task first, once finished.
    pub finished_by: Option<PeId>,
}

/// The master's pool of tasks.
#[derive(Debug, Clone, Default)]
pub struct TaskPool {
    tasks: Vec<Task>,
    /// FIFO of ready task ids (allocation order = query file order).
    ready: std::collections::VecDeque<TaskId>,
    finished_count: usize,
}

impl TaskPool {
    /// Build a pool from the workload, all tasks ready, in file order.
    pub fn new(specs: Vec<TaskSpec>) -> TaskPool {
        let ready = (0..specs.len()).collect();
        let tasks = specs
            .into_iter()
            .map(|spec| Task {
                spec,
                state: TaskState::Ready,
                executors: Vec::new(),
                finished_by: None,
            })
            .collect();
        TaskPool {
            tasks,
            ready,
            finished_count: 0,
        }
    }

    /// Append one new task to the pool in the ready state (multi-batch
    /// lifecycle: a long-running master keeps accepting work after the
    /// initial workload drains). The spec's `id` is rewritten to the pool
    /// slot so ids stay dense and stable.
    pub fn push(&mut self, mut spec: TaskSpec) -> TaskId {
        let id = self.tasks.len();
        spec.id = id;
        self.tasks.push(Task {
            spec,
            state: TaskState::Ready,
            executors: Vec::new(),
            finished_by: None,
        });
        self.ready.push_back(id);
        id
    }

    /// Total number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the pool has no tasks at all.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Access a task.
    pub fn get(&self, id: TaskId) -> &Task {
        &self.tasks[id]
    }

    /// Number of tasks still in the ready state.
    pub fn ready_count(&self) -> usize {
        self.ready.len()
    }

    /// Number of finished tasks.
    pub fn finished_count(&self) -> usize {
        self.finished_count
    }

    /// Whether every task has finished.
    pub fn all_finished(&self) -> bool {
        self.finished_count == self.tasks.len()
    }

    /// Tasks currently in the executing state.
    pub fn executing_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == TaskState::Executing)
            .map(|(id, _)| id)
    }

    /// Pop up to `n` ready tasks (file order) and assign them to `pe`.
    pub fn take_ready(&mut self, n: usize, pe: PeId) -> Vec<TaskId> {
        let mut out = Vec::with_capacity(n.min(self.ready.len()));
        for _ in 0..n {
            let Some(id) = self.ready.pop_front() else {
                break;
            };
            let task = &mut self.tasks[id];
            debug_assert_eq!(task.state, TaskState::Ready);
            task.state = TaskState::Executing;
            task.executors.push(pe);
            out.push(id);
        }
        out
    }

    /// Pop up to `n` ready tasks for `pe`, choosing by size instead of file
    /// order: largest-first when `prefer_large`, smallest-first otherwise
    /// (the size-aware dispatch extension — fast PEs take the big tasks so
    /// slow PEs can never become the straggler on one).
    pub fn take_ready_by_size(&mut self, n: usize, pe: PeId, prefer_large: bool) -> Vec<TaskId> {
        let mut out = Vec::with_capacity(n.min(self.ready.len()));
        for _ in 0..n {
            let Some(pos) = (0..self.ready.len()).max_by_key(|&i| {
                let cells = self.tasks[self.ready[i]].spec.cells() as i128;
                if prefer_large {
                    cells
                } else {
                    -cells
                }
            }) else {
                break;
            };
            let id = self.ready.remove(pos).expect("position is in range");
            let task = &mut self.tasks[id];
            debug_assert_eq!(task.state, TaskState::Ready);
            task.state = TaskState::Executing;
            task.executors.push(pe);
            out.push(id);
        }
        out
    }

    /// Add `pe` as an additional executor of an already-executing task
    /// (the workload adjustment replication).
    pub fn replicate(&mut self, id: TaskId, pe: PeId) {
        let task = &mut self.tasks[id];
        assert_eq!(
            task.state,
            TaskState::Executing,
            "only executing tasks can be replicated"
        );
        assert!(
            !task.executors.contains(&pe),
            "PE {pe} already executes task {id}"
        );
        task.executors.push(pe);
    }

    /// Move an executing task from one holder to another (work stealing of
    /// a not-yet-started batch entry).
    pub fn reassign(&mut self, id: TaskId, from: PeId, to: PeId) {
        let task = &mut self.tasks[id];
        assert_eq!(
            task.state,
            TaskState::Executing,
            "can only reassign executing tasks"
        );
        assert!(
            task.executors.contains(&from),
            "PE {from} does not hold task {id}"
        );
        assert!(
            !task.executors.contains(&to),
            "PE {to} already holds task {id}"
        );
        task.executors.retain(|&p| p != from);
        task.executors.push(to);
    }

    /// Mark a task finished by `pe`. Returns the *other* executors whose
    /// replicas must be cancelled; idempotent calls after the first return
    /// an empty list.
    pub fn finish(&mut self, id: TaskId, pe: PeId) -> Vec<PeId> {
        let task = &mut self.tasks[id];
        if task.state == TaskState::Finished {
            return Vec::new();
        }
        task.state = TaskState::Finished;
        task.finished_by = Some(pe);
        self.finished_count += 1;
        let others: Vec<PeId> = task
            .executors
            .iter()
            .copied()
            .filter(|&p| p != pe)
            .collect();
        task.executors.clear();
        others
    }

    /// Return a task held by a departing PE to the ready state
    /// (membership extension). No-op if other PEs still hold it.
    pub fn release(&mut self, id: TaskId, pe: PeId) {
        let task = &mut self.tasks[id];
        if task.state != TaskState::Executing {
            return;
        }
        task.executors.retain(|&p| p != pe);
        if task.executors.is_empty() {
            task.state = TaskState::Ready;
            // Front of the queue: departed work is the most urgent.
            self.ready.push_front(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(n: usize) -> Vec<TaskSpec> {
        (0..n)
            .map(|id| TaskSpec {
                id,
                query_len: 100 * (id + 1),
                queries: 1,
                db_residues: 1_000_000,
                db_sequences: 1000,
            })
            .collect()
    }

    #[test]
    fn pool_starts_all_ready_in_order() {
        let pool = TaskPool::new(specs(5));
        assert_eq!(pool.len(), 5);
        assert_eq!(pool.ready_count(), 5);
        assert_eq!(pool.finished_count(), 0);
        assert!(!pool.all_finished());
        assert!(pool.tasks.iter().all(|t| t.state == TaskState::Ready));
    }

    #[test]
    fn take_ready_respects_order_and_count() {
        let mut pool = TaskPool::new(specs(5));
        let got = pool.take_ready(2, 7);
        assert_eq!(got, vec![0, 1]);
        assert_eq!(pool.get(0).state, TaskState::Executing);
        assert_eq!(pool.get(0).executors, vec![7]);
        assert_eq!(pool.ready_count(), 3);
        // Asking for more than available returns what is left.
        let rest = pool.take_ready(10, 8);
        assert_eq!(rest, vec![2, 3, 4]);
        assert_eq!(pool.ready_count(), 0);
    }

    #[test]
    fn finish_cancels_replicas_once() {
        let mut pool = TaskPool::new(specs(1));
        pool.take_ready(1, 0);
        pool.replicate(0, 1);
        pool.replicate(0, 2);
        let cancels = pool.finish(0, 1);
        assert_eq!(cancels, vec![0, 2]);
        assert_eq!(pool.get(0).state, TaskState::Finished);
        assert_eq!(pool.get(0).finished_by, Some(1));
        assert!(pool.all_finished());
        // Second finish (the replica crossing the line later) is a no-op.
        assert!(pool.finish(0, 2).is_empty());
        assert_eq!(pool.get(0).finished_by, Some(1));
    }

    #[test]
    #[should_panic(expected = "already executes")]
    fn double_replication_on_same_pe_rejected() {
        let mut pool = TaskPool::new(specs(1));
        pool.take_ready(1, 0);
        pool.replicate(0, 0);
    }

    #[test]
    #[should_panic(expected = "only executing tasks")]
    fn replicating_ready_task_rejected() {
        let mut pool = TaskPool::new(specs(1));
        pool.replicate(0, 0);
    }

    #[test]
    fn release_requeues_at_front() {
        let mut pool = TaskPool::new(specs(3));
        let got = pool.take_ready(2, 0);
        assert_eq!(got, vec![0, 1]);
        pool.release(1, 0);
        assert_eq!(pool.get(1).state, TaskState::Ready);
        // Task 1 now precedes task 2 in the ready queue.
        let next = pool.take_ready(2, 1);
        assert_eq!(next, vec![1, 2]);
    }

    #[test]
    fn release_with_replica_keeps_executing() {
        let mut pool = TaskPool::new(specs(1));
        pool.take_ready(1, 0);
        pool.replicate(0, 1);
        pool.release(0, 0);
        assert_eq!(pool.get(0).state, TaskState::Executing);
        assert_eq!(pool.get(0).executors, vec![1]);
    }

    #[test]
    fn executing_ids_enumerates() {
        let mut pool = TaskPool::new(specs(3));
        pool.take_ready(2, 0);
        pool.finish(0, 0);
        let execs: Vec<TaskId> = pool.executing_ids().collect();
        assert_eq!(execs, vec![1]);
    }
}
