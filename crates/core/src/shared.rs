//! Shared-state wakeups for the real runtimes.
//!
//! Both real drivers of the [`crate::master::Master`] state machine — the
//! threaded runtime and the TCP master — previously polled: an idle PE that
//! received [`crate::master::Assignment::Wait`] slept a fixed interval and
//! asked again. [`WaitHub`] replaces that with a mutex + condvar pair so a
//! waiter is woken the moment another PE finishes a task (or dies and has
//! its work requeued), turning the idle→busy latency from the poll interval
//! into microseconds.
//!
//! The protocol is deliberately minimal: every mutation of the protected
//! state that could unblock a waiter must be followed by
//! [`WaitHub::notify_all`]. Waiters always re-check their predicate in a
//! loop (both `wait` variants can wake spuriously, as condvars do).

use std::ops::{Deref, DerefMut};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

#[cfg(debug_assertions)]
mod reentrancy {
    //! Debug-only self-deadlock detector: a thread that calls
    //! [`super::WaitHub::lock`] while already holding the same hub would
    //! block on itself forever (std mutexes are not recursive). Catch it
    //! with a panic and a backtrace instead.
    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    }

    pub fn acquire(hub: usize) {
        HELD.with(|h| {
            let mut v = h.borrow_mut();
            assert!(
                !v.contains(&hub),
                "re-entrant WaitHub::lock: this thread already holds hub {hub:#x} \
                 (self-deadlock)"
            );
            v.push(hub);
        });
    }

    pub fn release(hub: usize) {
        HELD.with(|h| {
            let mut v = h.borrow_mut();
            if let Some(i) = v.iter().rposition(|&k| k == hub) {
                v.remove(i);
            }
        });
    }
}

/// A mutex-protected value plus a condition variable announcing changes.
#[derive(Debug, Default)]
pub struct WaitHub<T> {
    inner: Mutex<T>,
    cv: Condvar,
}

/// The lock guard handed out by [`WaitHub::lock`]; derefs to the protected
/// value. In debug builds it also maintains the per-thread held-hub list
/// backing the re-entrancy check.
#[derive(Debug)]
pub struct HubGuard<'a, T> {
    inner: Option<MutexGuard<'a, T>>,
    hub: usize,
}

impl<T> Deref for HubGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T> DerefMut for HubGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T> Drop for HubGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            #[cfg(debug_assertions)]
            reentrancy::release(self.hub);
            #[cfg(not(debug_assertions))]
            let _ = self.hub;
        }
    }
}

impl<T> WaitHub<T> {
    /// Wrap a value.
    pub fn new(value: T) -> WaitHub<T> {
        WaitHub {
            inner: Mutex::new(value),
            cv: Condvar::new(),
        }
    }

    fn wrap<'a>(&'a self, inner: MutexGuard<'a, T>) -> HubGuard<'a, T> {
        HubGuard {
            inner: Some(inner),
            hub: self as *const WaitHub<T> as usize,
        }
    }

    /// Lock the protected value. Panics in debug builds when the calling
    /// thread already holds this hub (a guaranteed self-deadlock).
    pub fn lock(&self) -> HubGuard<'_, T> {
        #[cfg(debug_assertions)]
        reentrancy::acquire(self as *const WaitHub<T> as usize);
        self.wrap(self.inner.lock().expect("WaitHub lock poisoned"))
    }

    /// Wake every thread blocked in [`WaitHub::wait`] /
    /// [`WaitHub::wait_timeout`]. Call after any mutation that could
    /// unblock a waiter.
    pub fn notify_all(&self) {
        self.cv.notify_all();
    }

    /// Atomically release `guard` and sleep until notified. May wake
    /// spuriously; callers re-check their predicate.
    pub fn wait<'a>(&'a self, mut guard: HubGuard<'a, T>) -> HubGuard<'a, T> {
        // Taking `inner` disarms the guard's release: the thread keeps its
        // held-hub entry across the park — conceptually it still owns the
        // critical section when `wait` returns, and it cannot call `lock`
        // while parked.
        let inner = guard.inner.take().expect("guard taken");
        drop(guard);
        self.wrap_rewait(self.cv.wait(inner).expect("WaitHub lock poisoned"))
    }

    /// Like [`WaitHub::wait`] but with an upper bound on the sleep, for
    /// waiters that also watch a deadline.
    pub fn wait_timeout<'a>(
        &'a self,
        mut guard: HubGuard<'a, T>,
        timeout: Duration,
    ) -> HubGuard<'a, T> {
        let inner = guard.inner.take().expect("guard taken");
        drop(guard);
        self.wrap_rewait(
            self.cv
                .wait_timeout(inner, timeout)
                .expect("WaitHub lock poisoned")
                .0,
        )
    }

    /// Re-wrap a guard returned by a condvar wait without re-registering
    /// the hub in the held list (the waiting thread never released its
    /// logical ownership).
    fn wrap_rewait<'a>(&'a self, inner: MutexGuard<'a, T>) -> HubGuard<'a, T> {
        self.wrap(inner)
    }

    /// Consume the hub and return the protected value (once all sharers
    /// are gone, e.g. after a thread scope ends).
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("WaitHub lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn waiter_wakes_on_notify_without_polling() {
        let hub = Arc::new(WaitHub::new(0u32));
        let hub2 = Arc::clone(&hub);
        let waiter = std::thread::spawn(move || {
            let mut guard = hub2.lock();
            while *guard == 0 {
                guard = hub2.wait(guard);
            }
            Instant::now()
        });
        // Let the waiter park, then flip the value and notify.
        std::thread::sleep(Duration::from_millis(50));
        let notified_at;
        {
            let mut guard = hub.lock();
            *guard = 1;
            notified_at = Instant::now();
        }
        hub.notify_all();
        let woke_at = waiter.join().unwrap();
        // Wake-up is event-driven: far below any former poll interval even
        // on a loaded single-core CI box.
        let latency = woke_at.saturating_duration_since(notified_at);
        assert!(
            latency < Duration::from_millis(500),
            "wake latency {latency:?}"
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "re-entrant WaitHub::lock")]
    fn reentrant_lock_is_detected() {
        let hub = WaitHub::new(0u32);
        let _outer = hub.lock();
        let _inner = hub.lock(); // would self-deadlock without the detector
    }

    #[test]
    fn guard_release_survives_a_wait() {
        // After a wait the thread still logically owns the hub: dropping
        // the returned guard must release it so a later lock succeeds.
        let hub = WaitHub::new(0u32);
        let guard = hub.lock();
        let guard = hub.wait_timeout(guard, Duration::from_millis(5));
        drop(guard);
        let _again = hub.lock();
    }

    #[test]
    fn wait_timeout_returns_after_deadline() {
        let hub = WaitHub::new(());
        let start = Instant::now();
        let guard = hub.lock();
        let _guard = hub.wait_timeout(guard, Duration::from_millis(20));
        assert!(start.elapsed() >= Duration::from_millis(15));
    }
}
