//! Shared-state wakeups for the real runtimes.
//!
//! Both real drivers of the [`crate::master::Master`] state machine — the
//! threaded runtime and the TCP master — previously polled: an idle PE that
//! received [`crate::master::Assignment::Wait`] slept a fixed interval and
//! asked again. [`WaitHub`] replaces that with a mutex + condvar pair so a
//! waiter is woken the moment another PE finishes a task (or dies and has
//! its work requeued), turning the idle→busy latency from the poll interval
//! into microseconds.
//!
//! The protocol is deliberately minimal: every mutation of the protected
//! state that could unblock a waiter must be followed by
//! [`WaitHub::notify_all`]. Waiters always re-check their predicate in a
//! loop (both `wait` variants can wake spuriously, as condvars do).

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// A mutex-protected value plus a condition variable announcing changes.
#[derive(Debug, Default)]
pub struct WaitHub<T> {
    inner: Mutex<T>,
    cv: Condvar,
}

impl<T> WaitHub<T> {
    /// Wrap a value.
    pub fn new(value: T) -> WaitHub<T> {
        WaitHub {
            inner: Mutex::new(value),
            cv: Condvar::new(),
        }
    }

    /// Lock the protected value.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("WaitHub lock poisoned")
    }

    /// Wake every thread blocked in [`WaitHub::wait`] /
    /// [`WaitHub::wait_timeout`]. Call after any mutation that could
    /// unblock a waiter.
    pub fn notify_all(&self) {
        self.cv.notify_all();
    }

    /// Atomically release `guard` and sleep until notified. May wake
    /// spuriously; callers re-check their predicate.
    pub fn wait<'a>(&'a self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.cv.wait(guard).expect("WaitHub lock poisoned")
    }

    /// Like [`WaitHub::wait`] but with an upper bound on the sleep, for
    /// waiters that also watch a deadline.
    pub fn wait_timeout<'a>(
        &'a self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> MutexGuard<'a, T> {
        self.cv
            .wait_timeout(guard, timeout)
            .expect("WaitHub lock poisoned")
            .0
    }

    /// Consume the hub and return the protected value (once all sharers
    /// are gone, e.g. after a thread scope ends).
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("WaitHub lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn waiter_wakes_on_notify_without_polling() {
        let hub = Arc::new(WaitHub::new(0u32));
        let hub2 = Arc::clone(&hub);
        let waiter = std::thread::spawn(move || {
            let mut guard = hub2.lock();
            while *guard == 0 {
                guard = hub2.wait(guard);
            }
            Instant::now()
        });
        // Let the waiter park, then flip the value and notify.
        std::thread::sleep(Duration::from_millis(50));
        let notified_at;
        {
            let mut guard = hub.lock();
            *guard = 1;
            notified_at = Instant::now();
        }
        hub.notify_all();
        let woke_at = waiter.join().unwrap();
        // Wake-up is event-driven: far below any former poll interval even
        // on a loaded single-core CI box.
        let latency = woke_at.saturating_duration_since(notified_at);
        assert!(
            latency < Duration::from_millis(500),
            "wake latency {latency:?}"
        );
    }

    #[test]
    fn wait_timeout_returns_after_deadline() {
        let hub = WaitHub::new(());
        let start = Instant::now();
        let guard = hub.lock();
        let _guard = hub.wait_timeout(guard, Duration::from_millis(20));
        assert!(start.elapsed() >= Duration::from_millis(15));
    }
}
