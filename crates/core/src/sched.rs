//! The scheduling engine (§III): one implementation of SS/PSS Φ batch
//! sizing, the Ω-window weighted speed statistics, the
//! ready→executing→finished task state machine, and the workload
//! adjustment mechanism (replication, first-completion-wins, beneficial
//! takeover).
//!
//! The engine is deliberately **transport- and clock-agnostic**: every
//! entry point takes an explicit `now` stamp in seconds, produced by
//! whichever [`Clock`] the driver holds. The real runtimes
//! ([`crate::pool`], [`crate::runtime`], the TCP master, the query
//! service) read a [`WallClock`]; the discrete-event simulator
//! ([`crate::sim`]) advances a [`VirtualClock`] along its event heap.
//! Both drive the *same* [`Scheduler`] — there is exactly one place in the
//! tree where a Φ batch is sized or a replica is cancelled, so simulated
//! and real runs cannot silently diverge.
//!
//! [`crate::master::Master`] is the thin driver-facing façade over this
//! engine; it adds nothing but the historical name and re-exports.

use crate::policy::Policy;
use crate::stats::PeSpeedStats;
use crate::task::{PeId, TaskId, TaskPool, TaskState};
use crate::trace::{EventKind, RuntimeEvent};
use std::cell::Cell;
use std::collections::HashMap;
use std::time::Instant;
use swhybrid_device::task::TaskSpec;

/// A monotonic source of `now` stamps (seconds since the clock's epoch).
///
/// The engine never reads time on its own — drivers sample their clock and
/// pass the stamp in. The trait exists so driver code that *loops* over
/// engine calls (the pool, the simulator) can be written once against
/// either time base.
pub trait Clock {
    /// Seconds since this clock's epoch.
    fn now(&self) -> f64;
}

/// Real time: seconds elapsed since construction.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is "now".
    pub fn new() -> WallClock {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }
}

/// Virtual time: holds whatever instant the discrete-event driver has
/// advanced it to. Never moves backwards.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: Cell<f64>,
}

impl VirtualClock {
    /// A virtual clock at t = 0.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Advance to `t` (no-op if `t` is in the past — event heaps may pop
    /// several events stamped with the same instant).
    pub fn advance_to(&self, t: f64) {
        if t > self.now.get() {
            self.now.set(t);
        }
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> f64 {
        self.now.get()
    }
}

/// How ready tasks are picked for a requesting PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dispatch {
    /// Query-file order (the paper's behaviour): first ready task first,
    /// regardless of who asks.
    #[default]
    FileOrder,
    /// Extension: PEs at or above the mean estimated speed take the largest
    /// ready tasks, slower PEs the smallest — a slow PE can then never
    /// become the lone straggler on a huge task (see the
    /// `ablation_dispatch` experiment).
    SizeAware,
}

/// Engine configuration: the user-selected policy and whether the workload
/// adjustment mechanism is active. (Named for the master process that
/// historically owned it; re-exported as `master::MasterConfig`.)
#[derive(Debug, Clone, Copy)]
pub struct MasterConfig {
    /// Task allocation policy.
    pub policy: Policy,
    /// Whether idle PEs replicate executing tasks once the ready queue is
    /// empty (§IV-A-3).
    pub adjustment: bool,
    /// Ready-queue dispatch order.
    pub dispatch: Dispatch,
}

impl Default for MasterConfig {
    fn default() -> Self {
        MasterConfig {
            policy: Policy::pss_default(),
            adjustment: true,
            dispatch: Dispatch::FileOrder,
        }
    }
}

/// What the engine answers to a work request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Assignment {
    /// Fresh ready tasks, in allocation order.
    Tasks(Vec<TaskId>),
    /// Take over a task that was assigned to another PE's batch but has not
    /// started there yet: the task moves wholesale (no work is lost). The
    /// `from` PE must drop it from its local queue.
    Steal {
        /// The reassigned task.
        task: TaskId,
        /// The PE it is taken from.
        from: PeId,
    },
    /// A replica of a task another PE is already *running*; whichever copy
    /// finishes first wins and the others are cancelled.
    Replicate(TaskId),
    /// Nothing for this PE right now (it may be re-polled if tasks are
    /// released back to ready, e.g. when a PE leaves).
    Wait,
    /// Every task is finished.
    Done,
}

/// A live tap on the engine's event stream: called once per event, in
/// emission order, while the driver's lock is held — keep callbacks short
/// (push to a channel, write a line). Events are still appended to the
/// in-memory stream; the sink is a copy, not a diversion.
pub struct EventSink(pub(crate) Box<dyn FnMut(&RuntimeEvent) + Send>);

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("EventSink(..)")
    }
}

#[derive(Debug)]
struct PeInfo {
    name: String,
    stats: PeSpeedStats,
    alive: bool,
    /// Joined after the registration barrier ([`Scheduler::pe_joins`]).
    /// Until its first real measurement lands, such a PE sits in the Ω
    /// window with only its static prior — a bad prior there skews
    /// `min_alive` and through it every *other* PE's Φ, so
    /// [`Scheduler::batch_for`] clamps the whole fleet to the SS grain
    /// while any alive late joiner is still unobserved.
    late_join: bool,
    /// Start times of tasks currently running on this PE (tasks assigned
    /// but not yet started are not in this map).
    running: HashMap<TaskId, f64>,
}

/// The scheduling engine. One instance owns the task pool, the per-PE
/// speed windows, and every policy/adjustment decision of a run.
#[derive(Debug)]
pub struct Scheduler {
    pool: TaskPool,
    config: MasterConfig,
    pes: Vec<PeInfo>,
    /// Remaining up-front quotas for static policies, computed on the
    /// first request (all PEs must register before that point).
    quotas: Option<Vec<usize>>,
    /// Structured event stream (every scheduling decision and membership
    /// change, in emission order).
    events: Vec<RuntimeEvent>,
    /// Latest time any driver call reported; events from calls without a
    /// `now` parameter are stamped with this.
    clock: f64,
    run_completed_emitted: bool,
    /// When set, a drained pool answers [`Assignment::Wait`] instead of
    /// [`Assignment::Done`]: the engine outlives its current workload and
    /// expects more batches via [`Scheduler::submit_tasks`].
    keep_alive: bool,
    /// Optional live event tap (see [`EventSink`]).
    sink: Option<EventSink>,
}

impl Scheduler {
    /// Create an engine for a workload.
    pub fn new(specs: Vec<TaskSpec>, config: MasterConfig) -> Scheduler {
        Scheduler {
            pool: TaskPool::new(specs),
            config,
            pes: Vec::new(),
            quotas: None,
            events: Vec::new(),
            clock: 0.0,
            run_completed_emitted: false,
            keep_alive: false,
            sink: None,
        }
    }

    /// Install a live event tap: `sink` is called for every event from now
    /// on, in emission order (events already in the stream are not
    /// replayed). Used by the CLI to stream JSONL incrementally and by the
    /// query service to derive per-PE metrics without polling.
    pub fn set_event_sink(&mut self, sink: impl FnMut(&RuntimeEvent) + Send + 'static) {
        self.sink = Some(EventSink(Box::new(sink)));
    }

    /// Keep the engine alive across workloads: with `keep_alive` set, a
    /// drained pool yields [`Assignment::Wait`] (PEs idle at the barrier)
    /// instead of [`Assignment::Done`], until more tasks arrive through
    /// [`Scheduler::submit_tasks`] or keep-alive is cleared for shutdown.
    pub fn set_keep_alive(&mut self, keep_alive: bool) {
        self.keep_alive = keep_alive;
    }

    /// Whether the engine outlives a drained pool (see
    /// [`Scheduler::set_keep_alive`]).
    pub fn keep_alive(&self) -> bool {
        self.keep_alive
    }

    /// Append a new batch of tasks to the pool mid-run (multi-batch
    /// lifecycle). Returns the assigned task ids, in submission order.
    /// Only dynamic policies can absorb new work — static quotas are
    /// computed once against the initial workload.
    pub fn submit_tasks(&mut self, specs: Vec<TaskSpec>) -> Vec<TaskId> {
        assert!(
            !self.config.policy.is_static(),
            "multi-batch submission requires a dynamic policy"
        );
        // The next drain is a fresh completion.
        self.run_completed_emitted = false;
        let ids: Vec<TaskId> = specs.into_iter().map(|spec| self.pool.push(spec)).collect();
        self.emit(EventKind::BatchSubmitted { tasks: ids.clone() });
        ids
    }

    /// Record an event at time `time`. Drivers use this for conditions only
    /// they can see (e.g. the TCP master's liveness verdicts); the state
    /// machine emits its own scheduling events internally.
    pub fn record_event(&mut self, time: f64, kind: EventKind) {
        self.clock = self.clock.max(time);
        self.push_event(RuntimeEvent { time, kind });
    }

    fn emit(&mut self, kind: EventKind) {
        self.push_event(RuntimeEvent {
            time: self.clock,
            kind,
        });
    }

    fn push_event(&mut self, event: RuntimeEvent) {
        if let Some(EventSink(sink)) = &mut self.sink {
            sink(&event);
        }
        self.events.push(event);
    }

    /// The event stream so far.
    pub fn events(&self) -> &[RuntimeEvent] {
        &self.events
    }

    /// Take ownership of the event stream (leaves it empty).
    pub fn take_events(&mut self) -> Vec<RuntimeEvent> {
        std::mem::take(&mut self.events)
    }

    /// Register a slave PE; `static_gcups` is its theoretical speed (used
    /// by WFixed and as the PSS prior until observations arrive).
    pub fn register(&mut self, name: impl Into<String>, static_gcups: f64) -> PeId {
        assert!(
            self.quotas.is_none(),
            "all PEs must register before the first request under a static policy"
        );
        let id = self.pes.len();
        let name = name.into();
        self.emit(EventKind::PeRegistered {
            pe: id,
            name: name.clone(),
        });
        self.pes.push(PeInfo {
            name,
            stats: PeSpeedStats::new(static_gcups, self.config.policy.omega()),
            alive: true,
            late_join: false,
            running: HashMap::new(),
        });
        id
    }

    /// Name of a PE.
    pub fn pe_name(&self, pe: PeId) -> &str {
        &self.pes[pe].name
    }

    /// Number of registered PEs.
    pub fn pe_count(&self) -> usize {
        self.pes.len()
    }

    /// The task pool (read-only).
    pub fn pool(&self) -> &TaskPool {
        &self.pool
    }

    /// Whether every task has finished.
    pub fn all_finished(&self) -> bool {
        self.pool.all_finished()
    }

    /// Current speed estimates (GCUPS) for every PE.
    pub fn speed_estimates(&self) -> Vec<f64> {
        self.pes
            .iter()
            .map(|p| p.stats.weighted_mean_gcups())
            .collect()
    }

    /// A PE asks for work at time `now`.
    pub fn request(&mut self, pe: PeId, now: f64) -> Assignment {
        assert!(self.pes[pe].alive, "dead PE {pe} cannot request work");
        self.clock = self.clock.max(now);
        if self.pool.all_finished() {
            return if self.keep_alive {
                Assignment::Wait
            } else {
                Assignment::Done
            };
        }
        let batch = self.batch_for(pe);
        if batch > 0 && self.pool.ready_count() > 0 {
            let tasks = match self.config.dispatch {
                Dispatch::FileOrder => self.pool.take_ready(batch, pe),
                Dispatch::SizeAware => {
                    let speeds = self.speed_estimates();
                    let alive: Vec<f64> = speeds
                        .iter()
                        .zip(self.pes.iter())
                        .filter(|(_, p)| p.alive)
                        .map(|(&s, _)| s)
                        .collect();
                    let mean = alive.iter().sum::<f64>() / alive.len().max(1) as f64;
                    self.pool.take_ready_by_size(batch, pe, speeds[pe] >= mean)
                }
            };
            if let Some(quotas) = &mut self.quotas {
                quotas[pe] -= tasks.len().min(quotas[pe]);
            }
            self.emit(EventKind::TasksAssigned {
                pe,
                tasks: tasks.clone(),
            });
            return Assignment::Tasks(tasks);
        }
        if self.config.adjustment {
            // Prefer taking over a task that has not started anywhere —
            // no work is lost — but ONLY when this PE would finish it
            // before its current holder is even expected to get to it:
            // moving a big task onto a slow idle PE would *create* the very
            // straggler the mechanism exists to prevent. When no beneficial
            // takeover exists, fall back to replication (§IV-A-3), which by
            // construction can never delay the original execution.
            if let Some((task, from)) = self.steal_candidate(pe, now) {
                self.pool.reassign(task, from, pe);
                self.emit(EventKind::TaskStolen { pe, task, from });
                return Assignment::Steal { task, from };
            }
            if let Some(task) = self.replication_candidate(pe, now) {
                self.pool.replicate(task, pe);
                self.emit(EventKind::TaskReplicated { pe, task });
                return Assignment::Replicate(task);
            }
        }
        Assignment::Wait
    }

    /// Estimated cells a PE still has to compute across everything it
    /// currently holds (running task remainder + unstarted batch entries).
    fn backlog_cells(&self, pe: PeId, now: f64) -> f64 {
        self.pool
            .executing_ids()
            .filter(|&t| self.pool.get(t).executors.contains(&pe))
            .map(|t| match self.pes[pe].running.get(&t) {
                Some(&start) => {
                    let speed = self.pes[pe].stats.weighted_mean_gcups() * 1e9;
                    (self.pool.get(t).spec.cells() as f64 - speed * (now - start)).max(0.0)
                }
                None => self.pool.get(t).spec.cells() as f64,
            })
            .sum()
    }

    /// The most beneficial takeover: an executing task no holder has begun
    /// that `pe` would finish well before its holder's ETA.
    fn steal_candidate(&self, pe: PeId, now: f64) -> Option<(TaskId, PeId)> {
        let speeds = self.speed_estimates();
        let req_speed = (speeds[pe] * 1e9).max(1.0);
        self.pool
            .executing_ids()
            .filter_map(|t| {
                let task = self.pool.get(t);
                if task.executors.contains(&pe) {
                    return None;
                }
                // Only unstarted tasks move; started ones are replicated.
                let unstarted = task
                    .executors
                    .iter()
                    .all(|&holder| !self.pes[holder].running.contains_key(&t));
                if !unstarted {
                    return None;
                }
                let holder = *task.executors.first()?;
                let holder_speed = (speeds[holder] * 1e9).max(1.0);
                // The holder must finish its whole backlog (which includes
                // this task) before this task completes there.
                let holder_eta = self.backlog_cells(holder, now) / holder_speed;
                let req_eta = task.spec.cells() as f64 / req_speed;
                let benefit = holder_eta - req_eta;
                (benefit > 0.0).then_some((t, holder, benefit))
            })
            .max_by(|a, b| a.2.partial_cmp(&b.2).expect("benefit is finite"))
            .map(|(t, holder, _)| (t, holder))
    }

    fn batch_for(&mut self, pe: PeId) -> usize {
        if self.config.policy.is_static() {
            if self.quotas.is_none() {
                let static_speeds: Vec<f64> =
                    self.pes.iter().map(|p| p.stats.static_gcups).collect();
                self.quotas = Some(
                    self.config
                        .policy
                        .static_quotas(self.pool.len(), &static_speeds),
                );
            }
            return self.quotas.as_ref().expect("just computed")[pe];
        }
        // "In the first allocation, the master assigns one work unit for
        // each slave" (§I): until a PE has reported real progress, PSS
        // behaves like SS for it. The static prior only seeds the speed
        // estimate other PEs' Φ is computed against.
        if !self.pes[pe].stats.has_observations() {
            return 1;
        }
        // A reconnecting or late-joining PE re-enters the Ω window with
        // only its static prior. Until its first real measurement lands,
        // that prior is the `min_alive` candidate every other PE's Φ is
        // divided by — a mis-stated prior would briefly hand the whole
        // fleet mis-calibrated batches. Clamp everyone to the SS grain for
        // that interval; the cold-start case (initial registrations) keeps
        // the paper's behaviour, where priors are what Φ is *for*.
        if self
            .pes
            .iter()
            .any(|p| p.alive && p.late_join && !p.stats.has_observations())
        {
            return 1;
        }
        let speeds = self.speed_estimates();
        let alive: Vec<bool> = self.pes.iter().map(|p| p.alive).collect();
        self.config.policy.batch_size(pe, &speeds, &alive)
    }

    /// The executing task with the largest estimated remaining work that
    /// `pe` is not already involved in.
    fn replication_candidate(&self, pe: PeId, now: f64) -> Option<TaskId> {
        self.pool
            .executing_ids()
            .filter(|&t| !self.pool.get(t).executors.contains(&pe))
            .map(|t| (t, self.estimated_remaining_cells(t, now)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("remaining is finite"))
            .filter(|&(_, remaining)| remaining > 0.0)
            .map(|(t, _)| t)
    }

    /// Estimated cells still to compute for an executing task: the minimum
    /// over its executors of `cells − speed × elapsed` (a task assigned but
    /// not started counts as entirely remaining).
    pub fn estimated_remaining_cells(&self, task: TaskId, now: f64) -> f64 {
        let t = self.pool.get(task);
        if t.state != TaskState::Executing {
            return 0.0;
        }
        let cells = t.spec.cells() as f64;
        t.executors
            .iter()
            .map(|&pe| match self.pes[pe].running.get(&task) {
                Some(&start) => {
                    let speed = self.pes[pe].stats.weighted_mean_gcups() * 1e9;
                    (cells - speed * (now - start)).max(0.0)
                }
                None => cells, // assigned, not yet started
            })
            .fold(cells, f64::min)
    }

    /// A PE reports that it has *started* executing a task.
    pub fn task_started(&mut self, pe: PeId, task: TaskId, now: f64) {
        self.clock = self.clock.max(now);
        self.pes[pe].running.insert(task, now);
        self.emit(EventKind::TaskStarted { pe, task });
    }

    /// A PE reports a periodic progress notification (observed GCUPS since
    /// the previous notification).
    pub fn notify_progress(&mut self, pe: PeId, now: f64, gcups: f64) {
        self.clock = self.clock.max(now);
        self.pes[pe].stats.observe(now, gcups);
    }

    /// A PE reports task completion. `measured_gcups` is the implicit speed
    /// information of the request/response cycle. Returns the PEs whose
    /// replicas of this task must be cancelled (empty if the task was
    /// already finished by someone else — the caller should then discard
    /// this PE's result).
    pub fn task_finished(
        &mut self,
        pe: PeId,
        task: TaskId,
        now: f64,
        measured_gcups: Option<f64>,
    ) -> Vec<PeId> {
        self.clock = self.clock.max(now);
        self.pes[pe].running.remove(&task);
        if let Some(g) = measured_gcups {
            self.pes[pe].stats.observe(now, g);
        }
        let winner = self.pool.get(task).state != TaskState::Finished;
        let cancels = self.pool.finish(task, pe);
        self.emit(EventKind::TaskFinished {
            pe,
            task,
            winner,
            measured_gcups: measured_gcups.unwrap_or(f64::NAN),
        });
        let task_cells = self.pool.get(task).spec.cells();
        for &other in &cancels {
            // Estimate the duplicated work the cancelled replica had done:
            // its speed estimate × its time on the task, capped at the task
            // size. Computed before the running entry is dropped.
            let wasted_cells = match self.pes[other].running.get(&task) {
                Some(&start) => {
                    let speed = self.pes[other].stats.weighted_mean_gcups() * 1e9;
                    (speed * (now - start)).max(0.0).min(task_cells as f64) as u64
                }
                None => 0, // assigned but never started: nothing computed
            };
            self.pes[other].running.remove(&task);
            self.emit(EventKind::ReplicaCancelled {
                pe: other,
                task,
                wasted_cells,
            });
        }
        if self.pool.all_finished() && !self.run_completed_emitted {
            self.run_completed_emitted = true;
            self.emit(EventKind::RunCompleted);
        }
        cancels
    }

    /// A PE leaves the platform (membership extension): its held tasks —
    /// running or queued — are handed back so they return to ready unless a
    /// replica survives elsewhere.
    pub fn pe_leaves(&mut self, pe: PeId, held: &[TaskId]) {
        self.pes[pe].alive = false;
        self.pes[pe].running.clear();
        self.emit(EventKind::PeLeft { pe });
        for &t in held {
            let was_executing = self.pool.get(t).state == TaskState::Executing
                && self.pool.get(t).executors.contains(&pe);
            self.pool.release(t, pe);
            // Requeued only when no surviving replica kept it executing.
            if was_executing && self.pool.get(t).state == TaskState::Ready {
                self.emit(EventKind::TaskRequeued { task: t, from: pe });
            }
        }
    }

    /// A late PE joins (membership extension). `now` stamps the
    /// [`EventKind::PeJoined`] event (joins can happen while the engine is
    /// otherwise idle, so the clock may not have advanced on its own).
    pub fn pe_joins(&mut self, name: impl Into<String>, static_gcups: f64, now: f64) -> PeId {
        self.clock = self.clock.max(now);
        let id = self.pes.len();
        let name = name.into();
        self.emit(EventKind::PeJoined {
            pe: id,
            name: name.clone(),
        });
        self.pes.push(PeInfo {
            name,
            stats: PeSpeedStats::new(static_gcups, self.config.policy.omega()),
            alive: true,
            late_join: true,
            running: HashMap::new(),
        });
        if let Some(quotas) = &mut self.quotas {
            quotas.push(0); // static policies give latecomers nothing
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone_and_starts_near_zero() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(a >= 0.0 && b >= a);
        assert!(a < 60.0, "epoch should be construction time");
    }

    #[test]
    fn virtual_clock_advances_and_never_rewinds() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance_to(3.5);
        assert_eq!(c.now(), 3.5);
        c.advance_to(1.0); // stale event stamps must not rewind time
        assert_eq!(c.now(), 3.5);
        c.advance_to(3.5);
        assert_eq!(c.now(), 3.5);
    }

    #[test]
    fn scheduler_runs_a_minimal_workload_directly() {
        // The engine works without the Master façade: drivers may hold a
        // Scheduler directly.
        let spec = TaskSpec {
            id: 0,
            query_len: 100,
            queries: 1,
            db_residues: 1_000_000,
            db_sequences: 100,
        };
        let mut s = Scheduler::new(vec![spec], MasterConfig::default());
        let pe = s.register("pe0", 1.0);
        let clock = VirtualClock::new();
        assert_eq!(s.request(pe, clock.now()), Assignment::Tasks(vec![0]));
        s.task_started(pe, 0, clock.now());
        clock.advance_to(1.0);
        assert!(s.task_finished(pe, 0, clock.now(), Some(1.0)).is_empty());
        assert_eq!(s.request(pe, clock.now()), Assignment::Done);
    }
}
