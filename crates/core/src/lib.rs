//! The SW task execution environment for hybrid platforms — the paper's
//! primary contribution (§IV).
//!
//! A master process acquires the query and database files, converts them to
//! the indexed format, and distributes *very coarse-grained* tasks (one
//! query × the whole database) to registered slave PEs under a
//! user-selectable allocation policy. Idle PEs re-execute tasks still in
//! the `executing` state once the ready queue drains — the **dynamic
//! workload adjustment mechanism** that prevents a slow node holding one of
//! the last tasks from stalling the whole application (§IV-A-3, Fig. 5).
//!
//! Modules:
//!
//! * [`task`] — task states (*ready → executing → finished*) and the pool,
//! * [`stats`] — per-PE observed-speed statistics (the Ω-window weighted
//!   mean behind PSS),
//! * [`policy`] — allocation policies: SS, PSS(Ω), and the related-work
//!   baselines Fixed (even split) and WFixed (static proportional split),
//! * [`sched`] — THE scheduling engine: registration, allocation,
//!   replication, completion, cancellation, parameterized by a
//!   [`sched::Clock`] (wall clock or virtual time) so every driver shares
//!   one implementation of the paper's §III decisions,
//! * [`master`] — the master process: a thin driver-facing façade over
//!   [`sched::Scheduler`] under its historical name,
//! * [`sim`] — a deterministic discrete-event simulator driving the same
//!   engine with modelled PEs on a [`sched::VirtualClock`] (how the
//!   paper-scale platform of 4 GPUs + 8 SSE cores is reproduced on this
//!   machine),
//! * [`pool`] — the one pool-drive loop every real runtime shares: a
//!   [`pool::PePool`] (master + membership behind the wakeup hub) driven
//!   through transport-agnostic [`pool::PeEndpoint`]s,
//! * [`runtime`] — a real threaded master/slave runtime computing genuine
//!   scores on materialised databases (local-thread endpoints on the
//!   shared loop),
//! * [`net`] — the same runtime across processes: a TCP master/slave
//!   protocol with long-polled requests, heartbeats, and reconnection
//!   (remote-session endpoints on the shared loop),
//! * [`shared`] — the condvar-backed wakeup hub both real runtimes park
//!   idle PEs on (no busy-wait polling),
//! * [`trace`] — execution traces: per-PE Gantt segments (Fig. 5) and
//!   notification series (Figs. 7/8),
//! * [`membership`] — future-work extension: PEs joining/leaving mid-run,
//! * [`platform`] — the public facade: build a platform, run a workload.

pub mod master;
pub mod membership;
pub mod net;
pub mod platform;
pub mod policy;
pub mod pool;
pub mod runtime;
pub mod sched;
pub mod shared;
pub mod sim;
pub mod stats;
pub mod task;
pub mod trace;

pub use master::{Assignment, Master, MasterConfig};
pub use platform::{PlatformBuilder, SimOutcome};
pub use policy::Policy;
pub use task::{PeId, TaskId, TaskState};
