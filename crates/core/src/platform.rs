//! The public facade: describe a hybrid platform, run a workload.
//!
//! ```
//! use swhybrid_core::platform::PlatformBuilder;
//! use swhybrid_core::policy::Policy;
//! use swhybrid_seq::synth::{paper_database, QuerySetSpec};
//!
//! let sw = paper_database("swissprot").unwrap().full_scale_stats();
//! let workload = PlatformBuilder::workload(&sw, &QuerySetSpec::paper(), 0);
//! let outcome = PlatformBuilder::new()
//!     .gpus(4)
//!     .sse_cores(4)
//!     .policy(Policy::pss_default())
//!     .adjustment(true)
//!     .run(workload);
//! assert!(outcome.report.makespan > 0.0);
//! ```

use std::sync::Arc;

use crate::membership::Membership;
use crate::policy::Policy;
use crate::sim::{SimConfig, SimPe, SimReport, Simulator};
use swhybrid_device::cpu::CpuSseDevice;
use swhybrid_device::fpga::FpgaDevice;
use swhybrid_device::gpu::GpuDevice;
use swhybrid_device::load::LoadSchedule;
use swhybrid_device::task::TaskSpec;
use swhybrid_seq::db::DbStats;
use swhybrid_seq::synth::QuerySetSpec;

/// Outcome of a platform run: the report plus a configuration echo.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// A short human-readable description, e.g. `"4 GPUs + 4 SSEs"`.
    pub platform: String,
    /// PE names, in id order.
    pub pe_names: Vec<String>,
    /// The simulation report.
    pub report: SimReport,
}

impl SimOutcome {
    /// Wall-clock (virtual) seconds.
    pub fn seconds(&self) -> f64 {
        self.report.makespan
    }

    /// Useful GCUPS.
    pub fn gcups(&self) -> f64 {
        self.report.gcups
    }
}

/// Builder for simulated hybrid platforms.
#[derive(Clone)]
pub struct PlatformBuilder {
    pes: Vec<SimPe>,
    n_gpus: usize,
    n_sse: usize,
    n_fpga: usize,
    config: SimConfig,
}

impl Default for PlatformBuilder {
    fn default() -> Self {
        PlatformBuilder::new()
    }
}

impl PlatformBuilder {
    /// Empty platform, PSS + adjustment defaults.
    pub fn new() -> PlatformBuilder {
        PlatformBuilder {
            pes: Vec::new(),
            n_gpus: 0,
            n_sse: 0,
            n_fpga: 0,
            config: SimConfig::default(),
        }
    }

    /// Add `n` GTX 580 GPUs.
    pub fn gpus(mut self, n: usize) -> Self {
        for _ in 0..n {
            let name = format!("gpu{}", self.n_gpus);
            self.n_gpus += 1;
            self.pes
                .push(SimPe::new(name.clone(), Arc::new(GpuDevice::gtx580(name))));
        }
        self
    }

    /// Add `n` SSE cores.
    pub fn sse_cores(mut self, n: usize) -> Self {
        for _ in 0..n {
            let name = format!("sse{}", self.n_sse);
            self.n_sse += 1;
            self.pes.push(SimPe::new(
                name.clone(),
                Arc::new(CpuSseDevice::i7_core(name)),
            ));
        }
        self
    }

    /// Add `n` FPGA accelerators (future-work extension).
    pub fn fpgas(mut self, n: usize) -> Self {
        for _ in 0..n {
            let name = format!("fpga{}", self.n_fpga);
            self.n_fpga += 1;
            self.pes.push(SimPe::new(
                name.clone(),
                Arc::new(FpgaDevice::systolic(name)),
            ));
        }
        self
    }

    /// Add an arbitrary PE.
    pub fn pe(mut self, pe: SimPe) -> Self {
        self.pes.push(pe);
        self
    }

    /// Add every PE of a parsed fleet spec, in written order — the same
    /// `sse:8+gpu:2` spec the real runtimes (`master --fleet`, `serve
    /// --fleet`) accept, so a simulated platform and a real hybrid run can
    /// be configured from one string.
    pub fn fleet(mut self, spec: &swhybrid_device::FleetSpec) -> Self {
        use swhybrid_device::task::DeviceKind;
        for &(kind, count) in spec.entries() {
            self = match kind {
                DeviceKind::SseCore => self.sse_cores(count),
                DeviceKind::Gpu => self.gpus(count),
                DeviceKind::Fpga => self.fpgas(count),
            };
        }
        self
    }

    /// Select the allocation policy.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.config.master.policy = policy;
        self
    }

    /// Enable/disable the workload adjustment mechanism.
    pub fn adjustment(mut self, on: bool) -> Self {
        self.config.master.adjustment = on;
        self
    }

    /// Select the ready-queue dispatch order (extension; the paper's
    /// behaviour is [`crate::master::Dispatch::FileOrder`]).
    pub fn dispatch(mut self, dispatch: crate::master::Dispatch) -> Self {
        self.config.master.dispatch = dispatch;
        self
    }

    /// Progress-notification period (seconds).
    pub fn notify_interval(mut self, seconds: f64) -> Self {
        self.config.notify_interval = seconds;
        self
    }

    /// Master↔slave one-way latency (seconds).
    pub fn comm_latency(mut self, seconds: f64) -> Self {
        self.config.comm_latency = seconds;
        self
    }

    /// Attach a load schedule to the most recently added PE.
    pub fn load_on_last(mut self, load: LoadSchedule) -> Self {
        self.pes
            .last_mut()
            .expect("add a PE before attaching load")
            .load = load;
        self
    }

    /// Attach a load schedule to PE `index`.
    pub fn load_on(mut self, index: usize, load: LoadSchedule) -> Self {
        self.pes[index].load = load;
        self
    }

    /// Attach a membership plan to PE `index`.
    pub fn membership(mut self, index: usize, plan: Membership) -> Self {
        self.pes[index].join_at = plan.join_at;
        self.pes[index].leave_at = plan.leave_at;
        self
    }

    /// Build the workload for a database and query set: one task per query,
    /// in file order.
    pub fn workload(db: &DbStats, queries: &QuerySetSpec, seed: u64) -> Vec<TaskSpec> {
        queries
            .lengths(seed)
            .into_iter()
            .enumerate()
            .map(|(id, query_len)| TaskSpec {
                id,
                query_len,
                queries: 1,
                db_residues: db.total_residues,
                db_sequences: db.num_sequences,
            })
            .collect()
    }

    /// A short description like `"2 GPUs + 4 SSEs"`.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if self.n_gpus > 0 {
            parts.push(format!("{} GPU{}", self.n_gpus, plural(self.n_gpus)));
        }
        if self.n_sse > 0 {
            parts.push(format!("{} SSE{}", self.n_sse, plural(self.n_sse)));
        }
        if self.n_fpga > 0 {
            parts.push(format!("{} FPGA{}", self.n_fpga, plural(self.n_fpga)));
        }
        if parts.is_empty() {
            parts.push(format!("{} custom PE(s)", self.pes.len()));
        }
        parts.join(" + ")
    }

    /// Run the workload to completion under virtual time.
    pub fn run(self, workload: Vec<TaskSpec>) -> SimOutcome {
        let platform = self.describe();
        let pe_names: Vec<String> = self.pes.iter().map(|p| p.name.clone()).collect();
        // Late joiners must be listed last for the simulator; preserve the
        // user's order otherwise.
        let mut pes = self.pes;
        pes.sort_by(|a, b| {
            let ka = a.join_at > 0.0;
            let kb = b.join_at > 0.0;
            ka.cmp(&kb)
        });
        let report = Simulator::new(pes, workload, self.config).run();
        SimOutcome {
            platform,
            pe_names,
            report,
        }
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swhybrid_seq::synth::paper_database;

    fn swissprot() -> DbStats {
        paper_database("swissprot").unwrap().full_scale_stats()
    }

    #[test]
    fn workload_matches_query_spec() {
        let w = PlatformBuilder::workload(&swissprot(), &QuerySetSpec::paper(), 0);
        assert_eq!(w.len(), 40);
        assert_eq!(w[0].query_len, 100);
        assert_eq!(w[39].query_len, 5000);
        assert!(w
            .iter()
            .all(|t| t.db_residues == swissprot().total_residues));
    }

    #[test]
    fn describe_platforms() {
        assert_eq!(
            PlatformBuilder::new().gpus(4).sse_cores(4).describe(),
            "4 GPUs + 4 SSEs"
        );
        assert_eq!(PlatformBuilder::new().gpus(1).describe(), "1 GPU");
        assert_eq!(
            PlatformBuilder::new()
                .gpus(1)
                .sse_cores(2)
                .fpgas(1)
                .describe(),
            "1 GPU + 2 SSEs + 1 FPGA"
        );
    }

    #[test]
    fn gpu_only_platform_runs_swissprot_workload() {
        let w = PlatformBuilder::workload(&swissprot(), &QuerySetSpec::paper(), 0);
        let out = PlatformBuilder::new().gpus(1).run(w);
        // One GTX 580 over the full SwissProt workload: hundreds of seconds.
        assert!(out.seconds() > 300.0, "{}", out.seconds());
        assert!(out.gcups() > 10.0, "{}", out.gcups());
        assert_eq!(out.pe_names, vec!["gpu0"]);
    }

    #[test]
    fn hybrid_beats_gpu_only_on_swissprot() {
        // The paper's headline for big databases (§V-A-3): GPUs + SSEs beat
        // the GPU-only configuration when the adjustment mechanism is on.
        // (Asserted at 2 GPUs, where the SSE share is decisive; the 4-GPU
        // wash is covered by the workspace-level shape tests.)
        let w = || PlatformBuilder::workload(&swissprot(), &QuerySetSpec::paper(), 0);
        let gpu_only = PlatformBuilder::new().gpus(2).run(w());
        let hybrid = PlatformBuilder::new().gpus(2).sse_cores(4).run(w());
        assert!(
            hybrid.seconds() < gpu_only.seconds(),
            "hybrid {} vs gpu-only {}",
            hybrid.seconds(),
            gpu_only.seconds()
        );
    }

    #[test]
    fn without_adjustment_hybrid_loses_to_gpu_only() {
        // Fig. 6's striking result (strongest at 4 GPUs + 4 SSEs): without
        // the adjustment mechanism the hybrid platform is *slower* than the
        // GPU-only one — the SSE cores grab huge tasks near the end of the
        // queue and everyone waits for them.
        let w = || PlatformBuilder::workload(&swissprot(), &QuerySetSpec::paper(), 0);
        let gpu_only = PlatformBuilder::new().gpus(4).run(w());
        let hybrid_no_adj = PlatformBuilder::new()
            .gpus(4)
            .sse_cores(4)
            .adjustment(false)
            .run(w());
        assert!(
            hybrid_no_adj.seconds() > 1.5 * gpu_only.seconds(),
            "no-adjustment hybrid {} should lose badly to gpu-only {}",
            hybrid_no_adj.seconds(),
            gpu_only.seconds()
        );
    }

    #[test]
    fn adjustment_gain_matches_headline_magnitude() {
        // §I: "our workload adjustment mechanism is able to reduce the
        // total execution time in 57.2%". Our calibration lands at ~49% for
        // the same 4 GPUs + 4 SSEs SwissProt configuration.
        let w = || PlatformBuilder::workload(&swissprot(), &QuerySetSpec::paper(), 0);
        let with = PlatformBuilder::new().gpus(4).sse_cores(4).run(w());
        let without = PlatformBuilder::new()
            .gpus(4)
            .sse_cores(4)
            .adjustment(false)
            .run(w());
        let reduction = 1.0 - with.seconds() / without.seconds();
        assert!(
            (0.30..0.75).contains(&reduction),
            "time reduction {reduction:.2} out of the paper's magnitude band"
        );
    }
}
