//! Task allocation policies (§IV-A).
//!
//! "We do not believe that there is a single task allocation policy that is
//! best suited for all databases and query sequence sizes" — the policy is
//! a *user choice*. Implemented:
//!
//! * [`Policy::SelfScheduling`] — one task per request (§IV-A-1); the
//!   policy of most related work ([12], [14], [15], [16], [17]),
//! * [`Policy::Pss`] — Package Weighted Adaptive Self-Scheduling
//!   (§IV-A-2): batch = `Allocate(N, pᵢ) × Φ(pᵢ, P)` where `Allocate` is SS
//!   (= 1) and `Φ` scales by the PE's Ω-window weighted-mean speed relative
//!   to the slowest live PE — exactly the behaviour of the paper's Fig. 5
//!   (GPU 6× faster than an SSE core receives 6 tasks at once),
//! * [`Policy::Fixed`] — even up-front split (Singh & Aruni [10], who
//!   "assume that multicores and accelerators have the same processing
//!   power"),
//! * [`Policy::WFixed`] — up-front split proportional to *theoretical*
//!   speed (Meng & Chaudhary's configuration-file weights [13]).

use crate::task::PeId;

/// The allocation policy selected by the user.
///
/// ```
/// use swhybrid_core::policy::Policy;
///
/// // Fig. 5: a GPU observed 6x faster than the slowest PE gets 6 tasks.
/// let pss = Policy::pss_default();
/// let speeds = [6.0, 1.0, 1.0, 1.0];
/// let alive = [true; 4];
/// assert_eq!(pss.batch_size(0, &speeds, &alive), 6);
/// assert_eq!(pss.batch_size(1, &speeds, &alive), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// One task per request.
    SelfScheduling,
    /// Package Weighted Adaptive Self-Scheduling with window `omega`.
    Pss {
        /// Notification window Ω (≥ 1).
        omega: usize,
    },
    /// Static even split across PEs at start; nothing afterwards.
    Fixed,
    /// Static split proportional to the registered theoretical GCUPS.
    WFixed,
}

impl Policy {
    /// The paper's default: PSS with a moderate window.
    pub fn pss_default() -> Policy {
        Policy::Pss { omega: 5 }
    }

    /// Whether the policy allocates everything up-front.
    pub fn is_static(&self) -> bool {
        matches!(self, Policy::Fixed | Policy::WFixed)
    }

    /// The Ω window used for speed statistics (dynamic policies).
    pub fn omega(&self) -> usize {
        match self {
            Policy::Pss { omega } => *omega,
            _ => 5,
        }
    }

    /// Batch size for a *dynamic* request: `speeds[pe]` is the current
    /// estimated GCUPS of each registered PE (index = PeId), `alive[pe]`
    /// says whether the PE still participates.
    ///
    /// For static policies this returns 0 — quotas are computed once by
    /// [`Policy::static_quotas`].
    pub fn batch_size(&self, pe: PeId, speeds: &[f64], alive: &[bool]) -> usize {
        match self {
            Policy::SelfScheduling => 1,
            Policy::Pss { .. } => {
                let min_alive = speeds
                    .iter()
                    .zip(alive)
                    .filter(|&(_, &a)| a)
                    .map(|(&s, _)| s)
                    .fold(f64::INFINITY, f64::min);
                if !min_alive.is_finite() || min_alive <= 0.0 {
                    return 1;
                }
                let phi = (speeds[pe] / min_alive).round() as usize;
                phi.max(1)
            }
            Policy::Fixed | Policy::WFixed => 0,
        }
    }

    /// Up-front quotas for static policies: `total` tasks split across the
    /// PEs (by weight for WFixed, evenly for Fixed). Quotas sum to `total`;
    /// remainders go to the highest-weight PEs (ties: lowest id).
    pub fn static_quotas(&self, total: usize, static_gcups: &[f64]) -> Vec<usize> {
        let p = static_gcups.len();
        assert!(p > 0, "at least one PE required");
        let weights: Vec<f64> = match self {
            Policy::Fixed => vec![1.0; p],
            Policy::WFixed => static_gcups.to_vec(),
            _ => panic!("static_quotas is only defined for static policies"),
        };
        let wsum: f64 = weights.iter().sum();
        assert!(wsum > 0.0, "weights must be positive");
        // Largest-remainder apportionment.
        let exact: Vec<f64> = weights.iter().map(|w| total as f64 * w / wsum).collect();
        let mut quotas: Vec<usize> = exact.iter().map(|&e| e.floor() as usize).collect();
        let assigned: usize = quotas.iter().sum();
        let mut order: Vec<usize> = (0..p).collect();
        order.sort_by(|&a, &b| {
            let ra = exact[a] - exact[a].floor();
            let rb = exact[b] - exact[b].floor();
            rb.partial_cmp(&ra).unwrap().then(a.cmp(&b))
        });
        for &i in order.iter().take(total - assigned) {
            quotas[i] += 1;
        }
        quotas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ss_is_always_one() {
        let p = Policy::SelfScheduling;
        assert_eq!(p.batch_size(0, &[100.0, 1.0], &[true, true]), 1);
        assert_eq!(p.batch_size(1, &[100.0, 1.0], &[true, true]), 1);
        assert!(!p.is_static());
    }

    #[test]
    fn pss_fig5_worked_example() {
        // Fig. 5: 1 GPU 6× faster than 3 SSE cores → GPU gets 6 tasks,
        // each SSE core gets 1.
        let p = Policy::pss_default();
        let speeds = [6.0, 1.0, 1.0, 1.0];
        let alive = [true; 4];
        assert_eq!(p.batch_size(0, &speeds, &alive), 6);
        for pe in 1..4 {
            assert_eq!(p.batch_size(pe, &speeds, &alive), 1);
        }
    }

    #[test]
    fn pss_rounds_ratio() {
        let p = Policy::pss_default();
        let alive = [true, true];
        assert_eq!(p.batch_size(0, &[2.4, 1.0], &alive), 2);
        assert_eq!(p.batch_size(0, &[2.6, 1.0], &alive), 3);
        // A PE slower than the minimum still gets at least one task.
        assert_eq!(p.batch_size(1, &[10.0, 0.4], &[true, true]), 1);
    }

    #[test]
    fn pss_ignores_dead_pes_for_minimum() {
        let p = Policy::pss_default();
        // PE 1 is dead; minimum alive speed is 5.0, not 1.0.
        let speeds = [10.0, 1.0, 5.0];
        let alive = [true, false, true];
        assert_eq!(p.batch_size(0, &speeds, &alive), 2);
    }

    #[test]
    fn pss_degenerate_speeds_fall_back_to_one() {
        let p = Policy::pss_default();
        assert_eq!(p.batch_size(0, &[0.0, 0.0], &[true, true]), 1);
        assert_eq!(p.batch_size(0, &[5.0], &[false]), 1);
    }

    #[test]
    fn fixed_quotas_even() {
        let q = Policy::Fixed.static_quotas(10, &[30.0, 2.7, 2.7]);
        assert_eq!(q.iter().sum::<usize>(), 10);
        assert_eq!(q, vec![4, 3, 3]);
    }

    #[test]
    fn wfixed_quotas_proportional() {
        let q = Policy::WFixed.static_quotas(12, &[30.0, 3.0, 3.0]);
        assert_eq!(q.iter().sum::<usize>(), 12);
        // 30:3:3 → 10:1:1.
        assert_eq!(q, vec![10, 1, 1]);
    }

    #[test]
    fn quotas_handle_remainders() {
        let q = Policy::WFixed.static_quotas(10, &[2.0, 1.0, 1.0]);
        assert_eq!(q.iter().sum::<usize>(), 10);
        assert_eq!(q[0], 5);
        assert_eq!(q[1] + q[2], 5);
    }

    #[test]
    fn quotas_with_more_pes_than_tasks() {
        let q = Policy::Fixed.static_quotas(2, &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(q.iter().sum::<usize>(), 2);
        assert!(q.iter().all(|&x| x <= 1));
    }

    #[test]
    #[should_panic(expected = "only defined for static")]
    fn dynamic_policy_has_no_quotas() {
        Policy::SelfScheduling.static_quotas(5, &[1.0]);
    }

    #[test]
    fn omega_accessor() {
        assert_eq!(Policy::Pss { omega: 9 }.omega(), 9);
        assert_eq!(Policy::pss_default().omega(), 5);
    }
}
