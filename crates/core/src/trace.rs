//! Execution traces: per-PE Gantt segments and notification series.
//!
//! These back the paper's figures: Fig. 5 (the task allocation timelines
//! with and without the adjustment mechanism) and Figs. 7/8 (per-core GCUPS
//! over time in dedicated and non-dedicated runs).

use crate::task::{PeId, TaskId};

/// Why a trace segment ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SegmentEnd {
    /// The PE completed the task (and was the winner if replicated).
    Completed,
    /// The task was finished first by another PE; this replica was
    /// cancelled mid-flight.
    Cancelled,
    /// The PE left the platform while executing (membership extension).
    Abandoned,
}

/// One contiguous span of a PE executing one task.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceSegment {
    /// The executing PE.
    pub pe: PeId,
    /// The task being executed.
    pub task: TaskId,
    /// Start time (seconds of virtual time).
    pub start: f64,
    /// End time.
    pub end: f64,
    /// How the segment ended.
    pub end_kind: SegmentEnd,
}

/// One periodic progress notification.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NotifySample {
    /// The reporting PE.
    pub pe: PeId,
    /// Notification time.
    pub time: f64,
    /// Observed GCUPS over the preceding interval.
    pub gcups: f64,
}

/// Full execution trace of a run.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct Trace {
    /// Gantt segments in completion order.
    pub segments: Vec<TraceSegment>,
    /// Notification series in time order.
    pub notifications: Vec<NotifySample>,
}

impl Trace {
    /// Segments of one PE, in time order.
    pub fn pe_segments(&self, pe: PeId) -> Vec<&TraceSegment> {
        let mut segs: Vec<&TraceSegment> = self.segments.iter().filter(|s| s.pe == pe).collect();
        segs.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite times"));
        segs
    }

    /// Busy seconds of one PE (sum of its segment durations).
    pub fn busy_seconds(&self, pe: PeId) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.pe == pe)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Seconds spent on replicas that were eventually cancelled — the cost
    /// side of the workload adjustment mechanism.
    pub fn cancelled_seconds(&self) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.end_kind == SegmentEnd::Cancelled)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Notification series of one PE as `(time, gcups)` pairs (Figs. 7/8).
    pub fn pe_notifications(&self, pe: PeId) -> Vec<(f64, f64)> {
        self.notifications
            .iter()
            .filter(|n| n.pe == pe)
            .map(|n| (n.time, n.gcups))
            .collect()
    }

    /// ASCII Gantt chart in the style of the paper's Fig. 5: one row per
    /// PE, labelled spans `[tNN ]`; `x` marks a cancelled replica.
    pub fn render_gantt(&self, pe_names: &[String], width: usize) -> String {
        let makespan = self
            .segments
            .iter()
            .map(|s| s.end)
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let scale = width as f64 / makespan;
        let mut out = String::new();
        for (pe, name) in pe_names.iter().enumerate() {
            let mut row = vec![b' '; width + 1];
            for seg in self.segments.iter().filter(|s| s.pe == pe) {
                let a = (seg.start * scale).floor() as usize;
                let b = ((seg.end * scale).ceil() as usize).min(width);
                let label = match seg.end_kind {
                    SegmentEnd::Cancelled => format!("x{}", seg.task),
                    _ => format!("t{}", seg.task),
                };
                let bytes = label.as_bytes();
                for (i, slot) in row[a..b.max(a + 1)].iter_mut().enumerate() {
                    *slot = if i < bytes.len() { bytes[i] } else { b'-' };
                }
            }
            out.push_str(&format!("{name:>8} |"));
            out.push_str(std::str::from_utf8(&row).expect("ascii"));
            out.push('\n');
        }
        out.push_str(&format!(
            "{:>8} +{}>\n{:>8}  0{:>width$.1}s\n",
            "",
            "-".repeat(width),
            "",
            makespan,
            width = width
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        Trace {
            segments: vec![
                TraceSegment {
                    pe: 0,
                    task: 0,
                    start: 0.0,
                    end: 1.0,
                    end_kind: SegmentEnd::Completed,
                },
                TraceSegment {
                    pe: 1,
                    task: 1,
                    start: 0.0,
                    end: 6.0,
                    end_kind: SegmentEnd::Completed,
                },
                TraceSegment {
                    pe: 0,
                    task: 2,
                    start: 1.0,
                    end: 2.5,
                    end_kind: SegmentEnd::Cancelled,
                },
            ],
            notifications: vec![
                NotifySample {
                    pe: 0,
                    time: 5.0,
                    gcups: 2.5,
                },
                NotifySample {
                    pe: 1,
                    time: 5.0,
                    gcups: 1.0,
                },
                NotifySample {
                    pe: 0,
                    time: 10.0,
                    gcups: 2.4,
                },
            ],
        }
    }

    #[test]
    fn busy_and_cancelled_seconds() {
        let t = trace();
        assert!((t.busy_seconds(0) - 2.5).abs() < 1e-12);
        assert!((t.busy_seconds(1) - 6.0).abs() < 1e-12);
        assert!((t.cancelled_seconds() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn pe_segments_sorted_by_start() {
        let t = trace();
        let segs = t.pe_segments(0);
        assert_eq!(segs.len(), 2);
        assert!(segs[0].start <= segs[1].start);
    }

    #[test]
    fn notification_series_filtered() {
        let t = trace();
        let series = t.pe_notifications(0);
        assert_eq!(series, vec![(5.0, 2.5), (10.0, 2.4)]);
        assert_eq!(t.pe_notifications(2), vec![]);
    }

    #[test]
    fn gantt_renders_all_pes() {
        let t = trace();
        let names = vec!["GPU1".to_string(), "SSE1".to_string()];
        let g = t.render_gantt(&names, 40);
        assert!(g.contains("GPU1"));
        assert!(g.contains("SSE1"));
        assert!(g.contains("t0"));
        assert!(g.contains("x2"), "cancelled replica must be marked:\n{g}");
    }

    #[test]
    fn empty_trace_renders() {
        let t = Trace::default();
        let g = t.render_gantt(&["a".to_string()], 10);
        assert!(g.contains('a'));
    }
}
