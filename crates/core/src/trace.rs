//! Execution traces: per-PE Gantt segments and notification series.
//!
//! These back the paper's figures: Fig. 5 (the task allocation timelines
//! with and without the adjustment mechanism) and Figs. 7/8 (per-core GCUPS
//! over time in dedicated and non-dedicated runs).
//!
//! The real runtimes additionally emit a structured [`RuntimeEvent`] stream
//! — every scheduling decision (assignment, steal, replication, requeue) and
//! every membership change (join, leave, suspected death) as a timestamped
//! record, exportable as JSON via [`events_to_json`].

use crate::task::{PeId, TaskId};
use swhybrid_json::Json;

/// Why a trace segment ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentEnd {
    /// The PE completed the task (and was the winner if replicated).
    Completed,
    /// The task was finished first by another PE; this replica was
    /// cancelled mid-flight.
    Cancelled,
    /// The PE left the platform while executing (membership extension).
    Abandoned,
}

/// One contiguous span of a PE executing one task.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSegment {
    /// The executing PE.
    pub pe: PeId,
    /// The task being executed.
    pub task: TaskId,
    /// Start time (seconds of virtual time).
    pub start: f64,
    /// End time.
    pub end: f64,
    /// How the segment ended.
    pub end_kind: SegmentEnd,
}

/// One periodic progress notification.
#[derive(Debug, Clone, PartialEq)]
pub struct NotifySample {
    /// The reporting PE.
    pub pe: PeId,
    /// Notification time.
    pub time: f64,
    /// Observed GCUPS over the preceding interval.
    pub gcups: f64,
}

/// Full execution trace of a run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Gantt segments in completion order.
    pub segments: Vec<TraceSegment>,
    /// Notification series in time order.
    pub notifications: Vec<NotifySample>,
}

impl Trace {
    /// Segments of one PE, in time order.
    pub fn pe_segments(&self, pe: PeId) -> Vec<&TraceSegment> {
        let mut segs: Vec<&TraceSegment> = self.segments.iter().filter(|s| s.pe == pe).collect();
        segs.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite times"));
        segs
    }

    /// Busy seconds of one PE (sum of its segment durations).
    pub fn busy_seconds(&self, pe: PeId) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.pe == pe)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Seconds spent on replicas that were eventually cancelled — the cost
    /// side of the workload adjustment mechanism.
    pub fn cancelled_seconds(&self) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.end_kind == SegmentEnd::Cancelled)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Notification series of one PE as `(time, gcups)` pairs (Figs. 7/8).
    pub fn pe_notifications(&self, pe: PeId) -> Vec<(f64, f64)> {
        self.notifications
            .iter()
            .filter(|n| n.pe == pe)
            .map(|n| (n.time, n.gcups))
            .collect()
    }

    /// ASCII Gantt chart in the style of the paper's Fig. 5: one row per
    /// PE, labelled spans `[tNN ]`; `x` marks a cancelled replica.
    pub fn render_gantt(&self, pe_names: &[String], width: usize) -> String {
        let makespan = self
            .segments
            .iter()
            .map(|s| s.end)
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let scale = width as f64 / makespan;
        let mut out = String::new();
        for (pe, name) in pe_names.iter().enumerate() {
            let mut row = vec![b' '; width + 1];
            for seg in self.segments.iter().filter(|s| s.pe == pe) {
                let a = (seg.start * scale).floor() as usize;
                let b = ((seg.end * scale).ceil() as usize).min(width);
                let label = match seg.end_kind {
                    SegmentEnd::Cancelled => format!("x{}", seg.task),
                    _ => format!("t{}", seg.task),
                };
                let bytes = label.as_bytes();
                for (i, slot) in row[a..b.max(a + 1)].iter_mut().enumerate() {
                    *slot = if i < bytes.len() { bytes[i] } else { b'-' };
                }
            }
            out.push_str(&format!("{name:>8} |"));
            out.push_str(std::str::from_utf8(&row).expect("ascii"));
            out.push('\n');
        }
        out.push_str(&format!(
            "{:>8} +{}>\n{:>8}  0{:>width$.1}s\n",
            "",
            "-".repeat(width),
            "",
            makespan,
            width = width
        ));
        out
    }
}

/// One timestamped scheduling/membership event from a real runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeEvent {
    /// Seconds since the run started.
    pub time: f64,
    /// What happened.
    pub kind: EventKind,
}

/// The event vocabulary of the real runtimes (threaded and TCP).
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A PE registered before the run started.
    PeRegistered {
        /// The PE.
        pe: PeId,
        /// Its human name.
        name: String,
    },
    /// A PE joined mid-run (reconnect or late arrival).
    PeJoined {
        /// The PE.
        pe: PeId,
        /// Its human name.
        name: String,
    },
    /// A PE left cleanly (hang-up / shutdown observed).
    PeLeft {
        /// The PE.
        pe: PeId,
    },
    /// A PE missed its liveness deadline and was declared dead.
    PeSuspectedDead {
        /// The PE.
        pe: PeId,
    },
    /// New tasks were appended to the pool mid-run (multi-batch lifecycle:
    /// a persistent master accepting queries after the initial workload).
    BatchSubmitted {
        /// The newly created tasks, in submission order.
        tasks: Vec<TaskId>,
    },
    /// A batch of ready tasks was assigned to a PE.
    TasksAssigned {
        /// The receiving PE.
        pe: PeId,
        /// The assigned tasks, in dispatch order.
        tasks: Vec<TaskId>,
    },
    /// A PE began executing a task.
    TaskStarted {
        /// The executing PE.
        pe: PeId,
        /// The task.
        task: TaskId,
    },
    /// An unstarted batch entry was stolen from another PE.
    TaskStolen {
        /// The thief (requesting idle PE).
        pe: PeId,
        /// The task.
        task: TaskId,
        /// The previous holder.
        from: PeId,
    },
    /// An executing task was replicated onto an idle PE (§IV-A-3).
    TaskReplicated {
        /// The additional executor.
        pe: PeId,
        /// The task.
        task: TaskId,
    },
    /// A task finished.
    TaskFinished {
        /// The completing PE.
        pe: PeId,
        /// The task.
        task: TaskId,
        /// Whether this PE crossed the line first (its results count).
        winner: bool,
        /// The measured speed of the completion, GCUPS.
        measured_gcups: f64,
    },
    /// Kernel-usage breakdown of a finished task's scan: which kernel
    /// family scored how many subjects (striped vs inter-sequence, with
    /// their i8/i16/scalar saturation fallbacks), how chunks were
    /// dispatched, and the DP cells actually computed.
    TaskKernels {
        /// The completing PE.
        pe: PeId,
        /// The task.
        task: TaskId,
        /// The merged kernel counters of the task's scan.
        kernels: swhybrid_simd::engine::KernelStats,
    },
    /// A replica was cancelled because another PE finished first; its work
    /// so far is the mechanism's duplicated-cells cost.
    ReplicaCancelled {
        /// The cancelled executor.
        pe: PeId,
        /// The task.
        task: TaskId,
        /// Estimated cells this replica had computed when cancelled.
        wasted_cells: u64,
    },
    /// A task held by a departed PE was returned to the ready queue.
    TaskRequeued {
        /// The task.
        task: TaskId,
        /// The PE that held it.
        from: PeId,
    },
    /// Every task finished.
    RunCompleted,
}

impl EventKind {
    /// The event's snake_case name as used in the JSON export.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::PeRegistered { .. } => "pe_registered",
            EventKind::PeJoined { .. } => "pe_joined",
            EventKind::PeLeft { .. } => "pe_left",
            EventKind::PeSuspectedDead { .. } => "pe_suspected_dead",
            EventKind::BatchSubmitted { .. } => "batch_submitted",
            EventKind::TasksAssigned { .. } => "tasks_assigned",
            EventKind::TaskStarted { .. } => "task_started",
            EventKind::TaskStolen { .. } => "task_stolen",
            EventKind::TaskReplicated { .. } => "task_replicated",
            EventKind::TaskFinished { .. } => "task_finished",
            EventKind::TaskKernels { .. } => "task_kernels",
            EventKind::ReplicaCancelled { .. } => "replica_cancelled",
            EventKind::TaskRequeued { .. } => "task_requeued",
            EventKind::RunCompleted => "run_completed",
        }
    }
}

impl RuntimeEvent {
    /// The event as a JSON object: `{"time": …, "event": …, …fields}`.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![
            ("time".into(), Json::Num(self.time)),
            ("event".into(), Json::str(self.kind.name())),
        ];
        let mut push = |k: &str, v: Json| fields.push((k.into(), v));
        match &self.kind {
            EventKind::PeRegistered { pe, name } | EventKind::PeJoined { pe, name } => {
                push("pe", Json::Num(*pe as f64));
                push("name", Json::str(name));
            }
            EventKind::PeLeft { pe } | EventKind::PeSuspectedDead { pe } => {
                push("pe", Json::Num(*pe as f64));
            }
            EventKind::BatchSubmitted { tasks } => {
                push(
                    "tasks",
                    Json::Arr(tasks.iter().map(|&t| Json::Num(t as f64)).collect()),
                );
            }
            EventKind::TasksAssigned { pe, tasks } => {
                push("pe", Json::Num(*pe as f64));
                push(
                    "tasks",
                    Json::Arr(tasks.iter().map(|&t| Json::Num(t as f64)).collect()),
                );
            }
            EventKind::TaskStarted { pe, task } | EventKind::TaskReplicated { pe, task } => {
                push("pe", Json::Num(*pe as f64));
                push("task", Json::Num(*task as f64));
            }
            EventKind::TaskStolen { pe, task, from } => {
                push("pe", Json::Num(*pe as f64));
                push("task", Json::Num(*task as f64));
                push("from", Json::Num(*from as f64));
            }
            EventKind::TaskFinished {
                pe,
                task,
                winner,
                measured_gcups,
            } => {
                push("pe", Json::Num(*pe as f64));
                push("task", Json::Num(*task as f64));
                push("winner", Json::Bool(*winner));
                push("measured_gcups", Json::Num(*measured_gcups));
            }
            EventKind::TaskKernels { pe, task, kernels } => {
                push("pe", Json::Num(*pe as f64));
                push("task", Json::Num(*task as f64));
                for (key, value) in [
                    ("striped_i8", kernels.resolved_i8),
                    ("striped_i16", kernels.resolved_i16),
                    ("striped_scalar", kernels.resolved_scalar),
                    ("interseq_i8", kernels.interseq_i8),
                    ("interseq_i16", kernels.interseq_i16),
                    ("interseq_scalar", kernels.interseq_scalar),
                    ("chunks_striped", kernels.chunks_striped),
                    ("chunks_interseq", kernels.chunks_interseq),
                    ("cells_computed", kernels.cells_computed),
                ] {
                    push(key, Json::Num(value as f64));
                }
            }
            EventKind::ReplicaCancelled {
                pe,
                task,
                wasted_cells,
            } => {
                push("pe", Json::Num(*pe as f64));
                push("task", Json::Num(*task as f64));
                push("wasted_cells", Json::Num(*wasted_cells as f64));
            }
            EventKind::TaskRequeued { task, from } => {
                push("task", Json::Num(*task as f64));
                push("from", Json::Num(*from as f64));
            }
            EventKind::RunCompleted => {}
        }
        Json::Obj(fields)
    }
}

/// An event stream as a JSON array, in emission order.
pub fn events_to_json(events: &[RuntimeEvent]) -> Json {
    Json::Arr(events.iter().map(RuntimeEvent::to_json).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        Trace {
            segments: vec![
                TraceSegment {
                    pe: 0,
                    task: 0,
                    start: 0.0,
                    end: 1.0,
                    end_kind: SegmentEnd::Completed,
                },
                TraceSegment {
                    pe: 1,
                    task: 1,
                    start: 0.0,
                    end: 6.0,
                    end_kind: SegmentEnd::Completed,
                },
                TraceSegment {
                    pe: 0,
                    task: 2,
                    start: 1.0,
                    end: 2.5,
                    end_kind: SegmentEnd::Cancelled,
                },
            ],
            notifications: vec![
                NotifySample {
                    pe: 0,
                    time: 5.0,
                    gcups: 2.5,
                },
                NotifySample {
                    pe: 1,
                    time: 5.0,
                    gcups: 1.0,
                },
                NotifySample {
                    pe: 0,
                    time: 10.0,
                    gcups: 2.4,
                },
            ],
        }
    }

    #[test]
    fn busy_and_cancelled_seconds() {
        let t = trace();
        assert!((t.busy_seconds(0) - 2.5).abs() < 1e-12);
        assert!((t.busy_seconds(1) - 6.0).abs() < 1e-12);
        assert!((t.cancelled_seconds() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn pe_segments_sorted_by_start() {
        let t = trace();
        let segs = t.pe_segments(0);
        assert_eq!(segs.len(), 2);
        assert!(segs[0].start <= segs[1].start);
    }

    #[test]
    fn notification_series_filtered() {
        let t = trace();
        let series = t.pe_notifications(0);
        assert_eq!(series, vec![(5.0, 2.5), (10.0, 2.4)]);
        assert_eq!(t.pe_notifications(2), vec![]);
    }

    #[test]
    fn gantt_renders_all_pes() {
        let t = trace();
        let names = vec!["GPU1".to_string(), "SSE1".to_string()];
        let g = t.render_gantt(&names, 40);
        assert!(g.contains("GPU1"));
        assert!(g.contains("SSE1"));
        assert!(g.contains("t0"));
        assert!(g.contains("x2"), "cancelled replica must be marked:\n{g}");
    }

    #[test]
    fn empty_trace_renders() {
        let t = Trace::default();
        let g = t.render_gantt(&["a".to_string()], 10);
        assert!(g.contains('a'));
    }

    #[test]
    fn events_export_as_json_array() {
        let events = vec![
            RuntimeEvent {
                time: 0.0,
                kind: EventKind::PeRegistered {
                    pe: 0,
                    name: "gpu0".into(),
                },
            },
            RuntimeEvent {
                time: 0.5,
                kind: EventKind::TasksAssigned {
                    pe: 0,
                    tasks: vec![0, 1],
                },
            },
            RuntimeEvent {
                time: 1.25,
                kind: EventKind::TaskFinished {
                    pe: 0,
                    task: 0,
                    winner: true,
                    measured_gcups: 12.5,
                },
            },
            RuntimeEvent {
                time: 2.0,
                kind: EventKind::RunCompleted,
            },
        ];
        let json = events_to_json(&events);
        let arr = json.as_array().unwrap();
        assert_eq!(arr.len(), 4);
        assert_eq!(
            arr[0].get("event").unwrap().as_str().unwrap(),
            "pe_registered"
        );
        assert_eq!(arr[0].get("name").unwrap().as_str().unwrap(), "gpu0");
        assert_eq!(arr[1].get("tasks").unwrap().as_array().unwrap().len(), 2);
        assert!(arr[2].get("winner").unwrap().as_bool().unwrap());
        // Round-trips through the textual form.
        let back = Json::parse(&json.to_string()).unwrap();
        assert_eq!(back.as_array().unwrap().len(), 4);
    }

    #[test]
    fn every_event_kind_has_a_distinct_name() {
        let kinds = [
            EventKind::PeRegistered {
                pe: 0,
                name: String::new(),
            },
            EventKind::PeJoined {
                pe: 0,
                name: String::new(),
            },
            EventKind::PeLeft { pe: 0 },
            EventKind::PeSuspectedDead { pe: 0 },
            EventKind::BatchSubmitted { tasks: vec![] },
            EventKind::TasksAssigned {
                pe: 0,
                tasks: vec![],
            },
            EventKind::TaskStarted { pe: 0, task: 0 },
            EventKind::TaskStolen {
                pe: 0,
                task: 0,
                from: 1,
            },
            EventKind::TaskReplicated { pe: 0, task: 0 },
            EventKind::TaskFinished {
                pe: 0,
                task: 0,
                winner: true,
                measured_gcups: 0.0,
            },
            EventKind::TaskKernels {
                pe: 0,
                task: 0,
                kernels: swhybrid_simd::engine::KernelStats::default(),
            },
            EventKind::ReplicaCancelled {
                pe: 0,
                task: 0,
                wasted_cells: 0,
            },
            EventKind::TaskRequeued { task: 0, from: 0 },
            EventKind::RunCompleted,
        ];
        let names: std::collections::HashSet<&str> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
    }
}
