//! The one pool-drive loop shared by every real runtime.
//!
//! The paper's task environment is a single master scheduling a *hybrid*
//! pool of PEs (Fig. 1). Historically this repository grew three separate
//! drivers of the [`Master`] state machine — the virtual-time simulator,
//! the threaded runtime, and the TCP `MasterServer` — each re-implementing
//! the same request/execute/report cycle. This module is the extraction:
//! one [`PePool`] (the master plus membership bookkeeping behind a
//! [`WaitHub`]) and one [`drive`] loop, with the *transport* abstracted
//! behind [`PeEndpoint`]. A local worker thread ([`LocalEndpoint`]) and a
//! remote TCP slave session (`net::serve_connection`) are now just two
//! endpoint implementations feeding the same master with identical
//! event/stat flow: `RuntimeEvent`s, `KernelStats`, PSS progress
//! notifications, replication/steal, and liveness-driven requeue.
//!
//! What a runtime still chooses is what happens to a finished task's
//! result: that is the [`PoolOwner`] — batch runs collect hits per task
//! ([`BatchOwner`]), the persistent daemon shards queries and fires
//! completions. The owner also decides whether tasks have a wire payload
//! ([`PoolOwner::task_payload`]) so self-describing tasks can be shipped
//! to remote slaves that never saw the query.
//!
//! Locking discipline: the pool's [`WaitHub`] guards the master *and* the
//! owner. Any mutation that can unblock a parked PE notifies the hub;
//! waiters re-check their predicate in a loop. Owner callbacks run under
//! the lock and must stay short — slow work (completion callbacks, socket
//! writes) is returned as a [`Deferred`] closure and run off-lock.

use std::collections::{HashMap, VecDeque};
use std::io;

use std::time::Duration;

use crate::master::{Assignment, Master};
use crate::sched::{Clock, WallClock};
use crate::shared::{HubGuard, WaitHub};
use crate::task::{PeId, TaskId, TaskState};
use crate::trace::EventKind;
use swhybrid_simd::engine::KernelStats;
use swhybrid_simd::search::Hit;

/// One query's slice of a fused task's result: what the serve owner
/// demuxes back to the individual job (paired positionally with the
/// payload's query batch).
#[derive(Debug, Clone, Default)]
pub struct FusedQueryResult {
    /// This query's ranked hits over the task's shard.
    pub hits: Vec<Hit>,
    /// DP cells this query's passes actually computed.
    pub cells: u64,
    /// This query's kernel counters (per-query attribution).
    pub kernels: Option<KernelStats>,
}

/// What one PE produced for one task.
#[derive(Debug, Clone, Default)]
pub struct TaskResult {
    /// Observed speed of the completion. `None` means the scan was skipped
    /// or cancelled and carries no speed information — it must *not* enter
    /// the Ω-window mean (reporting `0.0` would poison PSS).
    pub gcups: Option<f64>,
    /// The task's ranked hits (the first finisher's hits win). Empty for
    /// fused tasks, whose hits live per query in `fused`.
    pub hits: Vec<Hit>,
    /// DP cells actually computed (summed over the batch when fused).
    pub cells: u64,
    /// Kernel-family counters of the scan, when the backend reports them
    /// (merged over the batch when fused).
    pub kernels: Option<KernelStats>,
    /// Per-query results of a fused task, paired positionally with the
    /// [`TaskPayload::queries`] batch. `None` for the paper's
    /// one-query-per-task grain.
    pub fused: Option<Vec<FusedQueryResult>>,
}

/// A scheduling decision delivered to an endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeCommand {
    /// Fresh ready tasks, in allocation order.
    Tasks(Vec<TaskId>),
    /// One task to execute now (a steal or a replica).
    Execute(TaskId),
    /// The pool is drained and not keeping alive: the PE retires.
    Done,
}

/// What an endpoint reports back to the drive loop.
pub enum PeEvent {
    /// The PE is idle and wants an assignment.
    NeedWork,
    /// The PE began executing a task.
    Started(TaskId),
    /// The PE finished a task.
    Finished {
        /// The task.
        task: TaskId,
        /// What it produced.
        result: TaskResult,
    },
    /// A periodic PSS progress notification (observed GCUPS).
    Progress(f64),
    /// The PE is gone (hang-up, fatal transport error, or — with
    /// `suspected_dead` — a missed liveness deadline).
    Gone {
        /// Whether this is a liveness verdict rather than an observed
        /// hang-up.
        suspected_dead: bool,
    },
}

/// Work the owner wants run *after* the pool lock is released (completion
/// callbacks, socket writes — anything slow or re-entrant).
pub type Deferred = Box<dyn FnOnce() + Send>;

/// One query of a self-describing task payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPayload {
    /// The encoded query residues.
    pub query: Vec<u8>,
    /// Hits retained for the shard, for this query.
    pub top_n: usize,
}

/// A self-describing task for remote execution: everything a slave that
/// has only the database needs in order to run the scan. A fused task
/// carries the whole co-resident query batch; the shard is scanned once
/// and every query scored against it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPayload {
    /// The query batch (length 1 for the paper's one-query grain).
    pub queries: Vec<QueryPayload>,
    /// Database shard `[start, end)` in global subject indices.
    pub shard: (usize, usize),
}

/// What a runtime does with results — the policy half the shared loop
/// does not own.
pub trait PoolOwner: Send {
    /// A task finished on `pe`. Runs under the pool lock, after the
    /// master has been informed (`was_first` is whether this PE crossed
    /// the line first — losers' results are normally discarded). Return a
    /// [`Deferred`] to run work off-lock.
    fn on_finished(
        &mut self,
        master: &mut Master,
        pe: PeId,
        task: TaskId,
        result: TaskResult,
        was_first: bool,
        now: f64,
    ) -> Option<Deferred>;

    /// The wire payload of a task, for owners whose tasks are
    /// self-describing (the daemon's query shards). `None` means the task
    /// is identified by id alone (batch runs, where both sides hold the
    /// same files) — or, for a payload-bearing owner, that the task is no
    /// longer shippable (e.g. its database generation was swapped out).
    fn task_payload(&self, _master: &Master, _task: TaskId) -> Option<TaskPayload> {
        None
    }

    /// FNV-1a digest of the owner's database, when remote slaves must
    /// prove they hold the same one before being admitted.
    fn db_digest(&self) -> Option<u64> {
        None
    }
}

/// Membership record of one admitted PE.
#[derive(Debug)]
struct Member {
    /// No further commands will be delivered (retired or torn down).
    closed: bool,
    /// [`Master::pe_leaves`] bookkeeping ran (or was deliberately skipped
    /// for a clean retirement); guards against double teardown.
    left: bool,
    /// Admitted over the wire rather than as a local thread.
    remote: bool,
}

/// The lock-guarded heart of a pool: the master, the owner, and the
/// membership/barrier/abort state every endpoint shares.
pub struct PoolCore<S> {
    /// The scheduling state machine.
    pub master: Master,
    /// The result policy.
    pub owner: S,
    members: HashMap<PeId, Member>,
    registered: usize,
    expected: usize,
    barrier_open: bool,
    alive: usize,
    abort: Option<(io::ErrorKind, String)>,
}

impl<S> PoolCore<S> {
    /// PEs registered before the barrier opened.
    pub fn registered(&self) -> usize {
        self.registered
    }

    /// Members admitted and not yet closed.
    pub fn alive(&self) -> usize {
        self.alive
    }

    /// Whether the registration barrier has opened (work may flow).
    pub fn barrier_open(&self) -> bool {
        self.barrier_open
    }

    /// Force the barrier open (degraded start after a registration
    /// timeout with at least one PE).
    pub fn open_barrier(&mut self) {
        self.barrier_open = true;
    }

    /// The pending abort, if a fatal condition was recorded.
    pub fn abort(&self) -> Option<&(io::ErrorKind, String)> {
        self.abort.as_ref()
    }

    /// Record a fatal condition: every endpoint unwinds at its next
    /// scheduling point (the caller must notify the hub).
    pub fn set_abort(&mut self, kind: io::ErrorKind, message: impl Into<String>) {
        if self.abort.is_none() {
            self.abort = Some((kind, message.into()));
        }
    }

    /// Take the pending abort (teardown).
    pub fn take_abort(&mut self) -> Option<(io::ErrorKind, String)> {
        self.abort.take()
    }

    /// Live remote members (for teardown: local threads exit via
    /// [`PeCommand::Done`], remote sessions must be disconnected).
    pub fn remote_members(&self) -> Vec<PeId> {
        let mut pes: Vec<PeId> = self
            .members
            .iter()
            .filter(|(_, m)| m.remote && !m.closed)
            .map(|(&pe, _)| pe)
            .collect();
        pes.sort_unstable();
        pes
    }

    /// Whether commands can still be delivered to `pe`.
    pub fn is_open(&self, pe: PeId) -> bool {
        self.members.get(&pe).is_some_and(|m| !m.closed)
    }

    /// Tear down a member: exactly once per PE, its held tasks return to
    /// the ready queue ([`Master::pe_leaves`]). `suspected_dead` marks a
    /// liveness verdict (silence past the deadline) rather than an
    /// observed hang-up. Callable under an existing lock — the caller
    /// must notify the hub afterwards.
    pub fn disconnect(&mut self, pe: PeId, now: f64, suspected_dead: bool) {
        let Some(m) = self.members.get_mut(&pe) else {
            return;
        };
        if m.left {
            return;
        }
        m.left = true;
        m.closed = true;
        self.alive -= 1;
        if suspected_dead {
            self.master
                .record_event(now, EventKind::PeSuspectedDead { pe });
        }
        let held: Vec<TaskId> = self
            .master
            .pool()
            .executing_ids()
            .filter(|&t| self.master.pool().get(t).executors.contains(&pe))
            .collect();
        self.master.pe_leaves(pe, &held);
    }
}

/// A master plus its membership state behind a [`WaitHub`], with one
/// wall-clock epoch — the shared substrate both transports drive. The
/// real-time counterpart of the simulator's
/// [`VirtualClock`](crate::sched::VirtualClock): both produce the `now`
/// stamps the shared scheduling engine consumes.
pub struct PePool<S> {
    hub: WaitHub<PoolCore<S>>,
    clock: WallClock,
}

/// How long a parked PE sleeps between predicate re-checks even without a
/// notification — a lost-wakeup safety net, not a scheduling latency (all
/// transitions notify the hub).
const PARK_QUANTUM: Duration = Duration::from_millis(100);

impl<S: PoolOwner> PePool<S> {
    /// New pool around `master`. The registration barrier opens once
    /// `expected` PEs have been admitted (0 opens it immediately — members
    /// then join as latecomers).
    pub fn new(master: Master, owner: S, expected: usize) -> PePool<S> {
        PePool {
            hub: WaitHub::new(PoolCore {
                master,
                owner,
                members: HashMap::new(),
                registered: 0,
                expected,
                barrier_open: expected == 0,
                alive: 0,
                abort: None,
            }),
            clock: WallClock::new(),
        }
    }

    /// Seconds since the pool was created — the `now` of every master
    /// call and event timestamp.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Lock the core (master + owner + membership).
    pub fn lock(&self) -> HubGuard<'_, PoolCore<S>> {
        self.hub.lock()
    }

    /// Wake every parked endpoint to re-check its predicate.
    pub fn notify_all(&self) {
        self.hub.notify_all();
    }

    /// Park on the hub until notified (see [`WaitHub::wait`]).
    pub fn wait<'a>(&'a self, guard: HubGuard<'a, PoolCore<S>>) -> HubGuard<'a, PoolCore<S>> {
        self.hub.wait(guard)
    }

    /// Park with an upper bound, for waiters that also watch a deadline.
    pub fn wait_timeout<'a>(
        &'a self,
        guard: HubGuard<'a, PoolCore<S>>,
        timeout: Duration,
    ) -> HubGuard<'a, PoolCore<S>> {
        self.hub.wait_timeout(guard, timeout)
    }

    /// Consume the pool (after every endpoint has unwound).
    pub fn into_inner(self) -> PoolCore<S> {
        self.hub.into_inner()
    }

    /// Admit a PE: before the barrier opens it registers (and may open the
    /// barrier); afterwards it joins as a latecomer. Non-finite or
    /// non-positive speed priors are clamped to the smallest positive
    /// value rather than rejected (a misreported prior must not crash the
    /// pool — PSS replaces it with observations anyway).
    pub fn admit(&self, name: &str, static_gcups: f64, remote: bool) -> PeId {
        let gcups = if static_gcups.is_finite() && static_gcups > 0.0 {
            static_gcups
        } else {
            f64::MIN_POSITIVE
        };
        let mut g = self.lock();
        let pe = if g.barrier_open {
            let now = self.now();
            g.master.pe_joins(name, gcups, now)
        } else {
            let pe = g.master.register(name, gcups);
            g.registered += 1;
            if g.registered >= g.expected {
                g.barrier_open = true;
            }
            pe
        };
        g.alive += 1;
        g.members.insert(
            pe,
            Member {
                closed: false,
                left: false,
                remote,
            },
        );
        drop(g);
        self.notify_all();
        pe
    }

    /// Tear down a member (see [`PoolCore::disconnect`]) and wake the
    /// pool so requeued tasks are picked up immediately.
    pub fn disconnect(&self, pe: PeId, suspected_dead: bool) {
        let now = self.now();
        let mut g = self.lock();
        g.disconnect(pe, now, suspected_dead);
        drop(g);
        self.notify_all();
    }

    /// Whether `task` is still worth executing on `pe`: batch entries may
    /// have been stolen from this PE or finished by a replica elsewhere
    /// while queued.
    pub fn still_runnable(&self, pe: PeId, task: TaskId) -> bool {
        let g = self.lock();
        task < g.master.pool().len() && {
            let t = g.master.pool().get(task);
            t.state != TaskState::Finished && t.executors.contains(&pe)
        }
    }

    /// Record a task start. Returns `false` — the caller must tear the PE
    /// down — when the task id is out of bounds (a corrupt or stale
    /// report from a remote).
    pub fn task_started(&self, pe: PeId, task: TaskId) -> bool {
        let mut g = self.lock();
        if task >= g.master.pool().len() {
            return false;
        }
        let now = self.now();
        g.master.task_started(pe, task, now);
        drop(g);
        self.notify_all();
        true
    }

    /// Record a task completion: informs the master (stamping
    /// `TaskKernels` for the first finisher), hands the result to the
    /// owner, then runs any deferred work off-lock. Returns `false` on an
    /// out-of-bounds task id.
    pub fn task_finished(&self, pe: PeId, task: TaskId, result: TaskResult) -> bool {
        let deferred = {
            let mut g = self.lock();
            if task >= g.master.pool().len() {
                return false;
            }
            let now = self.now();
            let was_first = g.master.pool().get(task).state != TaskState::Finished;
            g.master.task_finished(pe, task, now, result.gcups);
            if was_first {
                if let Some(kernels) = result.kernels {
                    g.master
                        .record_event(now, EventKind::TaskKernels { pe, task, kernels });
                }
            }
            // Split the borrow so the owner can see the master.
            let core = &mut *g;
            core.owner
                .on_finished(&mut core.master, pe, task, result, was_first, now)
        };
        self.notify_all();
        if let Some(run) = deferred {
            run();
        }
        true
    }

    /// Record a PSS progress notification.
    pub fn notify_progress(&self, pe: PeId, gcups: f64) {
        let now = self.now();
        let mut g = self.lock();
        g.master.notify_progress(pe, now, gcups);
    }

    /// Long-poll the master for `pe`'s next command: parks on the hub
    /// through `Wait`, returns `None` when the pool aborted or the member
    /// was torn down concurrently. `Done` retires the member cleanly (no
    /// requeue, no `pe_left` event — it finished its service).
    pub fn next_assignment(&self, pe: PeId) -> Option<PeCommand> {
        let mut g = self.lock();
        loop {
            if g.abort.is_some() || !g.is_open(pe) {
                return None;
            }
            if g.barrier_open {
                let now = self.now();
                match g.master.request(pe, now) {
                    Assignment::Tasks(tasks) => {
                        drop(g);
                        self.notify_all();
                        return Some(PeCommand::Tasks(tasks));
                    }
                    Assignment::Steal { task, .. } => {
                        drop(g);
                        self.notify_all();
                        return Some(PeCommand::Execute(task));
                    }
                    Assignment::Replicate(task) => {
                        drop(g);
                        self.notify_all();
                        return Some(PeCommand::Execute(task));
                    }
                    Assignment::Done => {
                        let m = g.members.get_mut(&pe).expect("member admitted");
                        m.closed = true;
                        m.left = true;
                        g.alive -= 1;
                        drop(g);
                        self.notify_all();
                        return Some(PeCommand::Done);
                    }
                    Assignment::Wait => {}
                }
            }
            g = self.wait_timeout(g, PARK_QUANTUM);
        }
    }
}

/// One PE's transport: where commands go and events come from. The drive
/// loop is transport-agnostic; this is the only surface a new backend
/// (another wire protocol, an accelerator offload queue) must implement.
pub trait PeEndpoint<S: PoolOwner> {
    /// Block until the PE has something to report.
    fn next_event(&mut self, pool: &PePool<S>, pe: PeId) -> PeEvent;

    /// Deliver a scheduling decision to the PE. An error tears the PE
    /// down (its held tasks requeue).
    fn deliver(&mut self, pool: &PePool<S>, pe: PeId, cmd: &PeCommand) -> io::Result<()>;
}

/// Drive one admitted PE until it retires, fails, or the pool aborts —
/// THE pool-drive loop. Both the threaded runtime and the TCP server run
/// exactly this function; they differ only in the endpoint.
pub fn drive<S: PoolOwner, E: PeEndpoint<S>>(pool: &PePool<S>, pe: PeId, endpoint: &mut E) {
    loop {
        match endpoint.next_event(pool, pe) {
            PeEvent::NeedWork => {
                let Some(cmd) = pool.next_assignment(pe) else {
                    return;
                };
                let retiring = cmd == PeCommand::Done;
                if endpoint.deliver(pool, pe, &cmd).is_err() {
                    pool.disconnect(pe, false);
                    return;
                }
                if retiring {
                    return;
                }
            }
            PeEvent::Started(task) => {
                if !pool.task_started(pe, task) {
                    pool.disconnect(pe, false);
                    return;
                }
            }
            PeEvent::Finished { task, result } => {
                if !pool.task_finished(pe, task, result) {
                    pool.disconnect(pe, false);
                    return;
                }
            }
            PeEvent::Progress(gcups) => pool.notify_progress(pe, gcups),
            PeEvent::Gone { suspected_dead } => {
                pool.disconnect(pe, suspected_dead);
                return;
            }
        }
    }
}

/// The in-process endpoint: a queue of assigned tasks and a closure that
/// really computes one. Skips queued entries that were stolen or finished
/// elsewhere, exactly like the old threaded runtime's inner loop.
pub struct LocalEndpoint<F> {
    queue: VecDeque<TaskId>,
    running: Option<TaskId>,
    execute: F,
}

impl<F: FnMut(TaskId) -> TaskResult> LocalEndpoint<F> {
    /// New endpoint around the compute closure.
    pub fn new(execute: F) -> LocalEndpoint<F> {
        LocalEndpoint {
            queue: VecDeque::new(),
            running: None,
            execute,
        }
    }
}

impl<S: PoolOwner, F: FnMut(TaskId) -> TaskResult> PeEndpoint<S> for LocalEndpoint<F> {
    fn next_event(&mut self, pool: &PePool<S>, pe: PeId) -> PeEvent {
        if let Some(task) = self.running.take() {
            // `Started` was reported last round; compute now, off-lock.
            let result = (self.execute)(task);
            return PeEvent::Finished { task, result };
        }
        while let Some(task) = self.queue.pop_front() {
            if pool.still_runnable(pe, task) {
                self.running = Some(task);
                return PeEvent::Started(task);
            }
        }
        PeEvent::NeedWork
    }

    fn deliver(&mut self, _pool: &PePool<S>, _pe: PeId, cmd: &PeCommand) -> io::Result<()> {
        match cmd {
            PeCommand::Tasks(tasks) => self.queue.extend(tasks.iter().copied()),
            PeCommand::Execute(task) => self.queue.push_back(*task),
            PeCommand::Done => {}
        }
        Ok(())
    }
}

/// The batch-run owner: per-task winning hits, winner names, and merged
/// kernel counters (losing replicas' counters are merged too — they are
/// work the platform really did).
#[derive(Debug, Default)]
pub struct BatchOwner {
    /// For each task, the first finisher's hits.
    pub results: Vec<Option<Vec<Hit>>>,
    /// For each task, the name of the PE whose result was used.
    pub completed_by: Vec<String>,
    /// Kernel counters merged across every completion.
    pub kernels: KernelStats,
    /// Kernel counters per PE (indexed by [`PeId`]).
    pub kernels_by_pe: Vec<KernelStats>,
}

impl BatchOwner {
    /// New owner for a batch of `n_tasks`.
    pub fn new(n_tasks: usize) -> BatchOwner {
        BatchOwner {
            results: vec![None; n_tasks],
            completed_by: vec![String::new(); n_tasks],
            kernels: KernelStats::default(),
            kernels_by_pe: Vec::new(),
        }
    }
}

impl PoolOwner for BatchOwner {
    fn on_finished(
        &mut self,
        master: &mut Master,
        pe: PeId,
        task: TaskId,
        result: TaskResult,
        was_first: bool,
        _now: f64,
    ) -> Option<Deferred> {
        if let Some(kernels) = &result.kernels {
            self.kernels.merge(kernels);
            if self.kernels_by_pe.len() <= pe {
                self.kernels_by_pe.resize(pe + 1, KernelStats::default());
            }
            self.kernels_by_pe[pe].merge(kernels);
        }
        if was_first {
            if self.results.len() <= task {
                self.results.resize(task + 1, None);
                self.completed_by.resize(task + 1, String::new());
            }
            self.results[task] = Some(result.hits);
            self.completed_by[task] = master.pe_name(pe).to_string();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::MasterConfig;
    use swhybrid_device::task::TaskSpec;

    fn specs(n: usize) -> Vec<TaskSpec> {
        (0..n)
            .map(|id| TaskSpec {
                id,
                query_len: 100,
                queries: 1,
                db_residues: 10_000,
                db_sequences: 10,
            })
            .collect()
    }

    fn pool(n_tasks: usize, expected: usize) -> PePool<BatchOwner> {
        PePool::new(
            Master::new(specs(n_tasks), MasterConfig::default()),
            BatchOwner::new(n_tasks),
            expected,
        )
    }

    #[test]
    fn barrier_opens_at_expected_and_latecomers_join() {
        let p = pool(2, 2);
        let a = p.admit("a", 1.0, false);
        assert!(!p.lock().barrier_open());
        let b = p.admit("b", 1.0, false);
        assert!(p.lock().barrier_open());
        let c = p.admit("late", 1.0, true);
        assert_eq!((a, b, c), (0, 1, 2));
        let g = p.lock();
        assert_eq!(g.alive(), 3);
        assert_eq!(g.remote_members(), vec![2]);
        assert!(g
            .master
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::PeJoined { pe: 2, .. })));
    }

    #[test]
    fn degenerate_speed_priors_are_clamped_not_fatal() {
        let p = pool(1, 0);
        p.admit("nan", f64::NAN, false);
        p.admit("zero", 0.0, false);
        p.admit("neg", -3.0, false);
        let g = p.lock();
        assert!(g.master.speed_estimates().iter().all(|&s| s > 0.0));
    }

    #[test]
    fn drive_runs_a_batch_to_completion_on_one_local_endpoint() {
        let p = pool(3, 1);
        let pe = p.admit("solo", 1.0, false);
        let mut ep = LocalEndpoint::new(|task| TaskResult {
            gcups: Some(1.0),
            hits: Vec::new(),
            cells: 100 * (task as u64 + 1),
            kernels: Some(KernelStats {
                resolved_i8: 1,
                ..KernelStats::default()
            }),
            fused: None,
        });
        drive(&p, pe, &mut ep);
        let core = p.into_inner();
        assert!(core.master.pool().all_finished());
        assert!(core.owner.completed_by.iter().all(|n| n == "solo"));
        assert_eq!(core.owner.kernels.resolved_i8, 3);
        assert_eq!(core.owner.kernels_by_pe[pe].resolved_i8, 3);
        assert!(core
            .master
            .events()
            .iter()
            .any(|e| e.kind == EventKind::RunCompleted));
    }

    #[test]
    fn disconnect_requeues_held_tasks_and_is_idempotent() {
        let p = pool(2, 2);
        let a = p.admit("a", 1.0, false);
        let _b = p.admit("b", 1.0, false);
        let cmd = p.next_assignment(a).expect("assignment");
        let PeCommand::Tasks(tasks) = cmd else {
            panic!("expected tasks, got {cmd:?}");
        };
        p.task_started(a, tasks[0]);
        p.disconnect(a, true);
        p.disconnect(a, true); // second teardown is a no-op
        let g = p.lock();
        assert_eq!(g.alive(), 1);
        let events = g.master.events();
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::PeSuspectedDead { pe } if pe == a))
                .count(),
            1
        );
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::TaskRequeued { task, from } if task == tasks[0] && from == a)));
    }

    #[test]
    fn out_of_bounds_reports_are_rejected_not_fatal() {
        let p = pool(1, 1);
        let pe = p.admit("a", 1.0, false);
        assert!(!p.task_started(pe, 99));
        assert!(!p.task_finished(pe, 99, TaskResult::default()));
        // The pool is still healthy for in-bounds traffic.
        assert!(p.task_started(pe, 0));
    }

    #[test]
    fn abort_unblocks_parked_endpoints() {
        let p = pool(1, 1);
        let pe = p.admit("a", 1.0, false);
        // Drain the one task so the next request would Wait (keep-alive).
        p.lock().master.set_keep_alive(true);
        let Some(PeCommand::Tasks(tasks)) = p.next_assignment(pe) else {
            panic!("expected tasks");
        };
        p.task_started(pe, tasks[0]);
        p.task_finished(pe, tasks[0], TaskResult::default());
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| p.next_assignment(pe));
            std::thread::sleep(Duration::from_millis(20));
            {
                let mut g = p.lock();
                g.set_abort(io::ErrorKind::ConnectionAborted, "test abort");
            }
            p.notify_all();
            assert!(handle.join().expect("no panic").is_none());
        });
    }
}
