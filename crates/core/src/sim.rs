//! Deterministic discrete-event simulation of the hybrid platform.
//!
//! The paper evaluates on 4 × GTX 580 + 2 × quad-core i7; this machine has
//! neither, so the platform runs under **virtual time**: each PE is a
//! [`DeviceModel`] whose task durations come from the calibrated models of
//! `swhybrid-device`, optionally perturbed by a [`LoadSchedule`]
//! (non-dedicated §V-C runs). The *scheduling logic itself is not
//! simulated* — this module contains no SS/PSS/Φ sizing and no adjustment
//! decisions of its own. The simulator is a discrete-event **driver** of
//! the one scheduling engine in [`crate::sched`] (through the [`Master`]
//! façade, exactly like the real runtimes): it advances a
//! [`VirtualClock`] along its event heap and relays
//! request/start/notify/finish calls, so allocation decisions,
//! replication, and cancellations are the genuine article.
//!
//! Determinism: events are ordered by `(time, insertion sequence)`, PEs are
//! always iterated in id order, and no wall-clock or RNG enters the loop —
//! a run is a pure function of its inputs.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

use crate::master::{Assignment, Master, MasterConfig};
use crate::sched::{Clock, VirtualClock};
use crate::task::{PeId, TaskId};
use crate::trace::{NotifySample, SegmentEnd, Trace, TraceSegment};
use swhybrid_device::load::LoadSchedule;
use swhybrid_device::task::{DeviceKind, DeviceModel, TaskSpec};

/// One PE of the simulated platform.
#[derive(Clone)]
pub struct SimPe {
    /// Human-readable name (also registered with the master).
    pub name: String,
    /// The performance model.
    pub device: Arc<dyn DeviceModel>,
    /// External load (1.0 everywhere for dedicated platforms).
    pub load: LoadSchedule,
    /// When the PE joins the platform (0.0 = from the start).
    pub join_at: f64,
    /// When the PE leaves, if ever (membership extension).
    pub leave_at: Option<f64>,
}

impl SimPe {
    /// A dedicated PE present for the whole run.
    pub fn new(name: impl Into<String>, device: Arc<dyn DeviceModel>) -> SimPe {
        SimPe {
            name: name.into(),
            device,
            load: LoadSchedule::dedicated(),
            join_at: 0.0,
            leave_at: None,
        }
    }

    /// Attach a load schedule.
    pub fn with_load(mut self, load: LoadSchedule) -> SimPe {
        self.load = load;
        self
    }
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master configuration (policy + adjustment flag).
    pub master: MasterConfig,
    /// Period of the slaves' progress notifications (seconds).
    pub notify_interval: f64,
    /// One-way master↔slave message latency (seconds); the paper's Gigabit
    /// Ethernet is effectively negligible at task granularity.
    pub comm_latency: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            master: MasterConfig::default(),
            notify_interval: 5.0,
            comm_latency: 0.0005,
        }
    }
}

/// Per-PE summary of a run.
#[derive(Debug, Clone)]
pub struct PeReport {
    /// PE name.
    pub name: String,
    /// PE kind.
    pub kind: DeviceKind,
    /// Seconds spent executing (including cancelled replicas).
    pub busy_seconds: f64,
    /// Tasks this PE completed first.
    pub tasks_completed: usize,
    /// Replicas of this PE that were cancelled.
    pub tasks_cancelled: usize,
    /// DP cells this PE computed (including work later discarded).
    pub cells_computed: f64,
}

/// Result of a simulated run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Wall-clock (virtual) makespan in seconds.
    pub makespan: f64,
    /// Useful DP cells (each task counted once).
    pub total_cells: u64,
    /// Useful GCUPS: `total_cells / makespan / 1e9`.
    pub gcups: f64,
    /// Per-PE summaries, in PE id order.
    pub per_pe: Vec<PeReport>,
    /// Full execution trace.
    pub trace: Trace,
    /// Cells computed by replicas that lost the race (overhead of the
    /// adjustment mechanism).
    pub duplicated_cells: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    Finish { pe: PeId, epoch: u64 },
    Notify { pe: PeId },
    Join { pe: PeId },
    Leave { pe: PeId },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .partial_cmp(&other.time)
            .expect("event times are finite")
            .then(self.seq.cmp(&other.seq))
    }
}

#[derive(Debug)]
struct Running {
    task: TaskId,
    spec: TaskSpec,
    total_work: f64,
    done_work: f64,
    checkpoint: f64,
    start: f64,
}

#[derive(Debug, Default)]
struct PeState {
    queue: VecDeque<TaskId>,
    current: Option<Running>,
    epoch: u64,
    waiting: bool,
    alive: bool,
    last_notify: f64,
    cells_since_notify: f64,
    busy_seconds: f64,
    cells_computed: f64,
    tasks_completed: usize,
    tasks_cancelled: usize,
}

/// The simulator.
pub struct Simulator {
    pes: Vec<SimPe>,
    specs: Vec<TaskSpec>,
    config: SimConfig,
}

impl Simulator {
    /// Build a simulator for a platform and workload.
    pub fn new(pes: Vec<SimPe>, specs: Vec<TaskSpec>, config: SimConfig) -> Simulator {
        assert!(!pes.is_empty(), "platform needs at least one PE");
        assert!(
            config.notify_interval > 0.0,
            "notification interval must be positive"
        );
        // Late joiners must come last so master PE ids equal sim indices.
        let mut seen_late = false;
        for pe in &pes {
            if pe.join_at > 0.0 {
                seen_late = true;
            } else {
                assert!(!seen_late, "late-joining PEs must be listed last");
            }
        }
        Simulator { pes, specs, config }
    }

    /// Run to completion and report.
    pub fn run(self) -> SimReport {
        Engine::new(self.pes, self.specs, self.config).run()
    }
}

struct Engine {
    pes: Vec<SimPe>,
    state: Vec<PeState>,
    master: Master,
    /// The run's time base: advanced to each popped event's stamp; every
    /// `now` handed to the engine is read back off this clock.
    clock: VirtualClock,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    trace: Trace,
    total_cells: u64,
    makespan: f64,
    duplicated_cells: f64,
    done: bool,
    notify_interval: f64,
    latency: f64,
}

impl Engine {
    fn new(pes: Vec<SimPe>, specs: Vec<TaskSpec>, config: SimConfig) -> Engine {
        let total_cells = specs.iter().map(|s| s.cells()).sum();
        let mut master = Master::new(specs, config.master);
        let mut state = Vec::with_capacity(pes.len());
        for pe in &pes {
            // Every PE (early or late) is registered up front so ids line
            // up; static quotas therefore see the full roster.
            let id = master.register(pe.name.clone(), pe.device.task_gcups(&TaskSpec::probe()));
            debug_assert_eq!(id, state.len());
            let mut s = PeState {
                alive: pe.join_at <= 0.0,
                ..PeState::default()
            };
            s.last_notify = pe.join_at;
            state.push(s);
        }
        Engine {
            pes,
            state,
            master,
            clock: VirtualClock::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            trace: Trace::default(),
            total_cells,
            makespan: 0.0,
            duplicated_cells: 0.0,
            done: false,
            notify_interval: config.notify_interval,
            latency: config.comm_latency,
        }
    }

    fn push(&mut self, time: f64, kind: EventKind) {
        self.seq += 1;
        self.heap.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }

    fn run(mut self) -> SimReport {
        // Bootstrap: present PEs request work; absent ones get Join events.
        for pe in 0..self.pes.len() {
            if self.state[pe].alive {
                self.push(
                    self.pes[pe].join_at + self.notify_interval,
                    EventKind::Notify { pe },
                );
                self.request_work(pe, 0.0);
            } else {
                self.push(self.pes[pe].join_at, EventKind::Join { pe });
            }
            if let Some(leave) = self.pes[pe].leave_at {
                self.push(leave, EventKind::Leave { pe });
            }
        }
        if self.master.all_finished() {
            self.done = true; // empty workload
        }

        while let Some(Reverse(ev)) = self.heap.pop() {
            if self.done {
                break;
            }
            self.clock.advance_to(ev.time);
            let now = self.clock.now();
            match ev.kind {
                EventKind::Finish { pe, epoch } => self.on_finish(pe, epoch, now),
                EventKind::Notify { pe } => self.on_notify(pe, now),
                EventKind::Join { pe } => self.on_join(pe, now),
                EventKind::Leave { pe } => self.on_leave(pe, now),
            }
        }

        let per_pe = self
            .state
            .iter()
            .enumerate()
            .map(|(i, s)| PeReport {
                name: self.pes[i].name.clone(),
                kind: self.pes[i].device.kind(),
                busy_seconds: s.busy_seconds,
                tasks_completed: s.tasks_completed,
                tasks_cancelled: s.tasks_cancelled,
                cells_computed: s.cells_computed,
            })
            .collect();
        let gcups = if self.makespan > 0.0 {
            self.total_cells as f64 / self.makespan / 1e9
        } else {
            0.0
        };
        SimReport {
            makespan: self.makespan,
            total_cells: self.total_cells,
            gcups,
            per_pe,
            trace: self.trace,
            duplicated_cells: self.duplicated_cells,
        }
    }

    /// Bring a PE's running-task progress up to `now`, accumulating cell
    /// counters.
    fn touch(&mut self, pe: PeId, now: f64) {
        let load = self.pes[pe].load.clone();
        let st = &mut self.state[pe];
        if let Some(run) = &mut st.current {
            if now <= run.checkpoint {
                // The task starts in the future (assignment latency): no
                // progress to account yet.
                return;
            }
            let delta = load.work_done(run.checkpoint, now, 1.0);
            run.done_work += delta;
            run.checkpoint = now;
            let cells = run.spec.cells() as f64 * (delta / run.total_work);
            st.cells_since_notify += cells;
            st.cells_computed += cells;
        }
    }

    fn start_task(&mut self, pe: PeId, task: TaskId, now: f64) {
        let spec = self.master.pool().get(task).spec.clone();
        let total_work = self.pes[pe].device.task_seconds(&spec);
        assert!(total_work > 0.0, "task must take positive time");
        let finish = self.pes[pe].load.finish_time(now, total_work, 1.0);
        self.master.task_started(pe, task, now);
        let st = &mut self.state[pe];
        st.epoch += 1;
        st.current = Some(Running {
            task,
            spec,
            total_work,
            done_work: 0.0,
            checkpoint: now,
            start: now,
        });
        let epoch = st.epoch;
        self.push(finish, EventKind::Finish { pe, epoch });
    }

    /// Start the next queued task or ask the master for more work.
    fn advance(&mut self, pe: PeId, now: f64) {
        if !self.state[pe].alive || self.state[pe].current.is_some() {
            return;
        }
        if let Some(next) = self.state[pe].queue.pop_front() {
            self.start_task(pe, next, now);
        } else {
            self.request_work(pe, now);
        }
    }

    fn request_work(&mut self, pe: PeId, now: f64) {
        if !self.state[pe].alive {
            return;
        }
        self.state[pe].waiting = false;
        match self.master.request(pe, now) {
            Assignment::Tasks(tasks) => {
                self.state[pe].queue.extend(tasks);
                if let Some(next) = self.state[pe].queue.pop_front() {
                    self.start_task(pe, next, now + self.latency);
                }
            }
            Assignment::Steal { task, from } => {
                let present = self.state[from].queue.iter().any(|&t| t == task);
                debug_assert!(present, "stolen task {task} not in PE {from}'s queue");
                self.state[from].queue.retain(|&t| t != task);
                self.start_task(pe, task, now + self.latency);
            }
            Assignment::Replicate(task) => {
                self.start_task(pe, task, now + self.latency);
            }
            Assignment::Wait => {
                self.state[pe].waiting = true;
            }
            Assignment::Done => {}
        }
    }

    /// Re-poll PEs that previously got `Wait` (state may have changed).
    fn poll_waiting(&mut self, now: f64) {
        for pe in 0..self.state.len() {
            if self.state[pe].waiting && self.state[pe].alive && self.state[pe].current.is_none() {
                self.request_work(pe, now);
            }
        }
    }

    fn on_finish(&mut self, pe: PeId, epoch: u64, now: f64) {
        if self.state[pe].epoch != epoch || self.state[pe].current.is_none() {
            return; // stale event from a cancelled run
        }
        self.touch(pe, now);
        let run = self.state[pe].current.take().expect("checked above");
        self.state[pe].busy_seconds += (now - run.start).max(0.0);
        let duration = now - run.start;
        let measured_gcups = if duration > 0.0 {
            run.spec.cells() as f64 / duration / 1e9
        } else {
            f64::INFINITY
        };
        self.trace.segments.push(TraceSegment {
            pe,
            task: run.task,
            start: run.start,
            end: now,
            end_kind: SegmentEnd::Completed,
        });
        self.state[pe].tasks_completed += 1;
        self.makespan = self.makespan.max(now);

        let cancels = self
            .master
            .task_finished(pe, run.task, now, Some(measured_gcups));
        for other in cancels {
            self.cancel_holder(other, run.task, now);
        }

        if self.master.all_finished() {
            self.done = true;
            return;
        }
        self.advance(pe, now);
        self.poll_waiting(now);
    }

    /// Remove a finished task from another PE: cancel its running replica
    /// or drop it from its queue.
    fn cancel_holder(&mut self, pe: PeId, task: TaskId, now: f64) {
        let is_current = self.state[pe]
            .current
            .as_ref()
            .is_some_and(|r| r.task == task);
        if is_current {
            self.touch(pe, now);
            let run = self.state[pe].current.take().expect("checked above");
            self.state[pe].busy_seconds += (now - run.start).max(0.0);
            let wasted = run.spec.cells() as f64 * (run.done_work / run.total_work);
            self.duplicated_cells += wasted;
            self.state[pe].tasks_cancelled += 1;
            self.state[pe].epoch += 1; // invalidate the pending Finish
            self.trace.segments.push(TraceSegment {
                pe,
                task,
                start: run.start,
                end: now,
                end_kind: SegmentEnd::Cancelled,
            });
            self.advance(pe, now);
        } else {
            self.state[pe].queue.retain(|&t| t != task);
            // A PE whose queue emptied keeps running its current task; if
            // it had nothing running it must have been mid-request — the
            // waiting poll will reach it.
        }
    }

    fn on_notify(&mut self, pe: PeId, now: f64) {
        if self.done || !self.state[pe].alive {
            return;
        }
        self.touch(pe, now);
        let st = &mut self.state[pe];
        let interval = now - st.last_notify;
        let gcups = if interval > 0.0 {
            st.cells_since_notify / interval / 1e9
        } else {
            0.0
        };
        st.cells_since_notify = 0.0;
        st.last_notify = now;
        self.trace.notifications.push(NotifySample {
            pe,
            time: now,
            gcups,
        });
        self.master.notify_progress(pe, now, gcups);
        self.push(now + self.notify_interval, EventKind::Notify { pe });
    }

    fn on_join(&mut self, pe: PeId, now: f64) {
        if self.done {
            return;
        }
        self.state[pe].alive = true;
        self.state[pe].last_notify = now;
        self.push(now + self.notify_interval, EventKind::Notify { pe });
        self.request_work(pe, now);
    }

    fn on_leave(&mut self, pe: PeId, now: f64) {
        if self.done || !self.state[pe].alive {
            return;
        }
        self.touch(pe, now);
        let mut held: Vec<TaskId> = self.state[pe].queue.drain(..).collect();
        if let Some(run) = self.state[pe].current.take() {
            self.state[pe].busy_seconds += (now - run.start).max(0.0);
            self.trace.segments.push(TraceSegment {
                pe,
                task: run.task,
                start: run.start,
                end: now,
                end_kind: SegmentEnd::Abandoned,
            });
            held.push(run.task);
            self.state[pe].epoch += 1;
        }
        self.state[pe].alive = false;
        self.master.pe_leaves(pe, &held);
        // Released tasks may be ready again: wake the waiters.
        self.poll_waiting(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use swhybrid_device::cpu::CpuSseDevice;
    use swhybrid_device::perfmodel::PerfModel;

    /// A flat-rate device: `gcups` everywhere, no startup, no ramps.
    pub(crate) fn flat_device(name: &str, gcups: f64) -> Arc<dyn DeviceModel> {
        Arc::new(CpuSseDevice::with_model(
            name,
            PerfModel {
                peak_gcups: gcups,
                startup_seconds: 0.0,
                transfer_bytes_per_sec: None,
                query_ramp: 0.0,
                db_fill: 0.0,
            },
        ))
    }

    fn uniform_tasks(n: usize, cells_each: u64) -> Vec<TaskSpec> {
        (0..n)
            .map(|id| TaskSpec {
                id,
                query_len: 1000,
                queries: 1,
                db_residues: cells_each / 1000,
                db_sequences: 1000,
            })
            .collect()
    }

    fn config(policy: Policy, adjustment: bool) -> SimConfig {
        SimConfig {
            master: MasterConfig {
                policy,
                adjustment,
                dispatch: Default::default(),
            },
            notify_interval: 5.0,
            comm_latency: 0.0,
        }
    }

    #[test]
    fn single_pe_runs_everything_sequentially() {
        // 10 tasks of 1 Gcell at 1 GCUPS = 10 s.
        let pes = vec![SimPe::new("solo", flat_device("solo", 1.0))];
        let report = Simulator::new(
            pes,
            uniform_tasks(10, 1_000_000_000),
            config(Policy::SelfScheduling, true),
        )
        .run();
        assert!((report.makespan - 10.0).abs() < 1e-6, "{}", report.makespan);
        assert_eq!(report.per_pe[0].tasks_completed, 10);
        assert_eq!(report.per_pe[0].tasks_cancelled, 0);
        assert!((report.gcups - 1.0).abs() < 1e-6);
    }

    #[test]
    fn two_equal_pes_halve_the_makespan() {
        let pes = vec![
            SimPe::new("a", flat_device("a", 1.0)),
            SimPe::new("b", flat_device("b", 1.0)),
        ];
        let report = Simulator::new(
            pes,
            uniform_tasks(10, 1_000_000_000),
            config(Policy::SelfScheduling, true),
        )
        .run();
        assert!((report.makespan - 5.0).abs() < 1e-6, "{}", report.makespan);
    }

    #[test]
    fn empty_workload_finishes_instantly() {
        let pes = vec![SimPe::new("a", flat_device("a", 1.0))];
        let report = Simulator::new(pes, vec![], config(Policy::SelfScheduling, true)).run();
        assert_eq!(report.makespan, 0.0);
        assert_eq!(report.total_cells, 0);
    }

    #[test]
    fn fig5_worked_example_with_adjustment_is_14s() {
        // §IV-A-3 / Fig. 5: 4 PEs (1 GPU 6× faster than 3 SSE cores),
        // 20 tasks of 1 s GPU time each, PSS, negligible latency.
        // Equal priors make the first allocation one task per PE.
        let mut pes = vec![SimPe::new("GPU1", flat_device("GPU1", 6.0))];
        for i in 1..=3 {
            pes.push(SimPe::new(format!("SSE{i}"), flat_device("x", 1.0)));
        }
        // Override priors: register uses a probe task; flat devices report
        // their flat GCUPS for it, so priors are 6 and 1 — but Fig. 5's
        // first round hands ONE task to each PE, which PSS does only with
        // equal priors. Emulate the paper's "first allocation" by SS-like
        // priors: use the SS-equivalent first round that PSS produces when
        // speeds are unknown. We get that for free because the paper's own
        // master also assigned one task each in round one — so assert the
        // *makespan*, which is prior-independent here: the GPU drains the
        // queue by t=13 either way and t20's replica finishes at 14 s.
        let report = Simulator::new(
            pes,
            uniform_tasks(20, 6_000_000_000),
            config(Policy::pss_default(), true),
        )
        .run();
        assert!(
            (report.makespan - 14.0).abs() < 0.01,
            "expected 14 s, got {}",
            report.makespan
        );
    }

    #[test]
    fn fig5_without_adjustment_is_18s() {
        let mut pes = vec![SimPe::new("GPU1", flat_device("GPU1", 6.0))];
        for i in 1..=3 {
            pes.push(SimPe::new(format!("SSE{i}"), flat_device("x", 1.0)));
        }
        let report = Simulator::new(
            pes,
            uniform_tasks(20, 6_000_000_000),
            config(Policy::pss_default(), false),
        )
        .run();
        assert!(
            (report.makespan - 18.0).abs() < 0.01,
            "expected 18 s, got {}",
            report.makespan
        );
    }

    #[test]
    fn adjustment_never_hurts_makespan_much() {
        // Across several platform shapes, enabling adjustment must not make
        // the makespan worse (beyond numeric noise).
        for (fast, slow, tasks) in [(6.0, 1.0, 20), (10.0, 1.0, 7), (3.0, 2.0, 12)] {
            let mk = |adj: bool| {
                let pes = vec![
                    SimPe::new("fast", flat_device("fast", fast)),
                    SimPe::new("slow", flat_device("slow", slow)),
                ];
                Simulator::new(
                    pes,
                    uniform_tasks(tasks, 2_000_000_000),
                    config(Policy::pss_default(), adj),
                )
                .run()
                .makespan
            };
            let with = mk(true);
            let without = mk(false);
            assert!(
                with <= without + 1e-6,
                "adjustment hurt: {with} > {without} (fast={fast} slow={slow} n={tasks})"
            );
        }
    }

    #[test]
    fn cancelled_replicas_are_counted_as_duplicated_work() {
        let pes = vec![
            SimPe::new("fast", flat_device("fast", 10.0)),
            SimPe::new("slow", flat_device("slow", 1.0)),
        ];
        let report = Simulator::new(
            pes,
            uniform_tasks(3, 1_000_000_000),
            config(Policy::SelfScheduling, true),
        )
        .run();
        // The slow PE's first task is eventually replicated (or its replica
        // cancelled); either way some duplicated work must be recorded.
        let cancelled: usize = report.per_pe.iter().map(|p| p.tasks_cancelled).sum();
        assert!(cancelled >= 1, "report: {report:?}");
        assert!(report.duplicated_cells > 0.0);
        // Useful cells never include duplicates.
        assert_eq!(report.total_cells, 3_000_000_000);
    }

    #[test]
    fn load_schedule_slows_pe_down() {
        // One PE at 1 GCUPS, 10 Gcells of work, halved after t=5:
        // 5 Gcells by t=5, remaining 5 at 0.5 GCUPS → 10 more s → 15 s.
        let pes =
            vec![SimPe::new("a", flat_device("a", 1.0)).with_load(LoadSchedule::step_at(5.0, 0.5))];
        let report = Simulator::new(
            pes,
            uniform_tasks(10, 1_000_000_000),
            config(Policy::SelfScheduling, true),
        )
        .run();
        assert!((report.makespan - 15.0).abs() < 1e-6, "{}", report.makespan);
    }

    #[test]
    fn notifications_track_load_change() {
        let pes = vec![
            SimPe::new("a", flat_device("a", 2.0)).with_load(LoadSchedule::step_at(10.0, 0.5))
        ];
        let report = Simulator::new(
            pes,
            uniform_tasks(60, 1_000_000_000),
            config(Policy::pss_default(), true),
        )
        .run();
        let series = report.trace.pe_notifications(0);
        assert!(series.len() >= 3);
        let before: Vec<f64> = series
            .iter()
            .filter(|&&(t, _)| t <= 10.0)
            .map(|&(_, g)| g)
            .collect();
        let after: Vec<f64> = series
            .iter()
            .filter(|&&(t, _)| t > 12.0)
            .map(|&(_, g)| g)
            .collect();
        assert!(!before.is_empty() && !after.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&after) < mean(&before) * 0.7,
            "before {:?} after {:?}",
            before,
            after
        );
    }

    #[test]
    fn pe_leaving_returns_its_tasks() {
        let mut slow = SimPe::new("leaver", flat_device("leaver", 1.0));
        slow.leave_at = Some(2.0);
        let pes = vec![SimPe::new("stayer", flat_device("stayer", 1.0)), slow];
        let report = Simulator::new(
            pes,
            uniform_tasks(6, 1_000_000_000),
            config(Policy::SelfScheduling, true),
        )
        .run();
        // All 6 tasks complete even though the leaver goes away at t=2.
        let completed: usize = report.per_pe.iter().map(|p| p.tasks_completed).sum();
        assert_eq!(completed, 6);
        // The stayer did most of the work.
        assert!(report.per_pe[0].tasks_completed >= 4);
    }

    #[test]
    fn pe_joining_late_takes_work() {
        let mut late = SimPe::new("late", flat_device("late", 10.0));
        late.join_at = 3.0;
        let pes = vec![SimPe::new("early", flat_device("early", 1.0)), late];
        let report = Simulator::new(
            pes,
            uniform_tasks(10, 1_000_000_000),
            config(Policy::SelfScheduling, true),
        )
        .run();
        assert!(report.per_pe[1].tasks_completed >= 5, "{report:?}");
        // 10 s of work: early does ~3 tasks alone, the fast latecomer
        // mops up the rest quickly.
        assert!(report.makespan < 10.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let build = || {
            let pes = vec![
                SimPe::new("a", flat_device("a", 3.0)),
                SimPe::new("b", flat_device("b", 1.0)),
            ];
            Simulator::new(
                pes,
                uniform_tasks(15, 2_000_000_000),
                config(Policy::pss_default(), true),
            )
            .run()
        };
        let r1 = build();
        let r2 = build();
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.trace.segments.len(), r2.trace.segments.len());
        for (a, b) in r1.trace.segments.iter().zip(&r2.trace.segments) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn gcups_is_useful_cells_over_makespan() {
        let pes = vec![SimPe::new("a", flat_device("a", 2.0))];
        let report = Simulator::new(
            pes,
            uniform_tasks(4, 1_000_000_000),
            config(Policy::SelfScheduling, true),
        )
        .run();
        assert!((report.gcups - 2.0).abs() < 1e-6);
    }
}
