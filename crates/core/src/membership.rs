//! Dynamic membership — PEs joining and leaving mid-run.
//!
//! The paper's §VI lists "tackle situations where nodes join/leave the
//! platform while an SW application is executing" as future work. The
//! mechanics live in [`crate::master::Master::pe_joins`] /
//! [`crate::master::Master::pe_leaves`] and the simulator's `Join`/`Leave`
//! events; this module provides the user-facing description of a membership
//! scenario plus helpers to attach one to a platform.

use crate::sim::SimPe;

/// A membership plan for one PE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Membership {
    /// When the PE joins (0.0 = present from the start).
    pub join_at: f64,
    /// When the PE leaves, if it does.
    pub leave_at: Option<f64>,
}

impl Default for Membership {
    fn default() -> Self {
        Membership {
            join_at: 0.0,
            leave_at: None,
        }
    }
}

impl Membership {
    /// Present for the whole run.
    pub fn permanent() -> Membership {
        Membership::default()
    }

    /// Joins late.
    pub fn joining_at(t: f64) -> Membership {
        assert!(t >= 0.0, "join time must be non-negative");
        Membership {
            join_at: t,
            leave_at: None,
        }
    }

    /// Leaves early.
    pub fn leaving_at(t: f64) -> Membership {
        assert!(t > 0.0, "leave time must be positive");
        Membership {
            join_at: 0.0,
            leave_at: Some(t),
        }
    }

    /// A window of presence.
    pub fn window(join: f64, leave: f64) -> Membership {
        assert!(leave > join, "leave must follow join");
        Membership {
            join_at: join,
            leave_at: Some(leave),
        }
    }

    /// Apply the plan to a simulated PE.
    pub fn apply(self, mut pe: SimPe) -> SimPe {
        pe.join_at = self.join_at;
        pe.leave_at = self.leave_at;
        pe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use swhybrid_device::cpu::CpuSseDevice;

    #[test]
    fn constructors() {
        assert_eq!(Membership::permanent().join_at, 0.0);
        assert_eq!(Membership::joining_at(5.0).join_at, 5.0);
        assert_eq!(Membership::leaving_at(9.0).leave_at, Some(9.0));
        let w = Membership::window(2.0, 8.0);
        assert_eq!((w.join_at, w.leave_at), (2.0, Some(8.0)));
    }

    #[test]
    #[should_panic(expected = "leave must follow join")]
    fn inverted_window_rejected() {
        Membership::window(8.0, 2.0);
    }

    #[test]
    fn apply_sets_fields() {
        let pe = SimPe::new("x", Arc::new(CpuSseDevice::i7_core("x")));
        let pe = Membership::window(1.0, 4.0).apply(pe);
        assert_eq!(pe.join_at, 1.0);
        assert_eq!(pe.leave_at, Some(4.0));
    }
}
