//! Distributed master/slave runtime over TCP.
//!
//! The paper's platform is two hosts on Gigabit Ethernet: the master and
//! the slaves are separate processes and "the slaves can register
//! themselves in the master" (Fig. 4). This module is that deployment
//! shape: a [`MasterServer`] listens on a socket, slaves connect with
//! [`run_slave`], register, request work, and stream results back. The
//! same [`crate::master::Master`] state machine as the simulator and the
//! in-process runtime makes the decisions — and since the endpoint
//! extraction, the *same* [`crate::pool::drive`] loop runs it: a TCP
//! session ([`serve_connection`]) is just a remote
//! [`crate::pool::PeEndpoint`].
//!
//! Submodules: `wire` (message encoding + line reader), `session` (the
//! master side of one connection, on the shared drive loop), `server`
//! (the one-shot batch [`MasterServer`]), `slave` (the slave process,
//! batch and serve modes).
//!
//! ## Wire protocol (v3)
//!
//! Newline-delimited JSON, one message per line (chosen over a binary
//! format so a session is inspectable with `nc`; at one message per
//! multi-second task, encoding cost is irrelevant — the paper itself notes
//! communication is negligible at this granularity). In batch mode both
//! sides already have the sequence files (exactly as in the paper, where
//! the flat database files live on each host); only task ids, speeds, and
//! hit lists travel over the wire. In serve mode (a daemon with
//! `--listen-slaves`) the slave holds only the database and tasks arrive
//! self-describing (`descs`/`desc`).
//!
//! Slave → master:
//!
//! | message | shape |
//! |---|---|
//! | register | `{"type":"register","name":"host-a","gcups":2.5,"proto":3}` (+ optional `"db_digest":"<16 hex>"` in serve mode) |
//! | request | `{"type":"request"}` |
//! | started | `{"type":"started","task":3}` |
//! | finished | `{"type":"finished","task":3,"gcups":2.4,"hits":[…]}` (+ optional per-query `"fused":[…]` for fused tasks) |
//! | heartbeat | `{"type":"heartbeat"}` |
//!
//! Master → slave:
//!
//! | message | shape |
//! |---|---|
//! | registered | `{"type":"registered","pe_id":1,"proto":3}` |
//! | tasks | `{"type":"tasks","tasks":[4,5]}` (+ optional `"descs":[…]` in serve mode) |
//! | execute | `{"type":"execute","task":2}` (a steal or a replica; + optional `"desc":…`) |
//! | done | `{"type":"done"}` |
//! | error | `{"type":"error","message":"…"}` |
//!
//! A hit is `{"db_index":0,"id":"seq1","score":42,"subject_len":99}`; a
//! task desc is `{"queries":[{"query":[…],"top_n":10},…],"shard":[s,e]}`
//! — a *fused query batch*, length 1 for the paper's grain. Both halves of
//! the handshake carry [`PROTOCOL_VERSION`]; a mismatched pair fails with
//! a clear error at registration instead of a parse failure mid-run.
//!
//! ## Long-polled requests (no busy-waiting)
//!
//! A `request` the master cannot serve yet is *held open*: the master
//! answers nothing until an assignment exists (a task finished elsewhere,
//! a PE died and its work was requeued, the registration barrier opened,
//! or the run completed). There is no "wait, ask again" message and no
//! polling loop on either side — the slave blocks on its socket and the
//! master-side drive thread parks on the pool's condvar hub, waking the
//! moment the schedule can have changed.
//!
//! ## Liveness
//!
//! TCP detects a closed peer, not a hung one. Slaves therefore send
//! `heartbeat` lines every [`NetConfig::heartbeat_interval`] (a dedicated
//! thread, so heartbeats flow even mid-kernel), and the master declares a
//! slave dead when *nothing* arrives for [`NetConfig::slave_deadline`]:
//! the connection is dropped and every task the slave held returns to the
//! ready queue (`pe_leaves`), waking the other PEs immediately. The same
//! deadline bounds the registration handshake, so a connection that never
//! says anything cannot pin server state. [`MasterServer::serve`] itself
//! is bounded by [`NetConfig::register_timeout`] (never blocks forever on
//! accept) and [`NetConfig::all_lost_grace`] (gives up when every slave is
//! gone mid-run). Slaves that lose the connection reconnect with
//! exponential backoff ([`NetConfig::reconnect_backoff_initial`] …
//! [`NetConfig::reconnect_backoff_max`], at most
//! [`NetConfig::reconnect_max_retries`] consecutive failures), re-register
//! and resume — the master admits them as late joiners.

mod server;
mod session;
mod slave;
mod wire;

use std::io;
use std::time::Duration;

use crate::trace::RuntimeEvent;
use swhybrid_device::exec::QueryHit;
use swhybrid_simd::engine::KernelStats;

pub use server::{LocalFleet, MasterServer};
pub use session::serve_connection;
pub use slave::{run_serve_slave, run_slave, run_slave_with};
pub use wire::{
    kernels_from_json, kernels_to_json, FusedResultDesc, MasterMsg, QueryDesc, SlaveMsg, TaskDesc,
    WireHit, PROTOCOL_VERSION,
};

/// Timing and fault-tolerance knobs of the TCP runtime. The defaults are
/// conservative LAN values; every test that injects faults tightens them.
/// Consistency is checked by [`NetConfig::validate`] wherever a config
/// enters the runtime ([`MasterServer::bind_with`], the slave entry
/// points, `serve --listen-slaves`).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// How often a slave sends a heartbeat line while connected.
    pub heartbeat_interval: Duration,
    /// Master-side silence budget: a slave from which *nothing* (heartbeat
    /// or protocol message) arrives for this long is declared dead and its
    /// tasks are requeued. Also bounds the registration handshake.
    pub slave_deadline: Duration,
    /// How long [`MasterServer::serve`] waits for the expected number of
    /// slaves. On expiry with at least one registration the barrier opens
    /// and the run proceeds degraded; with none, `serve` fails with
    /// [`io::ErrorKind::TimedOut`]. `None` waits forever (pre-hardening
    /// behaviour).
    pub register_timeout: Option<Duration>,
    /// How long the master tolerates having zero live connections mid-run
    /// before giving up with [`io::ErrorKind::ConnectionAborted`].
    pub all_lost_grace: Duration,
    /// First reconnect delay after a slave loses its connection.
    pub reconnect_backoff_initial: Duration,
    /// Upper bound for the (doubling) reconnect delay.
    pub reconnect_backoff_max: Duration,
    /// Consecutive failed reconnect attempts a slave makes before giving
    /// up. The budget refills whenever a session makes progress.
    pub reconnect_max_retries: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            heartbeat_interval: Duration::from_millis(250),
            slave_deadline: Duration::from_secs(2),
            register_timeout: Some(Duration::from_secs(30)),
            all_lost_grace: Duration::from_secs(10),
            reconnect_backoff_initial: Duration::from_millis(50),
            reconnect_backoff_max: Duration::from_secs(2),
            reconnect_max_retries: 5,
        }
    }
}

impl NetConfig {
    /// Check the knobs for consistency, failing early with
    /// [`io::ErrorKind::InvalidInput`] instead of silently configuring a
    /// pool that declares live slaves dead (a `slave_deadline` at or below
    /// the heartbeat interval would do exactly that).
    pub fn validate(&self) -> io::Result<()> {
        let bad = |message: String| Err(io::Error::new(io::ErrorKind::InvalidInput, message));
        if self.heartbeat_interval.is_zero() {
            return bad("heartbeat_interval must be non-zero".to_string());
        }
        if self.slave_deadline <= self.heartbeat_interval {
            return bad(format!(
                "slave_deadline ({:?}) must exceed heartbeat_interval ({:?}); otherwise a \
                 live, heartbeating slave is declared dead",
                self.slave_deadline, self.heartbeat_interval
            ));
        }
        if self.all_lost_grace.is_zero() {
            return bad("all_lost_grace must be non-zero".to_string());
        }
        if self.register_timeout == Some(Duration::ZERO) {
            return bad("register_timeout must be non-zero (use None to wait forever)".to_string());
        }
        Ok(())
    }
}

/// Outcome of a distributed run (master side).
#[derive(Debug)]
pub struct DistributedOutcome {
    /// Wall-clock seconds from first registration to last completion.
    pub elapsed_seconds: f64,
    /// Useful DP cells.
    pub total_cells: u64,
    /// Useful GCUPS.
    pub gcups: f64,
    /// Globally merged hits.
    pub hits: Vec<QueryHit>,
    /// For each task, the name of the slave whose result was used.
    pub completed_by: Vec<String>,
    /// Kernel-family counters merged across every slave completion
    /// (losing replicas included — they are work the platform really did),
    /// so distributed runs report the same counters as `search --kernel`.
    pub kernels: KernelStats,
    /// Kernel counters per slave, `(name, counters)`, for slaves that
    /// reported any.
    pub kernels_by_pe: Vec<(String, KernelStats)>,
    /// Structured event stream of the run (see [`crate::trace`]).
    pub events: Vec<RuntimeEvent>,
}

#[cfg(test)]
mod tests {
    use std::io::{BufRead, BufReader, BufWriter, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    use super::wire::{decode, recv, send, Wire};
    use super::*;
    use crate::master::MasterConfig;
    use crate::policy::Policy;
    use crate::trace::EventKind;
    use swhybrid_align::scoring::Scoring;
    use swhybrid_device::exec::{ComputeBackend, QueryHit, StripedBackend};
    use swhybrid_device::task::TaskSpec;
    use swhybrid_seq::sequence::EncodedSequence;
    use swhybrid_seq::synth::{paper_database, QueryOrder, QuerySetSpec};
    use swhybrid_seq::Alphabet;

    fn scoring() -> Scoring {
        Scoring {
            matrix: swhybrid_align::scoring::SubstMatrix::blosum62(),
            gap: swhybrid_align::scoring::GapModel::Affine {
                open: 10,
                extend: 2,
            },
        }
    }

    fn tiny_workload() -> (Vec<EncodedSequence>, Vec<EncodedSequence>, Vec<TaskSpec>) {
        let db = paper_database("dog").unwrap().generate_scaled(77, 0.001);
        let subjects: Vec<EncodedSequence> = db.encode_all().unwrap();
        let queries: Vec<EncodedSequence> = QuerySetSpec {
            count: 6,
            min_len: 40,
            max_len: 120,
            order: QueryOrder::Ascending,
        }
        .generate(78)
        .iter()
        .map(|q| EncodedSequence::from_sequence(q, Alphabet::Protein).unwrap())
        .collect();
        let db_residues: u64 = subjects.iter().map(|s| s.len() as u64).sum();
        let specs = queries
            .iter()
            .enumerate()
            .map(|(id, q)| TaskSpec {
                id,
                query_len: q.len(),
                queries: 1,
                db_residues,
                db_sequences: subjects.len(),
            })
            .collect();
        (queries, subjects, specs)
    }

    #[test]
    fn wire_messages_round_trip() {
        let slave_msgs = vec![
            SlaveMsg::Register {
                name: "host-a/core0".into(),
                gcups: 2.7,
                proto: PROTOCOL_VERSION,
                // Deliberately above 2^53: must survive the trip exactly
                // (hence the hex-string encoding, not a JSON number).
                db_digest: Some(0xdead_beef_cafe_f00d),
            },
            SlaveMsg::Request,
            SlaveMsg::Started { task: 3 },
            SlaveMsg::Finished {
                task: 3,
                gcups: 2.5,
                hits: vec![WireHit {
                    db_index: 1,
                    id: "s1".into(),
                    score: -7, // scores can be negative; as_i64, not as_u64
                    subject_len: 99,
                }],
                kernels: Some(swhybrid_simd::engine::KernelStats {
                    resolved_i8: 5,
                    interseq_i8: 40,
                    interseq_i16: 2,
                    chunks_striped: 1,
                    chunks_interseq: 3,
                    cells_computed: 12_345,
                    ..Default::default()
                }),
                fused: None,
            },
            SlaveMsg::Heartbeat,
        ];
        let mut buf = Vec::new();
        for m in &slave_msgs {
            send(&mut buf, m).unwrap();
        }
        let mut reader = BufReader::new(buf.as_slice());
        for _ in 0..slave_msgs.len() {
            assert!(recv::<_, SlaveMsg>(&mut reader).unwrap().is_some());
        }
        assert!(recv::<_, SlaveMsg>(&mut reader).unwrap().is_none());

        let master_msgs = vec![
            MasterMsg::Registered {
                pe_id: 1,
                proto: PROTOCOL_VERSION,
            },
            MasterMsg::Tasks {
                tasks: vec![4, 5],
                descs: None,
            },
            MasterMsg::Tasks {
                tasks: vec![7],
                descs: Some(vec![TaskDesc {
                    queries: vec![
                        wire::QueryDesc {
                            query: vec![0, 3, 19, 2],
                            top_n: 10,
                        },
                        wire::QueryDesc {
                            query: vec![5, 7],
                            top_n: 3,
                        },
                    ],
                    shard: (128, 256),
                }]),
            },
            MasterMsg::Execute {
                task: 2,
                desc: None,
            },
            MasterMsg::Done,
            MasterMsg::Error {
                message: "nope".into(),
            },
        ];
        let mut buf = Vec::new();
        for m in &master_msgs {
            send(&mut buf, m).unwrap();
        }
        let mut reader = BufReader::new(buf.as_slice());
        for _ in 0..master_msgs.len() {
            assert!(recv::<_, MasterMsg>(&mut reader).unwrap().is_some());
        }
        // The register round-trip preserves version and digest verbatim.
        match decode::<SlaveMsg>(&slave_msgs[0].to_json().to_string()).unwrap() {
            SlaveMsg::Register {
                proto, db_digest, ..
            } => {
                assert_eq!(proto, PROTOCOL_VERSION);
                assert_eq!(db_digest, Some(0xdead_beef_cafe_f00d));
            }
            other => panic!("wrong decode: {other:?}"),
        }
        // The finished round-trip preserves the hit verbatim.
        let msg = decode::<SlaveMsg>(&slave_msgs[3].to_json().to_string()).unwrap();
        match msg {
            SlaveMsg::Finished {
                task,
                gcups,
                hits,
                kernels,
                fused,
            } => {
                assert_eq!(task, 3);
                assert!((gcups - 2.5).abs() < 1e-12);
                assert_eq!(
                    hits,
                    vec![WireHit {
                        db_index: 1,
                        id: "s1".into(),
                        score: -7,
                        subject_len: 99,
                    }]
                );
                let k = kernels.expect("kernels field must round-trip");
                assert_eq!(k.interseq_i8, 40);
                assert_eq!(k.cells_computed, 12_345);
                assert!(fused.is_none());
            }
            other => panic!("wrong decode: {other:?}"),
        }
        // Self-describing tasks round-trip the fused query batch and shard
        // bounds, preserving batch order.
        match decode::<MasterMsg>(&master_msgs[2].to_json().to_string()).unwrap() {
            MasterMsg::Tasks { tasks, descs } => {
                assert_eq!(tasks, vec![7]);
                let descs = descs.expect("descs must round-trip");
                assert_eq!(descs[0].queries.len(), 2);
                assert_eq!(descs[0].queries[0].query, vec![0, 3, 19, 2]);
                assert_eq!(descs[0].queries[0].top_n, 10);
                assert_eq!(descs[0].queries[1].query, vec![5, 7]);
                assert_eq!(descs[0].queries[1].top_n, 3);
                assert_eq!(descs[0].shard, (128, 256));
            }
            other => panic!("wrong decode: {other:?}"),
        }
        // A finished line without the kernels field (an older slave) still
        // decodes, with the counters absent.
        let legacy = r#"{"type":"finished","task":1,"gcups":1.0,"hits":[]}"#;
        match decode::<SlaveMsg>(legacy).unwrap() {
            SlaveMsg::Finished { kernels, .. } => assert!(kernels.is_none()),
            other => panic!("wrong decode: {other:?}"),
        }
        // A v1 register (no proto, no digest) decodes as version 1 — the
        // handshake then rejects it with a clear error, not a parse error.
        let v1 = r#"{"type":"register","name":"old","gcups":1.0}"#;
        match decode::<SlaveMsg>(v1).unwrap() {
            SlaveMsg::Register {
                proto, db_digest, ..
            } => {
                assert_eq!(proto, 1);
                assert_eq!(db_digest, None);
            }
            other => panic!("wrong decode: {other:?}"),
        }
        let v1 = r#"{"type":"registered","pe_id":0}"#;
        match decode::<MasterMsg>(v1).unwrap() {
            MasterMsg::Registered { proto, .. } => assert_eq!(proto, 1),
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_decode_to_invalid_data() {
        for bad in [
            "",
            "not json",
            "{\"type\":\"warp\"}",
            "{\"type\":\"started\"}",
            "{\"type\":\"register\",\"name\":\"x\",\"gcups\":1.0,\"db_digest\":12}",
        ] {
            let err = decode::<SlaveMsg>(bad).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "input: {bad:?}");
        }
    }

    #[test]
    fn netconfig_validation_rejects_inconsistent_timings() {
        assert!(NetConfig::default().validate().is_ok());
        let cases = [
            NetConfig {
                heartbeat_interval: Duration::ZERO,
                ..NetConfig::default()
            },
            NetConfig {
                // A deadline at or below the heartbeat interval declares
                // live slaves dead.
                heartbeat_interval: Duration::from_secs(10),
                slave_deadline: Duration::from_secs(2),
                ..NetConfig::default()
            },
            NetConfig {
                all_lost_grace: Duration::ZERO,
                ..NetConfig::default()
            },
            NetConfig {
                register_timeout: Some(Duration::ZERO),
                ..NetConfig::default()
            },
        ];
        for (i, bad) in cases.iter().enumerate() {
            let err = bad.validate().unwrap_err();
            assert_eq!(
                err.kind(),
                io::ErrorKind::InvalidInput,
                "case {i} must be rejected"
            );
        }
        // The error path reaches the public entry points.
        let err =
            MasterServer::bind_with("127.0.0.1:0", MasterConfig::default(), 1, cases[1].clone())
                .err()
                .expect("inconsistent timings must fail bind");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let err = run_slave_with(
            "127.0.0.1:1", // never reached: validation fails first
            "bad",
            1.0,
            &StripedBackend::default(),
            &[],
            &[],
            &scoring(),
            3,
            &cases[0],
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn distributed_run_two_slaves_over_tcp() {
        let (queries, subjects, specs) = tiny_workload();
        let server = MasterServer::bind(
            "127.0.0.1:0",
            MasterConfig {
                policy: Policy::pss_default(),
                adjustment: true,
                dispatch: Default::default(),
            },
            2,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();

        let outcome = std::thread::scope(|scope| {
            let q = &queries;
            let s = &subjects;
            for name in ["host-a", "host-b"] {
                scope.spawn(move || {
                    run_slave(
                        addr,
                        name,
                        1.0,
                        &StripedBackend::default(),
                        q,
                        s,
                        &scoring(),
                        3,
                    )
                    .expect("slave runs clean")
                });
            }
            server.serve(specs).expect("server completes")
        });

        assert_eq!(outcome.completed_by.len(), 6);
        assert!(outcome
            .completed_by
            .iter()
            .all(|n| n == "host-a" || n == "host-b"));
        assert!(outcome.gcups > 0.0);
        // The run produced an event stream ending in completion.
        assert!(outcome
            .events
            .iter()
            .any(|e| e.kind == EventKind::RunCompleted));
        // Slaves reported kernel counters and the server aggregated them:
        // every scanned cell is accounted for, globally and per slave.
        assert!(outcome.kernels.cells_computed > 0);
        assert!(!outcome.kernels_by_pe.is_empty());
        let by_pe_cells: u64 = outcome
            .kernels_by_pe
            .iter()
            .map(|(_, k)| k.cells_computed)
            .sum();
        assert_eq!(by_pe_cells, outcome.kernels.cells_computed);
        for (name, _) in &outcome.kernels_by_pe {
            assert!(name == "host-a" || name == "host-b");
        }
        // Hits match a direct local computation.
        for qh in &outcome.hits {
            let expect = swhybrid_align::score_only::sw_score_affine(
                &queries[qh.query_index].codes,
                &subjects[qh.hit.db_index].codes,
                &scoring(),
            )
            .score;
            assert_eq!(qh.hit.score, expect);
        }
    }

    #[test]
    fn hybrid_fleet_and_remote_slave_share_one_pool() {
        use crate::runtime::RealPe;
        use swhybrid_device::FleetSpec;
        let (queries, subjects, specs) = tiny_workload();
        let sc = scoring();
        let server = MasterServer::bind(
            "127.0.0.1:0",
            MasterConfig {
                policy: Policy::pss_default(),
                adjustment: true,
                dispatch: Default::default(),
            },
            1,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let fleet = LocalFleet {
            pes: FleetSpec::parse("gpu:1+sse:1")
                .unwrap()
                .build()
                .into_iter()
                .map(RealPe::from)
                .collect(),
            queries: &queries,
            subjects: &subjects,
            scoring: &sc,
            top_n: 3,
        };

        let outcome = std::thread::scope(|scope| {
            let q = &queries;
            let s = &subjects;
            scope.spawn(move || {
                run_slave(
                    addr,
                    "remote-a",
                    1.0,
                    &StripedBackend::default(),
                    q,
                    s,
                    &scoring(),
                    3,
                )
                .expect("slave runs clean")
            });
            server.serve_hybrid(specs, fleet).expect("server completes")
        });

        // All three PE kinds — modeled GPU, local SIMD, remote slave —
        // registered into the same pool and every winner is one of them.
        assert_eq!(outcome.completed_by.len(), 6);
        let names = ["gpu0", "sse0", "remote-a"];
        assert!(outcome
            .completed_by
            .iter()
            .all(|n| names.contains(&n.as_str())));
        let registered: Vec<String> = outcome
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::PeRegistered { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        for n in names {
            assert!(registered.iter().any(|r| r == n), "{n} never registered");
        }
        // The modeled PE's completions quote the calibrated model.
        use swhybrid_device::{DeviceModel, GpuDevice};
        let device = GpuDevice::gtx580("gpu0");
        let gpu_pe = outcome
            .events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::PeRegistered { pe, name, .. } if name == "gpu0" => Some(*pe),
                _ => None,
            })
            .unwrap();
        let (_, _, wl_specs) = tiny_workload();
        for e in &outcome.events {
            if let EventKind::TaskFinished {
                pe,
                task,
                measured_gcups,
                ..
            } = e.kind
            {
                if pe == gpu_pe {
                    assert_eq!(measured_gcups, device.task_gcups(&wl_specs[task]));
                }
            }
        }
        // Hits match a direct computation — modeled speed never touches
        // the scores.
        for qh in &outcome.hits {
            let expect = swhybrid_align::score_only::sw_score_affine(
                &queries[qh.query_index].codes,
                &subjects[qh.hit.db_index].codes,
                &scoring(),
            )
            .score;
            assert_eq!(qh.hit.score, expect);
        }
    }

    #[test]
    fn hybrid_serve_with_zero_slaves_is_a_local_run() {
        use crate::runtime::RealPe;
        use swhybrid_device::FleetSpec;
        let (queries, subjects, specs) = tiny_workload();
        let sc = scoring();
        let server = MasterServer::bind("127.0.0.1:0", MasterConfig::default(), 0).unwrap();
        let fleet = LocalFleet {
            pes: FleetSpec::parse("sse:2")
                .unwrap()
                .build()
                .into_iter()
                .map(RealPe::from)
                .collect(),
            queries: &queries,
            subjects: &subjects,
            scoring: &sc,
            top_n: 3,
        };
        let outcome = server.serve_hybrid(specs, fleet).expect("local-only run");
        assert_eq!(outcome.completed_by.len(), 6);
        assert!(outcome
            .completed_by
            .iter()
            .all(|n| n == "sse0" || n == "sse1"));
        assert!(outcome
            .events
            .iter()
            .any(|e| e.kind == EventKind::RunCompleted));
    }

    /// Regression: a connection whose first message is not `register` used
    /// to consume one of the `expected_slaves` accept slots, deadlocking
    /// the server. It must instead get an error and cost nothing.
    #[test]
    fn garbage_first_message_does_not_consume_a_registration_slot() {
        let (queries, subjects, specs) = tiny_workload();
        let server = MasterServer::bind(
            "127.0.0.1:0",
            MasterConfig {
                policy: Policy::pss_default(),
                adjustment: true,
                dispatch: Default::default(),
            },
            2,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();

        let outcome = std::thread::scope(|scope| {
            let q = &queries;
            let s = &subjects;
            scope.spawn(move || {
                // Not a slave at all: say something wrong, expect an error.
                let stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = BufWriter::new(stream);
                writer.write_all(b"i am not a slave\n").unwrap();
                writer.flush().unwrap();
                match recv::<_, MasterMsg>(&mut reader).unwrap() {
                    Some(MasterMsg::Error { .. }) => {}
                    other => panic!("expected an error reply, got {other:?}"),
                }
            });
            for name in ["real-a", "real-b"] {
                scope.spawn(move || {
                    // Give the garbage client a head start so it provably
                    // connects before both real slaves.
                    std::thread::sleep(Duration::from_millis(100));
                    run_slave(
                        addr,
                        name,
                        1.0,
                        &StripedBackend::default(),
                        q,
                        s,
                        &scoring(),
                        3,
                    )
                    .expect("real slave ok")
                });
            }
            server
                .serve(specs)
                .expect("server completes despite garbage")
        });
        assert!(outcome.completed_by.iter().all(|n| !n.is_empty()));
    }

    /// A version-mismatched slave is refused at the handshake with a clear
    /// error naming both versions — and, like any failed handshake, does
    /// not consume a registration slot.
    #[test]
    fn version_mismatch_is_refused_with_a_clear_error() {
        let (queries, subjects, specs) = tiny_workload();
        let server = MasterServer::bind(
            "127.0.0.1:0",
            MasterConfig {
                policy: Policy::pss_default(),
                adjustment: true,
                dispatch: Default::default(),
            },
            1,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();

        let outcome = std::thread::scope(|scope| {
            let q = &queries;
            let s = &subjects;
            scope.spawn(move || {
                // A v1 slave: its register line has no proto field.
                let stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = BufWriter::new(stream);
                writer
                    .write_all(b"{\"type\":\"register\",\"name\":\"old\",\"gcups\":1.0}\n")
                    .unwrap();
                writer.flush().unwrap();
                match recv::<_, MasterMsg>(&mut reader).unwrap() {
                    Some(MasterMsg::Error { message }) => {
                        assert!(
                            message.contains("protocol version mismatch")
                                && message.contains("v1")
                                && message.contains(&format!("v{PROTOCOL_VERSION}")),
                            "unhelpful error: {message}"
                        );
                    }
                    other => panic!("expected a version error, got {other:?}"),
                }
            });
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(100));
                run_slave(
                    addr,
                    "current",
                    1.0,
                    &StripedBackend::default(),
                    q,
                    s,
                    &scoring(),
                    3,
                )
                .expect("current-version slave ok")
            });
            server
                .serve(specs)
                .expect("server completes despite the v1 visitor")
        });
        assert!(outcome.completed_by.iter().all(|n| n == "current"));
    }

    /// A slave that earns a big batch, then drops the connection (FIN)
    /// mid-batch — simulating a process crash.
    fn run_flaky_slave(
        addr: std::net::SocketAddr,
        queries: &[EncodedSequence],
        subjects: &[EncodedSequence],
    ) {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        send(
            &mut writer,
            &SlaveMsg::Register {
                name: "flaky".into(),
                gcups: 100.0,
                proto: PROTOCOL_VERSION,
                db_digest: None,
            },
        )
        .unwrap();
        assert!(matches!(
            recv::<_, MasterMsg>(&mut reader).unwrap(),
            Some(MasterMsg::Registered { .. })
        ));
        // First allocation is one task; complete it honestly but report an
        // absurd speed so Φ hands us a huge batch next time.
        send(&mut writer, &SlaveMsg::Request).unwrap();
        let first = match recv::<_, MasterMsg>(&mut reader).unwrap() {
            Some(MasterMsg::Tasks { tasks, .. }) => tasks[0],
            other => panic!("expected first allocation, got {other:?}"),
        };
        let backend = StripedBackend::default();
        send(&mut writer, &SlaveMsg::Started { task: first }).unwrap();
        let result = backend.compare(&queries[first], subjects, &scoring(), 3);
        send(
            &mut writer,
            &SlaveMsg::Finished {
                task: first,
                gcups: 1000.0,
                hits: result.hits.into_iter().map(WireHit::from_hit).collect(),
                kernels: Some(result.stats),
                fused: None,
            },
        )
        .unwrap();
        send(&mut writer, &SlaveMsg::Request).unwrap();
        match recv::<_, MasterMsg>(&mut reader).unwrap() {
            Some(MasterMsg::Tasks { tasks, .. }) => {
                // Start the first batch entry, then vanish holding them all.
                send(&mut writer, &SlaveMsg::Started { task: tasks[0] }).unwrap();
            }
            Some(MasterMsg::Execute { .. }) | Some(MasterMsg::Done) => {
                // The steady slave was too fast this run; dropping here
                // still exercises the disconnect path.
            }
            other => panic!("unexpected reply: {other:?}"),
        }
        // Connection drops here (stream goes out of scope): the master must
        // return the undone batch entries to the ready queue.
    }

    #[test]
    fn slave_crash_mid_run_is_recovered() {
        let (queries, subjects, specs) = tiny_workload();
        let n_tasks = specs.len();
        let server = MasterServer::bind(
            "127.0.0.1:0",
            MasterConfig {
                policy: Policy::pss_default(),
                adjustment: true,
                dispatch: Default::default(),
            },
            2,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();

        let outcome = std::thread::scope(|scope| {
            let q = &queries;
            let s = &subjects;
            scope.spawn(move || run_flaky_slave(addr, q, s));
            scope.spawn(move || {
                run_slave(
                    addr,
                    "steady",
                    1.0,
                    &StripedBackend::default(),
                    q,
                    s,
                    &scoring(),
                    3,
                )
                .expect("steady slave survives")
            });
            server.serve(specs).expect("server completes despite crash")
        });

        // Every task completed, by someone.
        assert_eq!(outcome.completed_by.len(), n_tasks);
        assert!(outcome.completed_by.iter().all(|n| !n.is_empty()));
        // The flaky slave finished at most its first allocation; the steady
        // slave picked up the crashed slave's abandoned batch.
        assert!(
            outcome
                .completed_by
                .iter()
                .filter(|n| *n == "flaky")
                .count()
                <= 1,
            "completed_by: {:?}",
            outcome.completed_by
        );
    }

    /// The worst failure TCP cannot see: a slave that stops computing but
    /// keeps its socket open (no FIN). The master must notice via the
    /// heartbeat deadline, requeue the held task, and let the surviving
    /// slave pick it up without any poll-interval delay.
    #[test]
    fn silently_dead_slave_is_detected_and_its_task_requeued() {
        let (queries, subjects, specs) = tiny_workload();
        let net = NetConfig {
            heartbeat_interval: Duration::from_millis(100),
            slave_deadline: Duration::from_secs(1),
            ..NetConfig::default()
        };
        let server = MasterServer::bind_with(
            "127.0.0.1:0",
            MasterConfig {
                policy: Policy::SelfScheduling,
                adjustment: false, // no replication: only the deadline can save task 0
                dispatch: Default::default(),
            },
            1,
            net.clone(),
        )
        .unwrap();
        let addr = server.local_addr().unwrap();

        let outcome = std::thread::scope(|scope| {
            let q = &queries;
            let s = &subjects;
            let net = &net;
            scope.spawn(move || {
                // Mute slave: alone it satisfies the barrier, takes a task,
                // reports it started, then goes silent with the socket open.
                let stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = BufWriter::new(stream.try_clone().unwrap());
                send(
                    &mut writer,
                    &SlaveMsg::Register {
                        name: "mute".into(),
                        gcups: 1.0,
                        proto: PROTOCOL_VERSION,
                        db_digest: None,
                    },
                )
                .unwrap();
                assert!(matches!(
                    recv::<_, MasterMsg>(&mut reader).unwrap(),
                    Some(MasterMsg::Registered { .. })
                ));
                send(&mut writer, &SlaveMsg::Request).unwrap();
                let assigned = match recv::<_, MasterMsg>(&mut reader).unwrap() {
                    Some(MasterMsg::Tasks { tasks, .. }) => tasks,
                    other => panic!("expected tasks, got {other:?}"),
                };
                send(&mut writer, &SlaveMsg::Started { task: assigned[0] }).unwrap();
                // Silence. No heartbeat, no FIN — block until the master,
                // having declared this PE dead, closes the connection.
                let mut sink = String::new();
                while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
                    sink.clear();
                }
            });
            scope.spawn(move || {
                // The real slave joins late (pe_joins path) so the mute one
                // is guaranteed to have been assigned its task first.
                std::thread::sleep(Duration::from_millis(200));
                run_slave_with(
                    addr,
                    "steady",
                    1.0,
                    &StripedBackend::default(),
                    q,
                    s,
                    &scoring(),
                    3,
                    net,
                )
                .expect("steady slave completes the run")
            });
            server
                .serve(specs)
                .expect("server completes despite silent death")
        });

        // All tasks completed, all by the surviving slave.
        assert!(outcome.completed_by.iter().all(|n| n == "steady"));
        // The liveness verdict and the requeue are in the event stream.
        let ev = &outcome.events;
        assert!(
            ev.iter()
                .any(|e| matches!(e.kind, EventKind::PeSuspectedDead { .. })),
            "no suspected-dead event"
        );
        let (rq_time, rq_task) = ev
            .iter()
            .find_map(|e| match e.kind {
                EventKind::TaskRequeued { task, .. } => Some((e.time, task)),
                _ => None,
            })
            .expect("no requeue event");
        // The requeued task is picked up without any poll-interval delay:
        // the surviving slave's long-poll wakes on the requeue itself.
        let pickup = ev
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::TasksAssigned { tasks, .. }
                    if e.time >= rq_time && tasks.contains(&rq_task) =>
                {
                    Some(e.time)
                }
                _ => None,
            })
            .expect("requeued task never reassigned");
        assert!(
            pickup - rq_time < 0.5,
            "requeue→pickup latency {}s looks like polling",
            pickup - rq_time
        );
        // Hits still match a direct local computation.
        for qh in &outcome.hits {
            let expect = swhybrid_align::score_only::sw_score_affine(
                &queries[qh.query_index].codes,
                &subjects[qh.hit.db_index].codes,
                &scoring(),
            )
            .score;
            assert_eq!(qh.hit.score, expect);
        }
    }

    /// A connection that never says anything must not pin server state:
    /// the handshake deadline frees it without consuming a slot.
    #[test]
    fn silent_probe_connection_is_dropped_at_handshake_deadline() {
        let (queries, subjects, specs) = tiny_workload();
        let net = NetConfig {
            heartbeat_interval: Duration::from_millis(100),
            slave_deadline: Duration::from_secs(1),
            ..NetConfig::default()
        };
        let server = MasterServer::bind_with(
            "127.0.0.1:0",
            MasterConfig {
                policy: Policy::pss_default(),
                adjustment: true,
                dispatch: Default::default(),
            },
            1,
            net.clone(),
        )
        .unwrap();
        let addr = server.local_addr().unwrap();

        let outcome = std::thread::scope(|scope| {
            let q = &queries;
            let s = &subjects;
            let net = &net;
            scope.spawn(move || {
                // Connect, say nothing, wait for the master to hang up.
                let stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream);
                let mut sink = String::new();
                while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
                    sink.clear();
                }
            });
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(100));
                run_slave_with(
                    addr,
                    "real",
                    1.0,
                    &StripedBackend::default(),
                    q,
                    s,
                    &scoring(),
                    3,
                    net,
                )
                .expect("real slave ok")
            });
            server
                .serve(specs)
                .expect("server unaffected by silent probe")
        });
        assert!(outcome.completed_by.iter().all(|n| n == "real"));
    }

    /// With a registration timeout, a no-show slave no longer hangs the
    /// server: the barrier opens with whoever did register.
    #[test]
    fn register_timeout_proceeds_with_fewer_slaves() {
        let (queries, subjects, specs) = tiny_workload();
        let net = NetConfig {
            register_timeout: Some(Duration::from_millis(300)),
            ..NetConfig::default()
        };
        let server = MasterServer::bind_with(
            "127.0.0.1:0",
            MasterConfig {
                policy: Policy::pss_default(),
                adjustment: true,
                dispatch: Default::default(),
            },
            2, // the second slave never shows up
            net,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();

        let outcome = std::thread::scope(|scope| {
            let q = &queries;
            let s = &subjects;
            scope.spawn(move || {
                run_slave(
                    addr,
                    "only",
                    1.0,
                    &StripedBackend::default(),
                    q,
                    s,
                    &scoring(),
                    3,
                )
                .expect("lone slave completes everything")
            });
            server.serve(specs).expect("server proceeds degraded")
        });
        assert!(outcome.completed_by.iter().all(|n| n == "only"));
    }

    /// With no slave at all, `serve` returns instead of blocking forever
    /// in accept.
    #[test]
    fn register_timeout_with_no_slaves_errors_out() {
        let (_queries, _subjects, specs) = tiny_workload();
        let net = NetConfig {
            register_timeout: Some(Duration::from_millis(200)),
            ..NetConfig::default()
        };
        let server =
            MasterServer::bind_with("127.0.0.1:0", MasterConfig::default(), 1, net).unwrap();
        let err = server.serve(specs).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    /// The slave side of fault tolerance: a dropped connection is retried
    /// with backoff, and the second session completes the work.
    #[test]
    fn slave_reconnects_after_connection_drop() {
        let (queries, subjects, _specs) = tiny_workload();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let net = NetConfig {
            heartbeat_interval: Duration::from_secs(10), // keep the transcript clean
            slave_deadline: Duration::from_secs(30),     // must stay above the heartbeat
            reconnect_backoff_initial: Duration::from_millis(10),
            ..NetConfig::default()
        };

        let executed = std::thread::scope(|scope| {
            let q = &queries;
            let s = &subjects;
            let net = &net;
            let slave = scope.spawn(move || {
                run_slave_with(
                    addr,
                    "phoenix",
                    1.0,
                    &StripedBackend::default(),
                    q,
                    s,
                    &scoring(),
                    3,
                    net,
                )
            });
            // Session 1: take the registration, then drop the connection.
            {
                let (stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(stream);
                assert!(matches!(
                    recv::<_, SlaveMsg>(&mut reader).unwrap(),
                    Some(SlaveMsg::Register { .. })
                ));
            }
            // Session 2: full handshake, one task, done.
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = BufWriter::new(stream);
            assert!(matches!(
                recv::<_, SlaveMsg>(&mut reader).unwrap(),
                Some(SlaveMsg::Register { .. })
            ));
            send(
                &mut writer,
                &MasterMsg::Registered {
                    pe_id: 0,
                    proto: PROTOCOL_VERSION,
                },
            )
            .unwrap();
            loop {
                match recv::<_, SlaveMsg>(&mut reader).unwrap() {
                    Some(SlaveMsg::Request) => break,
                    Some(SlaveMsg::Heartbeat) => {}
                    other => panic!("unexpected {other:?}"),
                }
            }
            send(
                &mut writer,
                &MasterMsg::Execute {
                    task: 0,
                    desc: None,
                },
            )
            .unwrap();
            let mut finished = false;
            loop {
                match recv::<_, SlaveMsg>(&mut reader).unwrap() {
                    Some(SlaveMsg::Heartbeat) | Some(SlaveMsg::Started { .. }) => {}
                    Some(SlaveMsg::Finished { task, gcups, .. }) => {
                        assert_eq!(task, 0);
                        assert!(gcups > 0.0, "finished with degenerate speed {gcups}");
                        finished = true;
                    }
                    Some(SlaveMsg::Request) if finished => break,
                    other => panic!("unexpected {other:?}"),
                }
            }
            send(&mut writer, &MasterMsg::Done).unwrap();
            slave.join().unwrap()
        })
        .unwrap();
        assert_eq!(executed, 1);
    }

    #[test]
    fn distributed_equals_local_runtime_results() {
        let (queries, subjects, specs) = tiny_workload();
        let server = MasterServer::bind(
            "127.0.0.1:0",
            MasterConfig {
                policy: Policy::SelfScheduling,
                adjustment: false,
                dispatch: Default::default(),
            },
            1,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let outcome = std::thread::scope(|scope| {
            let q = &queries;
            let s = &subjects;
            scope.spawn(move || {
                run_slave(
                    addr,
                    "solo",
                    1.0,
                    &StripedBackend::default(),
                    q,
                    s,
                    &scoring(),
                    3,
                )
                .expect("slave ok")
            });
            server.serve(specs).expect("server ok")
        });

        let local = crate::runtime::run_real(
            vec![crate::runtime::RealPe {
                name: "solo".into(),
                static_gcups: 1.0,
                backend: Box::new(StripedBackend::default()),
            }],
            &queries,
            &subjects,
            &scoring(),
            crate::runtime::RuntimeConfig {
                master: MasterConfig {
                    policy: Policy::SelfScheduling,
                    adjustment: false,
                    dispatch: Default::default(),
                },
                top_n: 3,
            },
        );
        let key = |hits: &[QueryHit]| {
            let mut v: Vec<(usize, usize, i32)> = hits
                .iter()
                .map(|h| (h.query_index, h.hit.db_index, h.hit.score))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(key(&outcome.hits), key(&local.hits));
    }
}
