//! The master process: accepts slave connections and runs one batch to
//! completion on the shared pool-drive loop.

use std::io;
use std::net::{TcpListener, ToSocketAddrs};
use std::time::{Duration, Instant};

use super::session::serve_connection;
use super::{DistributedOutcome, NetConfig};
use crate::master::{Master, MasterConfig};
use crate::pool::{drive, BatchOwner, LocalEndpoint, PePool, TaskResult};
use crate::runtime::RealPe;
use crate::stats::observed_gcups;
use crate::trace::RuntimeEvent;
use swhybrid_align::scoring::Scoring;
use swhybrid_device::exec::merge_hits;
use swhybrid_device::task::TaskSpec;
use swhybrid_seq::sequence::EncodedSequence;
use swhybrid_simd::engine::KernelStats;

/// Accept-loop re-check interval (a *connection* poll while idle, not a
/// work-request poll — work requests are long-polled on the hub condvar).
const ACCEPT_QUANTUM: Duration = Duration::from_millis(10);

/// A live event tap, as accepted by [`MasterServer::with_event_sink`].
type EventCallback = Box<dyn FnMut(&RuntimeEvent) + Send>;

/// The master's own PEs: a hybrid fleet computing in-process, sharing the
/// pool (and thus the scheduler) with whatever slaves connect over TCP.
/// This is the paper's Fig. 1 in one process — the master is not only a
/// dispatcher but may *itself* host real SIMD cores and modeled
/// accelerators.
pub struct LocalFleet<'a> {
    /// The fleet members (e.g. from `FleetSpec::build()` via `RealPe::from`).
    pub pes: Vec<RealPe>,
    /// The encoded query set (task id = query index, as everywhere).
    pub queries: &'a [EncodedSequence],
    /// The materialised database.
    pub subjects: &'a [EncodedSequence],
    /// Alignment scoring.
    pub scoring: &'a Scoring,
    /// Hits retained per task.
    pub top_n: usize,
}

/// The master process: owns the task pool, serves slave connections.
pub struct MasterServer {
    listener: TcpListener,
    config: MasterConfig,
    expected_slaves: usize,
    net: NetConfig,
    sink: Option<EventCallback>,
}

impl MasterServer {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) with
    /// default [`NetConfig`] timings.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: MasterConfig,
        expected_slaves: usize,
    ) -> io::Result<MasterServer> {
        Self::bind_with(addr, config, expected_slaves, NetConfig::default())
    }

    /// Bind with explicit [`NetConfig`] timings. Fails with
    /// [`io::ErrorKind::InvalidInput`] when the timings are inconsistent
    /// (see [`NetConfig::validate`]).
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        config: MasterConfig,
        expected_slaves: usize,
        net: NetConfig,
    ) -> io::Result<MasterServer> {
        // Zero slaves is now legal — the run can be carried entirely by a
        // local fleet (see [`MasterServer::serve_hybrid`]); the PE-count
        // requirement is checked at serve time, when the fleet is known.
        net.validate()?;
        Ok(MasterServer {
            listener: TcpListener::bind(addr)?,
            config,
            expected_slaves,
            net,
            sink: None,
        })
    }

    /// Stream every [`RuntimeEvent`] to `sink` as it is emitted (e.g. a
    /// JSONL file flushed per line, so a crashed run still leaves a usable
    /// trace). Called with the master's lock held — keep it short.
    pub fn with_event_sink(
        mut self,
        sink: impl FnMut(&RuntimeEvent) + Send + 'static,
    ) -> MasterServer {
        self.sink = Some(Box::new(sink));
        self
    }

    /// The bound address (give this to the slaves).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until every task is finished and every slave has disconnected.
    ///
    /// Registration is a barrier: work is only handed out once
    /// `expected_slaves` have *registered* (required for static policies
    /// and matching the paper's "waits for the slaves to register") — or
    /// [`NetConfig::register_timeout`] expires, whichever is first. The
    /// listener keeps accepting throughout the run, so a connection that
    /// fails its handshake never consumes a slave's place and late or
    /// reconnecting slaves can always get in.
    pub fn serve(self, specs: Vec<TaskSpec>) -> io::Result<DistributedOutcome> {
        assert!(self.expected_slaves >= 1, "need at least one slave");
        self.serve_inner(specs, None)
    }

    /// Serve with a hybrid in-process fleet *and* (optionally) remote
    /// slaves, all on the same pool: the fleet's PEs are admitted before
    /// the accept loop starts, count toward the registration barrier, and
    /// compute through their [`crate::runtime::RealPe`] backends (real
    /// SIMD, or modeled accelerators attributing their device model's
    /// GCUPS) while slave sessions come and go over TCP. With
    /// `expected_slaves == 0` this is a purely local hybrid run that still
    /// flows through the full distributed machinery.
    pub fn serve_hybrid(
        self,
        specs: Vec<TaskSpec>,
        fleet: LocalFleet<'_>,
    ) -> io::Result<DistributedOutcome> {
        assert!(
            self.expected_slaves + fleet.pes.len() >= 1,
            "need at least one PE (slave or fleet member)"
        );
        self.serve_inner(specs, Some(fleet))
    }

    fn serve_inner(
        self,
        specs: Vec<TaskSpec>,
        fleet: Option<LocalFleet<'_>>,
    ) -> io::Result<DistributedOutcome> {
        let MasterServer {
            listener,
            config,
            expected_slaves,
            net,
            sink,
        } = self;
        let n_tasks = specs.len();
        let total_cells: u64 = specs.iter().map(|s| s.cells()).sum();
        let mut master = Master::new(specs.clone(), config);
        if let Some(sink) = sink {
            master.set_event_sink(sink);
        }
        let fleet_size = fleet.as_ref().map_or(0, |f| f.pes.len());
        let pool = PePool::new(
            master,
            BatchOwner::new(n_tasks),
            expected_slaves + fleet_size,
        );
        listener.set_nonblocking(true)?;
        let start = Instant::now();
        let mut lost_since: Option<Instant> = None;

        std::thread::scope(|scope| {
            // Admit and launch the local fleet first: its registrations
            // open the barrier's local share, and its threads are ordinary
            // pool-drive endpoints — the same loop the slave sessions run.
            if let Some(fleet) = &fleet {
                let ids: Vec<_> = fleet
                    .pes
                    .iter()
                    .map(|pe| pool.admit(&pe.name, pe.static_gcups, false))
                    .collect();
                for (pe_id, pe) in ids.into_iter().zip(&fleet.pes) {
                    let pool = &pool;
                    let specs = &specs;
                    let (queries, subjects) = (fleet.queries, fleet.subjects);
                    let (scoring, top_n) = (fleet.scoring, fleet.top_n);
                    scope.spawn(move || {
                        let mut endpoint = LocalEndpoint::new(|task| {
                            let t_start = Instant::now();
                            let search =
                                pe.backend.compare(&queries[task], subjects, scoring, top_n);
                            let gcups =
                                pe.backend.modeled_gcups(&specs[task]).unwrap_or_else(|| {
                                    observed_gcups(search.cells, t_start.elapsed().as_secs_f64())
                                });
                            TaskResult {
                                gcups: Some(gcups),
                                hits: search.hits,
                                cells: search.cells,
                                kernels: Some(search.stats),
                                fused: None,
                            }
                        });
                        drive(pool, pe_id, &mut endpoint);
                    });
                }
            }
            loop {
                {
                    let mut g = pool.lock();
                    if g.abort().is_some() {
                        break;
                    }
                    if g.barrier_open() && g.master.all_finished() && g.alive() == 0 {
                        break;
                    }
                    if !g.barrier_open() {
                        if let Some(t) = net.register_timeout {
                            if start.elapsed() > t {
                                if g.registered() == 0 {
                                    g.set_abort(
                                        io::ErrorKind::TimedOut,
                                        format!("no slave registered within {t:?}"),
                                    );
                                } else {
                                    // Proceed degraded with the slaves we
                                    // have rather than hang on a no-show.
                                    g.open_barrier();
                                }
                                drop(g);
                                pool.notify_all();
                                continue;
                            }
                        }
                    } else if g.alive() == 0 && !g.master.all_finished() {
                        let since = *lost_since.get_or_insert_with(Instant::now);
                        if since.elapsed() > net.all_lost_grace {
                            g.set_abort(
                                io::ErrorKind::ConnectionAborted,
                                "every slave disconnected mid-run",
                            );
                            drop(g);
                            pool.notify_all();
                            continue;
                        }
                    } else {
                        lost_since = None;
                    }
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let pool = &pool;
                        let net = &net;
                        scope.spawn(move || serve_connection(stream, pool, net));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        // Wakes early on any pool change (e.g. run
                        // completed) and at the latest after one quantum.
                        let g = pool.lock();
                        let _g = pool.wait_timeout(g, ACCEPT_QUANTUM);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        let mut g = pool.lock();
                        g.set_abort(e.kind(), e.to_string());
                        drop(g);
                        pool.notify_all();
                        break;
                    }
                }
            }
            // Wake every parked endpoint so the scope can join them.
            pool.notify_all();
        });

        let elapsed_seconds = start.elapsed().as_secs_f64();
        let mut core = pool.into_inner();
        if let Some((kind, message)) = core.take_abort() {
            return Err(io::Error::new(kind, message));
        }
        let kernels_by_pe: Vec<(String, KernelStats)> = core
            .owner
            .kernels_by_pe
            .iter()
            .enumerate()
            .filter(|(_, k)| **k != KernelStats::default())
            .map(|(pe, k)| (core.master.pe_name(pe).to_string(), *k))
            .collect();
        let events = core.master.take_events();
        let hits = merge_hits(
            core.owner
                .results
                .into_iter()
                .enumerate()
                .filter_map(|(task, hits)| hits.map(|hits| (task, hits))),
        );
        Ok(DistributedOutcome {
            elapsed_seconds,
            total_cells,
            gcups: observed_gcups(total_cells, elapsed_seconds),
            hits,
            completed_by: core.owner.completed_by,
            kernels: core.owner.kernels,
            kernels_by_pe,
            events,
        })
    }
}
