//! Wire encoding of the master/slave protocol: newline-delimited JSON
//! messages, the deadline-aware line reader, and the kernel-counter JSON
//! shape shared with the serve daemon's `stats` verb.

use std::io::{self, BufRead, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::task::{PeId, TaskId};
use swhybrid_json::Json;
use swhybrid_simd::engine::KernelStats;

/// Version of the wire protocol spoken by this build. Carried by both
/// halves of the `register` handshake; a mismatched pair fails with a
/// clear error instead of a parse failure mid-run. History:
///
/// * v1 — original protocol (no version field; absent parses as 1),
/// * v2 — `register` gained `proto` + optional `db_digest`, `registered`
///   gained `proto`, `tasks`/`execute` gained optional self-describing
///   payloads (`descs`/`desc`) for serve-mode slaves,
/// * v3 — self-describing payloads carry a fused *query batch*
///   (`queries`: `[{query, top_n}, …]`) instead of a single query, and
///   `finished` gained the matching optional per-query result list
///   (`fused`: `[{hits, kernels?}, …]`, paired positionally with the
///   batch).
pub const PROTOCOL_VERSION: u32 = 3;

/// Socket read quantum: deadlines are checked at this granularity.
pub(crate) fn liveness_quantum(deadline: Duration) -> Duration {
    (deadline / 4).clamp(Duration::from_millis(10), Duration::from_millis(100))
}

/// A hit as it travels over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireHit {
    /// Index of the subject in the database.
    pub db_index: usize,
    /// Subject identifier.
    pub id: String,
    /// Local alignment score.
    pub score: i32,
    /// Subject length.
    pub subject_len: usize,
}

impl WireHit {
    pub(crate) fn from_hit(h: swhybrid_simd::search::Hit) -> WireHit {
        WireHit {
            db_index: h.db_index,
            id: h.id,
            score: h.score,
            subject_len: h.subject_len,
        }
    }

    pub(crate) fn into_hit(self) -> swhybrid_simd::search::Hit {
        swhybrid_simd::search::Hit {
            db_index: self.db_index,
            id: self.id,
            score: self.score,
            subject_len: self.subject_len,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("db_index", Json::Num(self.db_index as f64)),
            ("id", Json::str(self.id.clone())),
            ("score", Json::Num(self.score as f64)),
            ("subject_len", Json::Num(self.subject_len as f64)),
        ])
    }

    fn from_json(v: &Json) -> Result<WireHit, String> {
        Ok(WireHit {
            db_index: field_usize(v, "db_index")?,
            id: field_str(v, "id")?,
            score: field(v, "score")?
                .as_i64()
                .ok_or("field 'score' is not an integer")? as i32,
            subject_len: field_usize(v, "subject_len")?,
        })
    }
}

/// One query of a self-describing task as it travels over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryDesc {
    /// Encoded query residues.
    pub query: Vec<u8>,
    /// Hits retained for the shard, for this query.
    pub top_n: usize,
}

impl QueryDesc {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "query",
                Json::Arr(self.query.iter().map(|&c| Json::Num(c as f64)).collect()),
            ),
            ("top_n", Json::Num(self.top_n as f64)),
        ])
    }

    fn from_json(v: &Json) -> Result<QueryDesc, String> {
        let query = field(v, "query")?
            .as_array()
            .ok_or("field 'query' is not an array")?
            .iter()
            .map(|c| {
                c.as_u64()
                    .filter(|&n| n <= u8::MAX as u64)
                    .map(|n| n as u8)
                    .ok_or_else(|| "query residue is not a byte".to_string())
            })
            .collect::<Result<_, _>>()?;
        Ok(QueryDesc {
            query,
            top_n: field_usize(v, "top_n")?,
        })
    }
}

/// A self-describing task as it travels over the wire: everything a
/// serve-mode slave (which holds only the database) needs to run the scan.
/// Since v3 a task carries a *batch* of queries (length 1 for an unfused
/// task) that are all scored against the shard in one fused pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskDesc {
    /// The fused query batch, in demux order.
    pub queries: Vec<QueryDesc>,
    /// Database shard `[start, end)` in global subject indices.
    pub shard: (usize, usize),
}

impl TaskDesc {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "queries",
                Json::Arr(self.queries.iter().map(QueryDesc::to_json).collect()),
            ),
            (
                "shard",
                Json::Arr(vec![
                    Json::Num(self.shard.0 as f64),
                    Json::Num(self.shard.1 as f64),
                ]),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<TaskDesc, String> {
        let queries = field(v, "queries")?
            .as_array()
            .ok_or("field 'queries' is not an array")?
            .iter()
            .map(QueryDesc::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if queries.is_empty() {
            return Err("field 'queries' is empty".to_string());
        }
        let shard = field(v, "shard")?
            .as_array()
            .ok_or("field 'shard' is not an array")?;
        let [s, e] = shard else {
            return Err("field 'shard' is not a [start, end) pair".to_string());
        };
        let bound = |j: &Json| {
            j.as_u64()
                .map(|n| n as usize)
                .ok_or_else(|| "shard bound is not a non-negative integer".to_string())
        };
        Ok(TaskDesc {
            queries,
            shard: (bound(s)?, bound(e)?),
        })
    }
}

/// One query's slice of a fused `finished` message.
#[derive(Debug, Clone)]
pub struct FusedResultDesc {
    /// This query's ranked hits over the shard.
    pub hits: Vec<WireHit>,
    /// This query's kernel counters (per-query attribution); its cells are
    /// `kernels.cells_computed`, exactly like the top-level convention.
    pub kernels: Option<KernelStats>,
}

impl FusedResultDesc {
    fn to_json(&self) -> Json {
        let mut fields = vec![(
            "hits",
            Json::Arr(self.hits.iter().map(WireHit::to_json).collect()),
        )];
        if let Some(k) = &self.kernels {
            fields.push(("kernels", kernels_to_json(k)));
        }
        Json::obj(fields)
    }

    fn from_json(v: &Json) -> Result<FusedResultDesc, String> {
        Ok(FusedResultDesc {
            hits: field(v, "hits")?
                .as_array()
                .ok_or("field 'hits' is not an array")?
                .iter()
                .map(WireHit::from_json)
                .collect::<Result<_, _>>()?,
            kernels: v.get("kernels").map(kernels_from_json).transpose()?,
        })
    }
}

/// Messages from slave to master.
#[derive(Debug, Clone)]
pub enum SlaveMsg {
    /// First message on a connection.
    Register {
        /// Slave name.
        name: String,
        /// Theoretical GCUPS prior.
        gcups: f64,
        /// Protocol version the slave speaks (absent on the wire = v1).
        proto: u32,
        /// FNV-1a digest of the slave's local database, sent by serve-mode
        /// slaves so the master can verify both sides scan the same data.
        /// Batch slaves omit it.
        db_digest: Option<u64>,
    },
    /// Ask for work. The master holds the request open until it has an
    /// assignment (or the run is done) — there is no "ask again" reply.
    Request,
    /// Report that a task began executing.
    Started {
        /// The task.
        task: TaskId,
    },
    /// Report a completed task with its hits and observed speed.
    Finished {
        /// The task.
        task: TaskId,
        /// Observed GCUPS while executing it.
        gcups: f64,
        /// Top hits of the comparison (aggregate; empty for fused tasks,
        /// whose hits travel per query in `fused`).
        hits: Vec<WireHit>,
        /// Kernel-usage counters of the scan (merged over the batch for
        /// fused tasks). Optional on the wire.
        kernels: Option<KernelStats>,
        /// Per-query results of a fused task, paired positionally with the
        /// payload's query batch. Absent for batch-mode tasks.
        fused: Option<Vec<FusedResultDesc>>,
    },
    /// Periodic liveness signal; carries no state.
    Heartbeat,
}

/// Messages from master to slave.
#[derive(Debug, Clone)]
pub enum MasterMsg {
    /// Registration accepted.
    Registered {
        /// The PE id assigned to this slave.
        pe_id: PeId,
        /// Protocol version the master speaks (absent on the wire = v1).
        proto: u32,
    },
    /// A batch of fresh tasks.
    Tasks {
        /// Task ids, in execution order.
        tasks: Vec<TaskId>,
        /// Self-describing payloads, paired positionally with `tasks`.
        /// Present only for serve-mode slaves.
        descs: Option<Vec<TaskDesc>>,
    },
    /// Execute this task even though another PE also holds it.
    Execute {
        /// The task (a steal or a replica — the slave does not care).
        task: TaskId,
        /// Self-describing payload (serve-mode slaves only).
        desc: Option<TaskDesc>,
    },
    /// Everything is finished; disconnect.
    Done,
    /// The peer spoke out of turn.
    Error {
        /// What went wrong.
        message: String,
    },
}

pub(crate) fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

pub(crate) fn field_str(v: &Json, key: &str) -> Result<String, String> {
    field(v, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field '{key}' is not a string"))
}

pub(crate) fn field_f64(v: &Json, key: &str) -> Result<f64, String> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field '{key}' is not a number"))
}

pub(crate) fn field_usize(v: &Json, key: &str) -> Result<usize, String> {
    field(v, key)?
        .as_u64()
        .map(|n| n as usize)
        .ok_or_else(|| format!("field '{key}' is not a non-negative integer"))
}

/// Kernel counters as a JSON object (the optional `kernels` field of a
/// `finished` message, and the serve daemon's `stats` reply).
pub fn kernels_to_json(k: &KernelStats) -> Json {
    Json::obj([
        ("striped_i8", Json::Num(k.resolved_i8 as f64)),
        ("striped_i16", Json::Num(k.resolved_i16 as f64)),
        ("striped_scalar", Json::Num(k.resolved_scalar as f64)),
        ("interseq_i8", Json::Num(k.interseq_i8 as f64)),
        ("interseq_i16", Json::Num(k.interseq_i16 as f64)),
        ("interseq_scalar", Json::Num(k.interseq_scalar as f64)),
        ("chunks_striped", Json::Num(k.chunks_striped as f64)),
        ("chunks_interseq", Json::Num(k.chunks_interseq as f64)),
        ("cells_computed", Json::Num(k.cells_computed as f64)),
    ])
}

/// Parse kernel counters serialised by [`kernels_to_json`].
pub fn kernels_from_json(v: &Json) -> Result<KernelStats, String> {
    let get = |key: &str| -> Result<u64, String> {
        field(v, key)?
            .as_u64()
            .ok_or_else(|| format!("kernel counter '{key}' is not a non-negative integer"))
    };
    Ok(KernelStats {
        resolved_i8: get("striped_i8")?,
        resolved_i16: get("striped_i16")?,
        resolved_scalar: get("striped_scalar")?,
        interseq_i8: get("interseq_i8")?,
        interseq_i16: get("interseq_i16")?,
        interseq_scalar: get("interseq_scalar")?,
        chunks_striped: get("chunks_striped")?,
        chunks_interseq: get("chunks_interseq")?,
        cells_computed: get("cells_computed")?,
    })
}

/// One wire message: a single JSON line in each direction.
pub(crate) trait Wire: Sized {
    fn to_json(&self) -> Json;
    fn from_json(v: &Json) -> Result<Self, String>;
}

impl Wire for SlaveMsg {
    fn to_json(&self) -> Json {
        match self {
            SlaveMsg::Register {
                name,
                gcups,
                proto,
                db_digest,
            } => {
                let mut fields = vec![
                    ("type", Json::str("register")),
                    ("name", Json::str(name.clone())),
                    ("gcups", Json::Num(*gcups)),
                    ("proto", Json::Num(*proto as f64)),
                ];
                if let Some(d) = db_digest {
                    // A u64 does not survive a JSON number (53-bit f64
                    // mantissa): the digest travels as 16 hex digits.
                    fields.push(("db_digest", Json::str(format!("{d:016x}"))));
                }
                Json::obj(fields)
            }
            SlaveMsg::Request => Json::obj([("type", Json::str("request"))]),
            SlaveMsg::Started { task } => Json::obj([
                ("type", Json::str("started")),
                ("task", Json::Num(*task as f64)),
            ]),
            SlaveMsg::Finished {
                task,
                gcups,
                hits,
                kernels,
                fused,
            } => {
                let mut fields = vec![
                    ("type", Json::str("finished")),
                    ("task", Json::Num(*task as f64)),
                    ("gcups", Json::Num(*gcups)),
                    (
                        "hits",
                        Json::Arr(hits.iter().map(WireHit::to_json).collect()),
                    ),
                ];
                if let Some(k) = kernels {
                    fields.push(("kernels", kernels_to_json(k)));
                }
                if let Some(fused) = fused {
                    fields.push((
                        "fused",
                        Json::Arr(fused.iter().map(FusedResultDesc::to_json).collect()),
                    ));
                }
                Json::obj(fields)
            }
            SlaveMsg::Heartbeat => Json::obj([("type", Json::str("heartbeat"))]),
        }
    }

    fn from_json(v: &Json) -> Result<SlaveMsg, String> {
        match field_str(v, "type")?.as_str() {
            "register" => Ok(SlaveMsg::Register {
                name: field_str(v, "name")?,
                gcups: field_f64(v, "gcups")?,
                proto: match v.get("proto") {
                    None => 1, // pre-versioning peers are v1
                    Some(p) => p
                        .as_u64()
                        .map(|n| n as u32)
                        .ok_or("field 'proto' is not a non-negative integer")?,
                },
                db_digest: v
                    .get("db_digest")
                    .map(|d| {
                        d.as_str()
                            .and_then(|s| u64::from_str_radix(s, 16).ok())
                            .ok_or("field 'db_digest' is not a hex digest string")
                    })
                    .transpose()?,
            }),
            "request" => Ok(SlaveMsg::Request),
            "started" => Ok(SlaveMsg::Started {
                task: field_usize(v, "task")?,
            }),
            "finished" => Ok(SlaveMsg::Finished {
                task: field_usize(v, "task")?,
                gcups: field_f64(v, "gcups")?,
                hits: field(v, "hits")?
                    .as_array()
                    .ok_or("field 'hits' is not an array")?
                    .iter()
                    .map(WireHit::from_json)
                    .collect::<Result<_, _>>()?,
                kernels: v.get("kernels").map(kernels_from_json).transpose()?,
                fused: v
                    .get("fused")
                    .map(|f| {
                        f.as_array()
                            .ok_or("field 'fused' is not an array".to_string())?
                            .iter()
                            .map(FusedResultDesc::from_json)
                            .collect::<Result<_, _>>()
                    })
                    .transpose()?,
            }),
            "heartbeat" => Ok(SlaveMsg::Heartbeat),
            other => Err(format!("unknown slave message type '{other}'")),
        }
    }
}

impl Wire for MasterMsg {
    fn to_json(&self) -> Json {
        match self {
            MasterMsg::Registered { pe_id, proto } => Json::obj([
                ("type", Json::str("registered")),
                ("pe_id", Json::Num(*pe_id as f64)),
                ("proto", Json::Num(*proto as f64)),
            ]),
            MasterMsg::Tasks { tasks, descs } => {
                let mut fields = vec![
                    ("type", Json::str("tasks")),
                    (
                        "tasks",
                        Json::Arr(tasks.iter().map(|&t| Json::Num(t as f64)).collect()),
                    ),
                ];
                if let Some(descs) = descs {
                    fields.push((
                        "descs",
                        Json::Arr(descs.iter().map(TaskDesc::to_json).collect()),
                    ));
                }
                Json::obj(fields)
            }
            MasterMsg::Execute { task, desc } => {
                let mut fields = vec![
                    ("type", Json::str("execute")),
                    ("task", Json::Num(*task as f64)),
                ];
                if let Some(desc) = desc {
                    fields.push(("desc", desc.to_json()));
                }
                Json::obj(fields)
            }
            MasterMsg::Done => Json::obj([("type", Json::str("done"))]),
            MasterMsg::Error { message } => Json::obj([
                ("type", Json::str("error")),
                ("message", Json::str(message.clone())),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<MasterMsg, String> {
        match field_str(v, "type")?.as_str() {
            "registered" => Ok(MasterMsg::Registered {
                pe_id: field_usize(v, "pe_id")?,
                proto: match v.get("proto") {
                    None => 1,
                    Some(p) => p
                        .as_u64()
                        .map(|n| n as u32)
                        .ok_or("field 'proto' is not a non-negative integer")?,
                },
            }),
            "tasks" => Ok(MasterMsg::Tasks {
                tasks: field(v, "tasks")?
                    .as_array()
                    .ok_or("field 'tasks' is not an array")?
                    .iter()
                    .map(|t| {
                        t.as_u64()
                            .map(|n| n as usize)
                            .ok_or_else(|| "task id is not a non-negative integer".to_string())
                    })
                    .collect::<Result<_, _>>()?,
                descs: v
                    .get("descs")
                    .map(|d| {
                        d.as_array()
                            .ok_or("field 'descs' is not an array".to_string())?
                            .iter()
                            .map(TaskDesc::from_json)
                            .collect::<Result<_, _>>()
                    })
                    .transpose()?,
            }),
            "execute" => Ok(MasterMsg::Execute {
                task: field_usize(v, "task")?,
                desc: v.get("desc").map(TaskDesc::from_json).transpose()?,
            }),
            "done" => Ok(MasterMsg::Done),
            "error" => Ok(MasterMsg::Error {
                message: field_str(v, "message")?,
            }),
            other => Err(format!("unknown master message type '{other}'")),
        }
    }
}

pub(crate) fn invalid(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

pub(crate) fn send<W: Write, M: Wire>(writer: &mut W, msg: &M) -> io::Result<()> {
    let mut line = msg.to_json().to_string();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

pub(crate) fn decode<M: Wire>(line: &str) -> io::Result<M> {
    let v = Json::parse(line.trim()).map_err(|e| invalid(e.to_string()))?;
    M::from_json(&v).map_err(invalid)
}

/// Blocking receive of one message (slave side and tests; the master reads
/// through [`LineReader`] so it can watch deadlines).
pub(crate) fn recv<R: BufRead, M: Wire>(reader: &mut R) -> io::Result<Option<M>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    decode(&line).map(Some)
}

/// What one attempt to read a line produced.
pub(crate) enum ReadOutcome {
    /// A complete line (newline stripped).
    Line(String),
    /// Clean end of stream.
    Eof,
    /// Nothing new within the read quantum; check deadlines and try again.
    Timeout,
}

/// Line reader over a raw [`TcpStream`] with a read timeout.
///
/// `BufReader::read_line` cannot be used with socket timeouts: a timeout
/// mid-line loses the bytes read so far. This reader keeps partial input
/// in a persistent buffer across timeouts.
pub(crate) struct LineReader {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl LineReader {
    pub(crate) fn new(stream: TcpStream, quantum: Duration) -> io::Result<LineReader> {
        stream.set_read_timeout(Some(quantum))?;
        Ok(LineReader {
            stream,
            pending: Vec::new(),
        })
    }

    pub(crate) fn read_line(&mut self) -> io::Result<ReadOutcome> {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let rest = self.pending.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.pending, rest);
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return match String::from_utf8(line) {
                    Ok(s) => Ok(ReadOutcome::Line(s)),
                    Err(_) => Err(invalid("non-UTF-8 line on the wire")),
                };
            }
            let mut buf = [0u8; 4096];
            match self.stream.read(&mut buf) {
                Ok(0) => return Ok(ReadOutcome::Eof),
                Ok(n) => self.pending.extend_from_slice(&buf[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(ReadOutcome::Timeout)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}
