//! The slave process: connect, register, execute tasks until the master
//! says done, reconnecting with exponential backoff on connection loss.
//!
//! Two execution modes share one session loop:
//!
//! * **batch** ([`run_slave`]/[`run_slave_with`]) — both sides already
//!   hold the query and database files (the paper's deployment); tasks
//!   travel as bare ids.
//! * **serve** ([`run_serve_slave`]) — the slave holds only the database
//!   and proves it via an FNV-1a digest at registration; tasks arrive
//!   self-describing (query residues + shard + top-N), so the slave can
//!   execute queries it has never seen, exactly like a local daemon
//!   worker thread.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use super::wire::{
    invalid, recv, send, FusedResultDesc, MasterMsg, SlaveMsg, TaskDesc, WireHit, PROTOCOL_VERSION,
};
use super::NetConfig;
use crate::shared::WaitHub;
use crate::stats::observed_gcups;
use crate::task::TaskId;
use swhybrid_align::scoring::Scoring;
use swhybrid_device::exec::ComputeBackend;
use swhybrid_seq::digest::db_digest;
use swhybrid_seq::sequence::EncodedSequence;
use swhybrid_seq::DbArena;
use swhybrid_simd::engine::{EnginePreference, KernelStats, PreparedQuery};
use swhybrid_simd::exec::{chunk_size, materialize_hits, ShardExecutor, ShardPlan};
use swhybrid_simd::search::{KernelChoice, SearchConfig};

/// How a slave session over one connection ended.
enum SessionEnd {
    /// The master said done; `usize` tasks were executed this session.
    Done(usize),
    /// The connection was lost after `usize` executed tasks; reconnect.
    Lost(usize),
}

fn is_retryable(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::TimedOut
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::NotConnected
    )
}

/// How a slave turns one assignment into a `finished` message. The session
/// loop (handshake, heartbeats, reconnect) is mode-agnostic; this is the
/// mode.
trait TaskExecutor {
    /// Execute `task`. `desc` is its self-describing payload when the
    /// master ships one (serve mode).
    fn execute(&mut self, task: TaskId, desc: Option<&TaskDesc>) -> io::Result<SlaveMsg>;
}

/// Batch mode: the task id indexes locally held query files.
struct BatchExecutor<'a> {
    backend: &'a dyn ComputeBackend,
    queries: &'a [EncodedSequence],
    subjects: &'a [EncodedSequence],
    scoring: &'a Scoring,
    top_n: usize,
}

impl TaskExecutor for BatchExecutor<'_> {
    fn execute(&mut self, task: TaskId, _desc: Option<&TaskDesc>) -> io::Result<SlaveMsg> {
        let query = self
            .queries
            .get(task)
            .ok_or_else(|| invalid(format!("master referenced unknown task {task}")))?;
        let t0 = Instant::now();
        let result = self
            .backend
            .compare(query, self.subjects, self.scoring, self.top_n);
        let gcups = observed_gcups(result.cells, t0.elapsed().as_secs_f64());
        Ok(SlaveMsg::Finished {
            task,
            gcups,
            hits: result.hits.into_iter().map(WireHit::from_hit).collect(),
            kernels: Some(result.stats),
            fused: None,
        })
    }
}

/// Serve mode: tasks are self-describing database shards. Prepared query
/// profiles are memoised across tasks *and* reconnects — the dominant
/// per-query setup cost is paid once per distinct query, like a local
/// daemon worker.
struct ServeShardExecutor<'a> {
    arena: DbArena,
    subjects: &'a [EncodedSequence],
    scoring: &'a Scoring,
    kernel: KernelChoice,
    prepared: HashMap<Vec<u8>, Arc<PreparedQuery>>,
    /// The shared shard-execution layer, reused across shards (and
    /// reconnects) for this slave's lifetime — it owns the kernel scratch,
    /// so the steady-state shard scan allocates nothing.
    executor: ShardExecutor,
}

impl TaskExecutor for ServeShardExecutor<'_> {
    fn execute(&mut self, task: TaskId, desc: Option<&TaskDesc>) -> io::Result<SlaveMsg> {
        let desc = desc.ok_or_else(|| {
            invalid(format!(
                "master sent serve-mode task {task} without a payload"
            ))
        })?;
        let (s, e) = desc.shard;
        if s > e || e > self.subjects.len() {
            return Err(invalid(format!(
                "task {task} shard {s}..{e} exceeds the database ({} subjects)",
                self.subjects.len()
            )));
        }
        // One pass over the shard scores the whole fused batch (K = 1 for
        // an unfused daemon). Profiles are memoised per distinct query.
        let batch: Vec<(Arc<PreparedQuery>, usize)> = desc
            .queries
            .iter()
            .map(|q| {
                let prepared = self.prepared.entry(q.query.clone()).or_insert_with(|| {
                    Arc::new(PreparedQuery::new(
                        &q.query,
                        self.scoring,
                        EnginePreference::Auto,
                    ))
                });
                (Arc::clone(prepared), q.top_n)
            })
            .collect();
        let plan = ShardPlan {
            range: s..e,
            // The centralized chunk-size decision; the floor keeps Auto
            // dispatch able to fill the inter-sequence lanes.
            chunk_size: chunk_size(None).map_err(invalid)?,
            kernel: self.kernel,
            prefetch: SearchConfig::default().prefetch,
        };
        let t0 = Instant::now();
        let outputs = self.executor.execute(&batch, &self.arena, &plan);
        let elapsed = t0.elapsed().as_secs_f64();
        let total_cells: u64 = outputs.iter().map(|o| o.cells).sum();
        let gcups = observed_gcups(total_cells, elapsed);
        let mut merged = KernelStats::default();
        // Hits carry global database indices, so the master's cross-shard
        // merge tie-breaks identically to a whole-db scan.
        let fused: Vec<FusedResultDesc> = outputs
            .into_iter()
            .map(|out| {
                merged.merge(&out.stats);
                FusedResultDesc {
                    hits: materialize_hits(&out.scored, |i| self.subjects[i].id.clone())
                        .into_iter()
                        .map(WireHit::from_hit)
                        .collect(),
                    kernels: Some(out.stats),
                }
            })
            .collect();
        Ok(SlaveMsg::Finished {
            task,
            gcups,
            hits: Vec::new(),
            kernels: Some(merged),
            fused: Some(fused),
        })
    }
}

/// Run a slave: connect, register, execute tasks until the master says
/// done, with default [`NetConfig`] timings.
///
/// `queries` and `subjects` are the locally available sequence data (the
/// paper's model: files are on every host).
#[allow(clippy::too_many_arguments)] // a slave's full execution context, deliberately flat
pub fn run_slave(
    addr: impl ToSocketAddrs,
    name: &str,
    static_gcups: f64,
    backend: &dyn ComputeBackend,
    queries: &[EncodedSequence],
    subjects: &[EncodedSequence],
    scoring: &Scoring,
    top_n: usize,
) -> io::Result<usize> {
    run_slave_with(
        addr,
        name,
        static_gcups,
        backend,
        queries,
        subjects,
        scoring,
        top_n,
        &NetConfig::default(),
    )
}

/// [`run_slave`] with explicit [`NetConfig`] timings. Reconnects with
/// exponential backoff when the connection to the master is lost; returns
/// the total number of tasks executed across all sessions.
#[allow(clippy::too_many_arguments)]
pub fn run_slave_with(
    addr: impl ToSocketAddrs,
    name: &str,
    static_gcups: f64,
    backend: &dyn ComputeBackend,
    queries: &[EncodedSequence],
    subjects: &[EncodedSequence],
    scoring: &Scoring,
    top_n: usize,
    net: &NetConfig,
) -> io::Result<usize> {
    let mut executor = BatchExecutor {
        backend,
        queries,
        subjects,
        scoring,
        top_n,
    };
    run_sessions(&addr, name, static_gcups, None, &mut executor, net)
}

/// Run a serve-mode slave against a daemon listening with
/// `serve --listen-slaves`: register with the database digest, execute
/// self-describing shard tasks until the daemon says done. Returns the
/// total number of tasks executed across all sessions.
pub fn run_serve_slave(
    addr: impl ToSocketAddrs,
    name: &str,
    static_gcups: f64,
    subjects: &[EncodedSequence],
    scoring: &Scoring,
    kernel: KernelChoice,
    net: &NetConfig,
) -> io::Result<usize> {
    let digest = db_digest(subjects);
    let mut executor = ServeShardExecutor {
        arena: DbArena::from_encoded(subjects),
        subjects,
        scoring,
        kernel,
        prepared: HashMap::new(),
        executor: ShardExecutor::new(),
    };
    run_sessions(&addr, name, static_gcups, Some(digest), &mut executor, net)
}

/// The mode-agnostic reconnect loop around [`slave_session`].
fn run_sessions(
    addr: &impl ToSocketAddrs,
    name: &str,
    static_gcups: f64,
    db_digest: Option<u64>,
    executor: &mut dyn TaskExecutor,
    net: &NetConfig,
) -> io::Result<usize> {
    net.validate()?;
    let mut total = 0usize;
    let mut retries_left = net.reconnect_max_retries;
    let mut backoff = net.reconnect_backoff_initial;
    loop {
        match slave_session(addr, name, static_gcups, db_digest, executor, net) {
            Ok(SessionEnd::Done(n)) => return Ok(total + n),
            Ok(SessionEnd::Lost(n)) => {
                total += n;
                if n > 0 {
                    // The session made progress: fresh failure budget.
                    retries_left = net.reconnect_max_retries;
                    backoff = net.reconnect_backoff_initial;
                }
                if retries_left == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "connection to master lost and reconnect budget exhausted",
                    ));
                }
                retries_left -= 1;
            }
            Err(e) if is_retryable(e.kind()) => {
                if retries_left == 0 {
                    return Err(e);
                }
                retries_left -= 1;
            }
            Err(e) => return Err(e),
        }
        // Reconnect backoff — not a work-request poll (work waiting is
        // long-polled by the master while connected).
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(net.reconnect_backoff_max);
    }
}

/// Send a heartbeat line every `interval` until told to stop. Runs in its
/// own thread so heartbeats flow even while the work loop is deep inside a
/// kernel; parks on a [`WaitHub`] so stopping is immediate.
fn spawn_heartbeat(
    writer: Arc<Mutex<BufWriter<TcpStream>>>,
    stop: Arc<WaitHub<bool>>,
    interval: Duration,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut stopped = stop.lock();
        loop {
            stopped = stop.wait_timeout(stopped, interval);
            if *stopped {
                return;
            }
            drop(stopped);
            let failed = send(
                &mut *writer.lock().expect("slave writer poisoned"),
                &SlaveMsg::Heartbeat,
            )
            .is_err();
            if failed {
                // The socket is gone; the work loop will notice on its own.
                return;
            }
            stopped = stop.lock();
        }
    })
}

fn slave_session(
    addr: &impl ToSocketAddrs,
    name: &str,
    static_gcups: f64,
    db_digest: Option<u64>,
    executor: &mut dyn TaskExecutor,
    net: &NetConfig,
) -> io::Result<SessionEnd> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer = Arc::new(Mutex::new(BufWriter::new(stream)));

    send(
        &mut *writer.lock().expect("slave writer poisoned"),
        &SlaveMsg::Register {
            name: name.to_string(),
            gcups: static_gcups,
            proto: PROTOCOL_VERSION,
            db_digest,
        },
    )?;
    match recv::<_, MasterMsg>(&mut reader)? {
        Some(MasterMsg::Registered { proto, .. }) => {
            if proto != PROTOCOL_VERSION {
                return Err(invalid(format!(
                    "protocol version mismatch: slave speaks v{PROTOCOL_VERSION}, \
                     master speaks v{proto}"
                )));
            }
        }
        Some(MasterMsg::Error { message }) => return Err(invalid(message)),
        Some(other) => return Err(invalid(format!("registration failed: {other:?}"))),
        None => return Ok(SessionEnd::Lost(0)),
    }

    let stop = Arc::new(WaitHub::new(false));
    let heartbeat = spawn_heartbeat(
        Arc::clone(&writer),
        Arc::clone(&stop),
        net.heartbeat_interval,
    );
    let outcome = slave_work_loop(&mut reader, &writer, executor);
    *stop.lock() = true;
    stop.notify_all();
    heartbeat.join().expect("heartbeat thread panicked");
    outcome
}

fn slave_work_loop(
    reader: &mut BufReader<TcpStream>,
    writer: &Mutex<BufWriter<TcpStream>>,
    executor: &mut dyn TaskExecutor,
) -> io::Result<SessionEnd> {
    let send_msg = |msg: &SlaveMsg| send(&mut *writer.lock().expect("slave writer poisoned"), msg);
    let mut executed = 0usize;
    loop {
        if send_msg(&SlaveMsg::Request).is_err() {
            return Ok(SessionEnd::Lost(executed));
        }
        // The master long-polls: this blocks (heartbeats still flowing)
        // until an assignment or completion arrives.
        let batch: Vec<(TaskId, Option<TaskDesc>)> = match recv::<_, MasterMsg>(reader) {
            Ok(Some(MasterMsg::Tasks { tasks, descs })) => match descs {
                Some(descs) if descs.len() != tasks.len() => {
                    return Err(invalid(format!(
                        "task batch carries {} payloads for {} tasks",
                        descs.len(),
                        tasks.len()
                    )))
                }
                Some(descs) => tasks.into_iter().zip(descs.into_iter().map(Some)).collect(),
                None => tasks.into_iter().map(|t| (t, None)).collect(),
            },
            Ok(Some(MasterMsg::Execute { task, desc })) => vec![(task, desc)],
            Ok(Some(MasterMsg::Done)) => return Ok(SessionEnd::Done(executed)),
            Ok(Some(MasterMsg::Error { message })) => return Err(invalid(message)),
            Ok(Some(MasterMsg::Registered { .. })) => {
                return Err(invalid("unexpected registered message mid-session"))
            }
            Ok(None) => return Ok(SessionEnd::Lost(executed)),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => return Err(e),
            Err(_) => return Ok(SessionEnd::Lost(executed)),
        };
        for (task, desc) in batch {
            if send_msg(&SlaveMsg::Started { task }).is_err() {
                return Ok(SessionEnd::Lost(executed));
            }
            let finished = executor.execute(task, desc.as_ref())?;
            if send_msg(&finished).is_err() {
                return Ok(SessionEnd::Lost(executed));
            }
            executed += 1;
        }
    }
}
