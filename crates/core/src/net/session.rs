//! Master-side handling of one slave connection, as an endpoint on the
//! shared pool-drive loop.
//!
//! [`serve_connection`] performs the versioned handshake (protocol and —
//! for serve-mode slaves — database digest), admits the slave into the
//! [`PePool`], then splits the socket: a reader thread turns incoming
//! lines into [`PeEvent`]s and watches the liveness deadline, while the
//! calling thread runs [`drive`] with a [`RemoteEndpoint`] that writes
//! scheduling decisions back out. The drive loop is *the same function*
//! the threaded runtime runs — the transport is the only difference.

use std::io::{self, BufWriter};
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::Instant;

use super::wire::{
    decode, invalid, liveness_quantum, send, LineReader, MasterMsg, QueryDesc, ReadOutcome,
    SlaveMsg, TaskDesc, WireHit, PROTOCOL_VERSION,
};
use super::NetConfig;
use crate::pool::{
    drive, FusedQueryResult, PeCommand, PeEndpoint, PeEvent, PePool, PoolOwner, TaskResult,
};
use crate::task::PeId;

/// Serve one slave connection against `pool` until the slave retires,
/// fails, or the pool aborts. Blocks for the lifetime of the connection;
/// callers spawn it per accepted socket.
pub fn serve_connection<S: PoolOwner>(stream: TcpStream, pool: &PePool<S>, net: &NetConfig) {
    stream.set_nodelay(true).ok();
    let quantum = liveness_quantum(net.slave_deadline);
    let Ok(writer_stream) = stream.try_clone() else {
        return;
    };
    let Ok(mut reader) = LineReader::new(stream, quantum) else {
        return;
    };
    let mut writer = BufWriter::new(writer_stream);

    // Handshake: the first line must arrive within the deadline and must
    // be a registration. Anything else frees the socket WITHOUT consuming
    // any server state — a connection that fails its handshake never
    // counts against the registration barrier.
    let opened = Instant::now();
    let first = loop {
        match reader.read_line() {
            Ok(ReadOutcome::Line(l)) => break l,
            Ok(ReadOutcome::Eof) | Err(_) => return,
            Ok(ReadOutcome::Timeout) => {
                if pool.lock().abort().is_some() || opened.elapsed() > net.slave_deadline {
                    return;
                }
            }
        }
    };
    let refuse = |writer: &mut BufWriter<TcpStream>, message: String| {
        let _ = send(writer, &MasterMsg::Error { message });
    };
    let (name, gcups, slave_digest) = match decode::<SlaveMsg>(&first) {
        Ok(SlaveMsg::Register {
            name,
            gcups,
            proto,
            db_digest,
        }) => {
            if proto != PROTOCOL_VERSION {
                refuse(
                    &mut writer,
                    format!(
                        "protocol version mismatch: master speaks v{PROTOCOL_VERSION}, \
                         slave speaks v{proto}"
                    ),
                );
                return;
            }
            (name, gcups, db_digest)
        }
        _ => {
            refuse(&mut writer, "expected a register message first".to_string());
            return;
        }
    };
    // Digest discipline: a serve-mode master ships self-describing tasks
    // and requires proof the slave scans the same database; a batch master
    // schedules by task id and has nothing to check a digest against.
    // Snapshot the digest first: a `match` on `pool.lock().…` would keep
    // the guard alive across every arm, including the refusal paths that
    // block on socket writes.
    let master_digest = pool.lock().owner.db_digest();
    let wants_descs = match (master_digest, slave_digest) {
        (None, None) => false,
        (None, Some(_)) => {
            refuse(
                &mut writer,
                "this master schedules tasks by id; register without a database digest".to_string(),
            );
            return;
        }
        (Some(_), None) => {
            refuse(
                &mut writer,
                "this master ships self-describing tasks; register with a database digest \
                 (serve-mode slave)"
                    .to_string(),
            );
            return;
        }
        (Some(want), Some(got)) => {
            if want != got {
                refuse(
                    &mut writer,
                    format!(
                        "database mismatch: master digest {want:016x}, slave digest {got:016x}"
                    ),
                );
                return;
            }
            true
        }
    };

    let pe = pool.admit(&name, gcups, true);
    if send(
        &mut writer,
        &MasterMsg::Registered {
            pe_id: pe,
            proto: PROTOCOL_VERSION,
        },
    )
    .is_err()
    {
        pool.disconnect(pe, false);
        return;
    }

    let (tx, rx) = mpsc::channel();
    std::thread::scope(|scope| {
        // `tx` MOVES into the reader thread: when the reader exits, the
        // channel hangs up, so a drive thread blocked in `rx.recv()` is
        // guaranteed to wake (as `Gone`) rather than deadlock the scope.
        let reader = &mut reader;
        scope.spawn(move || reader_loop(reader, pool, pe, tx, net));
        let mut endpoint = RemoteEndpoint {
            rx,
            writer,
            wants_descs,
        };
        drive(pool, pe, &mut endpoint);
    });
}

/// Reader half of one slave connection: turns wire messages into
/// [`PeEvent`]s and enforces the liveness deadline. On any terminal
/// condition it tears the member down *directly* (so a drive thread parked
/// in a long-poll wakes and unwinds) and returns, which drops the channel
/// sender — a drive thread blocked on the channel sees the hang-up too.
fn reader_loop<S: PoolOwner>(
    reader: &mut LineReader,
    pool: &PePool<S>,
    pe: PeId,
    tx: mpsc::Sender<PeEvent>,
    net: &NetConfig,
) {
    let mut last_seen = Instant::now();
    loop {
        // Checked every iteration, not only on read timeouts: a slave that
        // heartbeats faster than the liveness quantum would otherwise keep
        // every read returning a line and starve the exit check — after a
        // `disconnect` elsewhere (shutdown, database swap) the reader must
        // still notice and unwind so the connection scope can close.
        {
            let g = pool.lock();
            if g.abort().is_some() || !g.is_open(pe) {
                drop(g);
                pool.disconnect(pe, false);
                return;
            }
        }
        match reader.read_line() {
            Ok(ReadOutcome::Line(line)) => {
                last_seen = Instant::now();
                let Ok(msg) = decode::<SlaveMsg>(&line) else {
                    pool.disconnect(pe, false);
                    return;
                };
                let event = match msg {
                    SlaveMsg::Heartbeat => continue,
                    SlaveMsg::Request => PeEvent::NeedWork,
                    SlaveMsg::Started { task } => PeEvent::Started(task),
                    SlaveMsg::Finished {
                        task,
                        gcups,
                        hits,
                        kernels,
                        fused,
                    } => PeEvent::Finished {
                        task,
                        result: TaskResult {
                            gcups: Some(gcups),
                            hits: hits.into_iter().map(WireHit::into_hit).collect(),
                            cells: kernels.map(|k| k.cells_computed).unwrap_or(0),
                            kernels,
                            fused: fused.map(|per_query| {
                                per_query
                                    .into_iter()
                                    .map(|f| FusedQueryResult {
                                        cells: f.kernels.map(|k| k.cells_computed).unwrap_or(0),
                                        hits: f.hits.into_iter().map(WireHit::into_hit).collect(),
                                        kernels: f.kernels,
                                    })
                                    .collect()
                            }),
                        },
                    },
                    SlaveMsg::Register { .. } => {
                        // A registration mid-session is a protocol breach.
                        pool.disconnect(pe, false);
                        return;
                    }
                };
                if tx.send(event).is_err() {
                    // The drive loop already unwound.
                    return;
                }
            }
            Ok(ReadOutcome::Eof) | Err(_) => {
                pool.disconnect(pe, false);
                return;
            }
            Ok(ReadOutcome::Timeout) => {
                if last_seen.elapsed() > net.slave_deadline {
                    // Nothing — not even a heartbeat — within the deadline:
                    // declare the slave dead and requeue its tasks.
                    pool.disconnect(pe, true);
                    return;
                }
            }
        }
    }
}

/// The TCP transport of one slave, as seen by the drive loop.
struct RemoteEndpoint {
    rx: mpsc::Receiver<PeEvent>,
    writer: BufWriter<TcpStream>,
    /// The slave registered serve-mode: every assignment must carry its
    /// self-describing payload.
    wants_descs: bool,
}

impl RemoteEndpoint {
    /// Fetch the wire payloads for `tasks` from the owner. `Err` when any
    /// task is no longer shippable (e.g. its database generation was
    /// swapped out) — the drive loop then tears the session down and the
    /// tasks requeue to PEs that can still run them.
    fn describe<S: PoolOwner>(
        &self,
        pool: &PePool<S>,
        tasks: &[crate::task::TaskId],
    ) -> io::Result<Vec<TaskDesc>> {
        let g = pool.lock();
        tasks
            .iter()
            .map(|&t| {
                g.owner
                    .task_payload(&g.master, t)
                    .map(|p| TaskDesc {
                        queries: p
                            .queries
                            .into_iter()
                            .map(|q| QueryDesc {
                                query: q.query,
                                top_n: q.top_n,
                            })
                            .collect(),
                        shard: p.shard,
                    })
                    .ok_or_else(|| invalid(format!("task {t} has no shippable payload")))
            })
            .collect()
    }
}

impl<S: PoolOwner> PeEndpoint<S> for RemoteEndpoint {
    fn next_event(&mut self, _pool: &PePool<S>, _pe: PeId) -> PeEvent {
        match self.rx.recv() {
            Ok(event) => event,
            // Reader hung up; it has already torn the member down (the
            // disconnect is idempotent).
            Err(_) => PeEvent::Gone {
                suspected_dead: false,
            },
        }
    }

    fn deliver(&mut self, pool: &PePool<S>, _pe: PeId, cmd: &PeCommand) -> io::Result<()> {
        let msg = match cmd {
            PeCommand::Tasks(tasks) => MasterMsg::Tasks {
                tasks: tasks.clone(),
                descs: if self.wants_descs {
                    Some(self.describe(pool, tasks)?)
                } else {
                    None
                },
            },
            PeCommand::Execute(task) => MasterMsg::Execute {
                task: *task,
                desc: if self.wants_descs {
                    Some(self.describe(pool, &[*task])?.remove(0))
                } else {
                    None
                },
            },
            PeCommand::Done => MasterMsg::Done,
        };
        send(&mut self.writer, &msg)
    }
}
