//! Distributed master/slave runtime over TCP.
//!
//! The paper's platform is two hosts on Gigabit Ethernet: the master and
//! the slaves are separate processes and "the slaves can register
//! themselves in the master" (Fig. 4). This module is that deployment
//! shape: a [`MasterServer`] listens on a socket, slaves connect with
//! [`run_slave`], register, request work, and stream results back. The
//! same [`Master`] state machine as the simulator and the in-process
//! runtime makes the decisions.
//!
//! ## Wire protocol
//!
//! Newline-delimited JSON, one message per line (chosen over a binary
//! format so a session is inspectable with `nc`; at one message per
//! multi-second task, encoding cost is irrelevant — the paper itself notes
//! communication is negligible at this granularity).
//!
//! Both sides are expected to already have the sequence files (exactly as
//! in the paper, where the flat database files live on each host); only
//! task ids, speeds, and hit lists travel over the wire.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Instant;

use crate::master::{Assignment, Master, MasterConfig};
use crate::task::{PeId, TaskId, TaskState};
use swhybrid_align::scoring::Scoring;
use swhybrid_device::exec::{merge_hits, ComputeBackend, QueryHit};
use swhybrid_device::task::TaskSpec;
use swhybrid_seq::sequence::EncodedSequence;

/// A hit as it travels over the wire.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WireHit {
    /// Index of the subject in the database.
    pub db_index: usize,
    /// Subject identifier.
    pub id: String,
    /// Local alignment score.
    pub score: i32,
    /// Subject length.
    pub subject_len: usize,
}

/// Messages from slave to master.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum SlaveMsg {
    /// First message on a connection.
    Register {
        /// Slave name.
        name: String,
        /// Theoretical GCUPS prior.
        gcups: f64,
    },
    /// Ask for work.
    Request,
    /// Report that a task began executing.
    Started {
        /// The task.
        task: TaskId,
    },
    /// Report a completed task with its hits and observed speed.
    Finished {
        /// The task.
        task: TaskId,
        /// Observed GCUPS while executing it.
        gcups: f64,
        /// Top hits of the comparison.
        hits: Vec<WireHit>,
    },
}

/// Messages from master to slave.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum MasterMsg {
    /// Registration accepted.
    Registered {
        /// The PE id assigned to this slave.
        pe_id: PeId,
    },
    /// A batch of fresh tasks.
    Tasks {
        /// Task ids, in execution order.
        tasks: Vec<TaskId>,
    },
    /// Execute this task even though another PE also holds it.
    Execute {
        /// The task (a steal or a replica — the slave does not care).
        task: TaskId,
    },
    /// Nothing right now; ask again shortly.
    Wait,
    /// Everything is finished; disconnect.
    Done,
    /// The peer spoke out of turn.
    Error {
        /// What went wrong.
        message: String,
    },
}

fn send<W: Write, M: serde::Serialize>(writer: &mut W, msg: &M) -> std::io::Result<()> {
    let mut line = serde_json::to_string(msg).expect("message serialises");
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

fn recv<R: BufRead, M: serde::de::DeserializeOwned>(reader: &mut R) -> std::io::Result<Option<M>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    serde_json::from_str(&line)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Outcome of a distributed run (master side).
pub struct DistributedOutcome {
    /// Wall-clock seconds from first registration to last completion.
    pub elapsed_seconds: f64,
    /// Useful DP cells.
    pub total_cells: u64,
    /// Useful GCUPS.
    pub gcups: f64,
    /// Globally merged hits.
    pub hits: Vec<QueryHit>,
    /// For each task, the name of the slave whose result was used.
    pub completed_by: Vec<String>,
}

/// The master process: owns the task pool, serves slave connections.
pub struct MasterServer {
    listener: TcpListener,
    config: MasterConfig,
    expected_slaves: usize,
}

impl MasterServer {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: MasterConfig,
        expected_slaves: usize,
    ) -> std::io::Result<MasterServer> {
        assert!(expected_slaves >= 1, "need at least one slave");
        Ok(MasterServer {
            listener: TcpListener::bind(addr)?,
            config,
            expected_slaves,
        })
    }

    /// The bound address (give this to the slaves).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until every task is finished and every slave has disconnected.
    ///
    /// Registration is a barrier: work is only handed out once
    /// `expected_slaves` have registered (required for static policies and
    /// matching the paper's "waits for the slaves to register").
    pub fn serve(self, specs: Vec<TaskSpec>) -> std::io::Result<DistributedOutcome> {
        let n_tasks = specs.len();
        let total_cells: u64 = specs.iter().map(|s| s.cells()).sum();
        let master = Mutex::new(Master::new(specs, self.config));
        let results: Mutex<Vec<Option<Vec<WireHit>>>> = Mutex::new(vec![None; n_tasks]);
        let completed_by: Mutex<Vec<String>> = Mutex::new(vec![String::new(); n_tasks]);
        let registered = std::sync::atomic::AtomicUsize::new(0);
        let start = Instant::now();

        crossbeam::thread::scope(|scope| -> std::io::Result<()> {
            let mut handles = Vec::new();
            for _ in 0..self.expected_slaves {
                let (stream, _peer) = self.listener.accept()?;
                let master = &master;
                let results = &results;
                let completed_by = &completed_by;
                let registered = &registered;
                let expected = self.expected_slaves;
                handles.push(scope.spawn(move |_| {
                    serve_slave(
                        stream, master, results, completed_by, registered, expected, start,
                    )
                }));
            }
            for h in handles {
                h.join().expect("slave handler panicked")?;
            }
            Ok(())
        })
        .expect("server scope failed")?;

        let elapsed_seconds = start.elapsed().as_secs_f64();
        let per_task = results.into_inner().expect("results poisoned");
        let hits = merge_hits(per_task.into_iter().enumerate().filter_map(|(task, hits)| {
            hits.map(|hits| {
                (
                    task,
                    hits.into_iter()
                        .map(|h| swhybrid_simd::search::Hit {
                            db_index: h.db_index,
                            id: h.id,
                            score: h.score,
                            subject_len: h.subject_len,
                        })
                        .collect(),
                )
            })
        }));
        Ok(DistributedOutcome {
            elapsed_seconds,
            total_cells,
            gcups: if elapsed_seconds > 0.0 {
                total_cells as f64 / elapsed_seconds / 1e9
            } else {
                0.0
            },
            hits,
            completed_by: completed_by.into_inner().expect("names poisoned"),
        })
    }
}

fn serve_slave(
    stream: TcpStream,
    master: &Mutex<Master>,
    results: &Mutex<Vec<Option<Vec<WireHit>>>>,
    completed_by: &Mutex<Vec<String>>,
    registered: &std::sync::atomic::AtomicUsize,
    expected: usize,
    start: Instant,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    // Registration handshake.
    let (pe_id, name) = match recv::<_, SlaveMsg>(&mut reader)? {
        Some(SlaveMsg::Register { name, gcups }) => {
            let id = master
                .lock()
                .expect("master poisoned")
                .register(name.clone(), gcups.max(f64::MIN_POSITIVE));
            registered.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            send(&mut writer, &MasterMsg::Registered { pe_id: id })?;
            (id, name)
        }
        other => {
            send(
                &mut writer,
                &MasterMsg::Error {
                    message: format!("expected register, got {other:?}"),
                },
            )?;
            return Ok(());
        }
    };

    loop {
        let Some(msg) = recv::<_, SlaveMsg>(&mut reader)? else {
            // Slave hung up; return anything it still held to the pool.
            let mut m = master.lock().expect("master poisoned");
            let held: Vec<TaskId> = m
                .pool()
                .executing_ids()
                .filter(|&t| m.pool().get(t).executors.contains(&pe_id))
                .collect();
            m.pe_leaves(pe_id, &held);
            return Ok(());
        };
        match msg {
            SlaveMsg::Request => {
                // Hold work until the registration barrier is met.
                if registered.load(std::sync::atomic::Ordering::SeqCst) < expected {
                    send(&mut writer, &MasterMsg::Wait)?;
                    continue;
                }
                let now = start.elapsed().as_secs_f64();
                let reply = match master.lock().expect("master poisoned").request(pe_id, now) {
                    Assignment::Tasks(tasks) => MasterMsg::Tasks { tasks },
                    Assignment::Steal { task, .. } => MasterMsg::Execute { task },
                    Assignment::Replicate(task) => MasterMsg::Execute { task },
                    Assignment::Wait => MasterMsg::Wait,
                    Assignment::Done => MasterMsg::Done,
                };
                let done = matches!(reply, MasterMsg::Done);
                send(&mut writer, &reply)?;
                if done {
                    return Ok(());
                }
            }
            SlaveMsg::Started { task } => {
                let now = start.elapsed().as_secs_f64();
                master
                    .lock()
                    .expect("master poisoned")
                    .task_started(pe_id, task, now);
            }
            SlaveMsg::Finished { task, gcups, hits } => {
                let now = start.elapsed().as_secs_f64();
                let mut m = master.lock().expect("master poisoned");
                let was_first = m.pool().get(task).state != TaskState::Finished;
                m.task_finished(pe_id, task, now, Some(gcups));
                drop(m);
                if was_first {
                    results.lock().expect("results poisoned")[task] = Some(hits);
                    completed_by.lock().expect("names poisoned")[task] = name.clone();
                }
            }
            SlaveMsg::Register { .. } => {
                send(
                    &mut writer,
                    &MasterMsg::Error {
                        message: "already registered".into(),
                    },
                )?;
            }
        }
    }
}

/// Run a slave: connect, register, execute tasks until the master says done.
///
/// `queries` and `subjects` are the locally available sequence data (the
/// paper's model: files are on every host).
#[allow(clippy::too_many_arguments)] // a slave's full execution context, deliberately flat
pub fn run_slave(
    addr: impl ToSocketAddrs,
    name: &str,
    static_gcups: f64,
    backend: &dyn ComputeBackend,
    queries: &[EncodedSequence],
    subjects: &[EncodedSequence],
    scoring: &Scoring,
    top_n: usize,
) -> std::io::Result<usize> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    send(
        &mut writer,
        &SlaveMsg::Register {
            name: name.to_string(),
            gcups: static_gcups,
        },
    )?;
    match recv::<_, MasterMsg>(&mut reader)? {
        Some(MasterMsg::Registered { .. }) => {}
        other => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("registration failed: {other:?}"),
            ))
        }
    }

    let mut executed = 0usize;
    loop {
        send(&mut writer, &SlaveMsg::Request)?;
        let tasks: Vec<TaskId> = match recv::<_, MasterMsg>(&mut reader)? {
            Some(MasterMsg::Tasks { tasks }) => tasks,
            Some(MasterMsg::Execute { task }) => vec![task],
            Some(MasterMsg::Wait) => {
                std::thread::sleep(std::time::Duration::from_millis(5));
                continue;
            }
            Some(MasterMsg::Done) | None => return Ok(executed),
            Some(MasterMsg::Error { message }) => {
                return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, message))
            }
            Some(MasterMsg::Registered { .. }) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "unexpected Registered",
                ))
            }
        };
        for task in tasks {
            let query = queries.get(task).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("master referenced unknown task {task}"),
                )
            })?;
            send(&mut writer, &SlaveMsg::Started { task })?;
            let t0 = Instant::now();
            let result = backend.compare(query, subjects, scoring, top_n);
            let secs = t0.elapsed().as_secs_f64();
            let gcups = if secs > 0.0 {
                result.cells as f64 / secs / 1e9
            } else {
                0.0
            };
            executed += 1;
            send(
                &mut writer,
                &SlaveMsg::Finished {
                    task,
                    gcups,
                    hits: result
                        .hits
                        .into_iter()
                        .map(|h| WireHit {
                            db_index: h.db_index,
                            id: h.id,
                            score: h.score,
                            subject_len: h.subject_len,
                        })
                        .collect(),
                },
            )?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use swhybrid_device::exec::StripedBackend;
    use swhybrid_seq::synth::{paper_database, QueryOrder, QuerySetSpec};
    use swhybrid_seq::Alphabet;

    fn scoring() -> Scoring {
        Scoring {
            matrix: swhybrid_align::scoring::SubstMatrix::blosum62(),
            gap: swhybrid_align::scoring::GapModel::Affine { open: 10, extend: 2 },
        }
    }

    fn tiny_workload() -> (Vec<EncodedSequence>, Vec<EncodedSequence>, Vec<TaskSpec>) {
        let db = paper_database("dog").unwrap().generate_scaled(77, 0.001);
        let subjects: Vec<EncodedSequence> = db.encode_all().unwrap();
        let queries: Vec<EncodedSequence> = QuerySetSpec {
            count: 6,
            min_len: 40,
            max_len: 120,
            order: QueryOrder::Ascending,
        }
        .generate(78)
        .iter()
        .map(|q| EncodedSequence::from_sequence(q, Alphabet::Protein).unwrap())
        .collect();
        let db_residues: u64 = subjects.iter().map(|s| s.len() as u64).sum();
        let specs = queries
            .iter()
            .enumerate()
            .map(|(id, q)| TaskSpec {
                id,
                query_len: q.len(),
                db_residues,
                db_sequences: subjects.len(),
            })
            .collect();
        (queries, subjects, specs)
    }

    #[test]
    fn wire_messages_round_trip() {
        let msgs = vec![
            SlaveMsg::Register {
                name: "host-a/core0".into(),
                gcups: 2.7,
            },
            SlaveMsg::Request,
            SlaveMsg::Started { task: 3 },
            SlaveMsg::Finished {
                task: 3,
                gcups: 2.5,
                hits: vec![WireHit {
                    db_index: 1,
                    id: "s1".into(),
                    score: 42,
                    subject_len: 99,
                }],
            },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            send(&mut buf, m).unwrap();
        }
        let mut reader = std::io::BufReader::new(buf.as_slice());
        for _ in 0..msgs.len() {
            assert!(recv::<_, SlaveMsg>(&mut reader).unwrap().is_some());
        }
        assert!(recv::<_, SlaveMsg>(&mut reader).unwrap().is_none());
    }

    #[test]
    fn distributed_run_two_slaves_over_tcp() {
        let (queries, subjects, specs) = tiny_workload();
        let server = MasterServer::bind(
            "127.0.0.1:0",
            MasterConfig {
                policy: Policy::pss_default(),
                adjustment: true,
                dispatch: Default::default(),
            },
            2,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();

        let outcome = crossbeam::thread::scope(|scope| {
            let q = &queries;
            let s = &subjects;
            for name in ["host-a", "host-b"] {
                scope.spawn(move |_| {
                    run_slave(
                        addr,
                        name,
                        1.0,
                        &StripedBackend::default(),
                        q,
                        s,
                        &scoring(),
                        3,
                    )
                    .expect("slave runs clean")
                });
            }
            server.serve(specs).expect("server completes")
        })
        .expect("scope");

        assert_eq!(outcome.completed_by.len(), 6);
        assert!(outcome
            .completed_by
            .iter()
            .all(|n| n == "host-a" || n == "host-b"));
        assert!(outcome.gcups > 0.0);
        // Hits match a direct local computation.
        for qh in &outcome.hits {
            let expect = swhybrid_align::score_only::sw_score_affine(
                &queries[qh.query_index].codes,
                &subjects[qh.hit.db_index].codes,
                &scoring(),
            )
            .score;
            assert_eq!(qh.hit.score, expect);
        }
    }

    /// A slave that executes exactly one task and then drops the
    /// connection mid-protocol (simulating a host crash).
    fn run_flaky_slave(
        addr: std::net::SocketAddr,
        queries: &[EncodedSequence],
        subjects: &[EncodedSequence],
    ) {
        use std::io::{BufRead as _, BufReader, BufWriter};
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        send(
            &mut writer,
            &SlaveMsg::Register {
                name: "flaky".into(),
                gcups: 100.0, // lies about being fast, grabs a big batch
            },
        )
        .unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap(); // Registered
        send(&mut writer, &SlaveMsg::Request).unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        let msg: MasterMsg = serde_json::from_str(&line).unwrap();
        let tasks = match msg {
            MasterMsg::Tasks { tasks } => tasks,
            other => panic!("expected tasks, got {other:?}"),
        };
        // Complete only the first assigned task, then vanish with the rest.
        if let Some(&task) = tasks.first() {
            let backend = StripedBackend::default();
            let result = backend.compare(&queries[task], subjects, &scoring(), 3);
            send(&mut writer, &SlaveMsg::Started { task }).unwrap();
            send(
                &mut writer,
                &SlaveMsg::Finished {
                    task,
                    gcups: 1.0,
                    hits: result
                        .hits
                        .into_iter()
                        .map(|h| WireHit {
                            db_index: h.db_index,
                            id: h.id,
                            score: h.score,
                            subject_len: h.subject_len,
                        })
                        .collect(),
                },
            )
            .unwrap();
        }
        // Connection drops here (stream goes out of scope): the master
        // must return the undone batch entries to the ready queue.
    }

    #[test]
    fn slave_crash_mid_run_is_recovered() {
        let (queries, subjects, specs) = tiny_workload();
        let n_tasks = specs.len();
        let server = MasterServer::bind(
            "127.0.0.1:0",
            MasterConfig {
                policy: Policy::pss_default(),
                adjustment: true,
                dispatch: Default::default(),
            },
            2,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();

        let outcome = crossbeam::thread::scope(|scope| {
            let q = &queries;
            let s = &subjects;
            scope.spawn(move |_| run_flaky_slave(addr, q, s));
            scope.spawn(move |_| {
                run_slave(
                    addr,
                    "steady",
                    1.0,
                    &StripedBackend::default(),
                    q,
                    s,
                    &scoring(),
                    3,
                )
                .expect("steady slave survives")
            });
            server.serve(specs).expect("server completes despite crash")
        })
        .expect("scope");

        // Every task completed, by someone.
        assert_eq!(outcome.completed_by.len(), n_tasks);
        assert!(outcome.completed_by.iter().all(|n| !n.is_empty()));
        // The steady slave picked up the crashed slave's abandoned work.
        assert!(
            outcome.completed_by.iter().filter(|n| *n == "steady").count() >= n_tasks - 1,
            "completed_by: {:?}",
            outcome.completed_by
        );
    }

    #[test]
    fn distributed_equals_local_runtime_results() {
        let (queries, subjects, specs) = tiny_workload();
        let server = MasterServer::bind(
            "127.0.0.1:0",
            MasterConfig {
                policy: Policy::SelfScheduling,
                adjustment: false,
                dispatch: Default::default(),
            },
            1,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let outcome = crossbeam::thread::scope(|scope| {
            let q = &queries;
            let s = &subjects;
            scope.spawn(move |_| {
                run_slave(addr, "solo", 1.0, &StripedBackend::default(), q, s, &scoring(), 3)
                    .expect("slave ok")
            });
            server.serve(specs).expect("server ok")
        })
        .expect("scope");

        let local = crate::runtime::run_real(
            vec![crate::runtime::RealPe {
                name: "solo".into(),
                static_gcups: 1.0,
                backend: Box::new(StripedBackend::default()),
            }],
            &queries,
            &subjects,
            &scoring(),
            crate::runtime::RuntimeConfig {
                master: MasterConfig {
                    policy: Policy::SelfScheduling,
                    adjustment: false,
                    dispatch: Default::default(),
                },
                top_n: 3,
            },
        );
        let key = |hits: &[QueryHit]| {
            let mut v: Vec<(usize, usize, i32)> = hits
                .iter()
                .map(|h| (h.query_index, h.hit.db_index, h.hit.score))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(key(&outcome.hits), key(&local.hits));
    }
}
