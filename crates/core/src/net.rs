//! Distributed master/slave runtime over TCP.
//!
//! The paper's platform is two hosts on Gigabit Ethernet: the master and
//! the slaves are separate processes and "the slaves can register
//! themselves in the master" (Fig. 4). This module is that deployment
//! shape: a [`MasterServer`] listens on a socket, slaves connect with
//! [`run_slave`], register, request work, and stream results back. The
//! same [`Master`] state machine as the simulator and the in-process
//! runtime makes the decisions.
//!
//! ## Wire protocol
//!
//! Newline-delimited JSON, one message per line (chosen over a binary
//! format so a session is inspectable with `nc`; at one message per
//! multi-second task, encoding cost is irrelevant — the paper itself notes
//! communication is negligible at this granularity). Both sides are
//! expected to already have the sequence files (exactly as in the paper,
//! where the flat database files live on each host); only task ids,
//! speeds, and hit lists travel over the wire.
//!
//! Slave → master:
//!
//! | message | shape |
//! |---|---|
//! | register | `{"type":"register","name":"host-a","gcups":2.5}` |
//! | request | `{"type":"request"}` |
//! | started | `{"type":"started","task":3}` |
//! | finished | `{"type":"finished","task":3,"gcups":2.4,"hits":[…]}` |
//! | heartbeat | `{"type":"heartbeat"}` |
//!
//! Master → slave:
//!
//! | message | shape |
//! |---|---|
//! | registered | `{"type":"registered","pe_id":1}` |
//! | tasks | `{"type":"tasks","tasks":[4,5]}` |
//! | execute | `{"type":"execute","task":2}` (a steal or a replica) |
//! | done | `{"type":"done"}` |
//! | error | `{"type":"error","message":"…"}` |
//!
//! A hit is `{"db_index":0,"id":"seq1","score":42,"subject_len":99}`.
//!
//! ## Long-polled requests (no busy-waiting)
//!
//! A `request` the master cannot serve yet is *held open*: the master
//! answers nothing until an assignment exists (a task finished elsewhere,
//! a PE died and its work was requeued, the registration barrier opened,
//! or the run completed). There is no "wait, ask again" message and no
//! polling loop on either side — the slave blocks on its socket and the
//! master's per-connection dispatcher parks on a condvar
//! ([`crate::shared::WaitHub`]), waking the moment the schedule can have
//! changed.
//!
//! ## Liveness
//!
//! TCP detects a closed peer, not a hung one. Slaves therefore send
//! `heartbeat` lines every [`NetConfig::heartbeat_interval`] (a dedicated
//! thread, so heartbeats flow even mid-kernel), and the master declares a
//! slave dead when *nothing* arrives for [`NetConfig::slave_deadline`]:
//! the connection is dropped and every task the slave held returns to the
//! ready queue (`pe_leaves`), waking the other PEs immediately. The same
//! deadline bounds the registration handshake, so a connection that never
//! says anything cannot pin server state. [`MasterServer::serve`] itself
//! is bounded by [`NetConfig::register_timeout`] (never blocks forever on
//! accept) and [`NetConfig::all_lost_grace`] (gives up when every slave is
//! gone mid-run). Slaves that lose the connection reconnect with
//! exponential backoff ([`NetConfig::reconnect_backoff_initial`] …
//! [`NetConfig::reconnect_backoff_max`], at most
//! [`NetConfig::reconnect_max_retries`] consecutive failures), re-register
//! and resume — the master admits them as late joiners.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::master::{Assignment, Master, MasterConfig};
use crate::shared::WaitHub;
use crate::stats::observed_gcups;
use crate::task::{PeId, TaskId, TaskState};
use crate::trace::{EventKind, RuntimeEvent};
use swhybrid_align::scoring::Scoring;
use swhybrid_device::exec::{merge_hits, ComputeBackend, QueryHit};
use swhybrid_device::task::TaskSpec;
use swhybrid_json::Json;
use swhybrid_seq::sequence::EncodedSequence;
use swhybrid_simd::engine::KernelStats;

/// Timing and fault-tolerance knobs of the TCP runtime. The defaults are
/// conservative LAN values; every test that injects faults tightens them.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// How often a slave sends a heartbeat line while connected.
    pub heartbeat_interval: Duration,
    /// Master-side silence budget: a slave from which *nothing* (heartbeat
    /// or protocol message) arrives for this long is declared dead and its
    /// tasks are requeued. Also bounds the registration handshake.
    pub slave_deadline: Duration,
    /// How long [`MasterServer::serve`] waits for the expected number of
    /// slaves. On expiry with at least one registration the barrier opens
    /// and the run proceeds degraded; with none, `serve` fails with
    /// [`io::ErrorKind::TimedOut`]. `None` waits forever (pre-hardening
    /// behaviour).
    pub register_timeout: Option<Duration>,
    /// How long the master tolerates having zero live connections mid-run
    /// before giving up with [`io::ErrorKind::ConnectionAborted`].
    pub all_lost_grace: Duration,
    /// First reconnect delay after a slave loses its connection.
    pub reconnect_backoff_initial: Duration,
    /// Upper bound for the (doubling) reconnect delay.
    pub reconnect_backoff_max: Duration,
    /// Consecutive failed reconnect attempts a slave makes before giving
    /// up. The budget refills whenever a session makes progress.
    pub reconnect_max_retries: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            heartbeat_interval: Duration::from_millis(250),
            slave_deadline: Duration::from_secs(2),
            register_timeout: Some(Duration::from_secs(30)),
            all_lost_grace: Duration::from_secs(10),
            reconnect_backoff_initial: Duration::from_millis(50),
            reconnect_backoff_max: Duration::from_secs(2),
            reconnect_max_retries: 5,
        }
    }
}

/// Socket read quantum: deadlines are checked at this granularity.
fn liveness_quantum(deadline: Duration) -> Duration {
    (deadline / 4).clamp(Duration::from_millis(10), Duration::from_millis(100))
}

/// Accept-loop re-check interval (a *connection* poll while idle, not a
/// work-request poll — work requests are long-polled on the hub condvar).
const ACCEPT_QUANTUM: Duration = Duration::from_millis(10);

/// A hit as it travels over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireHit {
    /// Index of the subject in the database.
    pub db_index: usize,
    /// Subject identifier.
    pub id: String,
    /// Local alignment score.
    pub score: i32,
    /// Subject length.
    pub subject_len: usize,
}

impl WireHit {
    fn from_hit(h: swhybrid_simd::search::Hit) -> WireHit {
        WireHit {
            db_index: h.db_index,
            id: h.id,
            score: h.score,
            subject_len: h.subject_len,
        }
    }

    fn into_hit(self) -> swhybrid_simd::search::Hit {
        swhybrid_simd::search::Hit {
            db_index: self.db_index,
            id: self.id,
            score: self.score,
            subject_len: self.subject_len,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("db_index", Json::Num(self.db_index as f64)),
            ("id", Json::str(self.id.clone())),
            ("score", Json::Num(self.score as f64)),
            ("subject_len", Json::Num(self.subject_len as f64)),
        ])
    }

    fn from_json(v: &Json) -> Result<WireHit, String> {
        Ok(WireHit {
            db_index: field_usize(v, "db_index")?,
            id: field_str(v, "id")?,
            score: field(v, "score")?
                .as_i64()
                .ok_or("field 'score' is not an integer")? as i32,
            subject_len: field_usize(v, "subject_len")?,
        })
    }
}

/// Messages from slave to master.
#[derive(Debug, Clone)]
pub enum SlaveMsg {
    /// First message on a connection.
    Register {
        /// Slave name.
        name: String,
        /// Theoretical GCUPS prior.
        gcups: f64,
    },
    /// Ask for work. The master holds the request open until it has an
    /// assignment (or the run is done) — there is no "ask again" reply.
    Request,
    /// Report that a task began executing.
    Started {
        /// The task.
        task: TaskId,
    },
    /// Report a completed task with its hits and observed speed.
    Finished {
        /// The task.
        task: TaskId,
        /// Observed GCUPS while executing it.
        gcups: f64,
        /// Top hits of the comparison.
        hits: Vec<WireHit>,
        /// Kernel-usage counters of the scan. Optional on the wire: older
        /// slaves simply omit the field.
        kernels: Option<KernelStats>,
    },
    /// Periodic liveness signal; carries no state.
    Heartbeat,
}

/// Messages from master to slave.
#[derive(Debug, Clone)]
pub enum MasterMsg {
    /// Registration accepted.
    Registered {
        /// The PE id assigned to this slave.
        pe_id: PeId,
    },
    /// A batch of fresh tasks.
    Tasks {
        /// Task ids, in execution order.
        tasks: Vec<TaskId>,
    },
    /// Execute this task even though another PE also holds it.
    Execute {
        /// The task (a steal or a replica — the slave does not care).
        task: TaskId,
    },
    /// Everything is finished; disconnect.
    Done,
    /// The peer spoke out of turn.
    Error {
        /// What went wrong.
        message: String,
    },
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn field_str(v: &Json, key: &str) -> Result<String, String> {
    field(v, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field '{key}' is not a string"))
}

fn field_f64(v: &Json, key: &str) -> Result<f64, String> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field '{key}' is not a number"))
}

fn field_usize(v: &Json, key: &str) -> Result<usize, String> {
    field(v, key)?
        .as_u64()
        .map(|n| n as usize)
        .ok_or_else(|| format!("field '{key}' is not a non-negative integer"))
}

/// Kernel counters as a JSON object (the optional `kernels` field of a
/// `finished` message, and the serve daemon's `stats` reply).
pub fn kernels_to_json(k: &KernelStats) -> Json {
    Json::obj([
        ("striped_i8", Json::Num(k.resolved_i8 as f64)),
        ("striped_i16", Json::Num(k.resolved_i16 as f64)),
        ("striped_scalar", Json::Num(k.resolved_scalar as f64)),
        ("interseq_i8", Json::Num(k.interseq_i8 as f64)),
        ("interseq_i16", Json::Num(k.interseq_i16 as f64)),
        ("interseq_scalar", Json::Num(k.interseq_scalar as f64)),
        ("chunks_striped", Json::Num(k.chunks_striped as f64)),
        ("chunks_interseq", Json::Num(k.chunks_interseq as f64)),
        ("cells_computed", Json::Num(k.cells_computed as f64)),
    ])
}

/// Parse kernel counters serialised by [`kernels_to_json`].
pub fn kernels_from_json(v: &Json) -> Result<KernelStats, String> {
    let get = |key: &str| -> Result<u64, String> {
        field(v, key)?
            .as_u64()
            .ok_or_else(|| format!("kernel counter '{key}' is not a non-negative integer"))
    };
    Ok(KernelStats {
        resolved_i8: get("striped_i8")?,
        resolved_i16: get("striped_i16")?,
        resolved_scalar: get("striped_scalar")?,
        interseq_i8: get("interseq_i8")?,
        interseq_i16: get("interseq_i16")?,
        interseq_scalar: get("interseq_scalar")?,
        chunks_striped: get("chunks_striped")?,
        chunks_interseq: get("chunks_interseq")?,
        cells_computed: get("cells_computed")?,
    })
}

/// One wire message: a single JSON line in each direction.
trait Wire: Sized {
    fn to_json(&self) -> Json;
    fn from_json(v: &Json) -> Result<Self, String>;
}

impl Wire for SlaveMsg {
    fn to_json(&self) -> Json {
        match self {
            SlaveMsg::Register { name, gcups } => Json::obj([
                ("type", Json::str("register")),
                ("name", Json::str(name.clone())),
                ("gcups", Json::Num(*gcups)),
            ]),
            SlaveMsg::Request => Json::obj([("type", Json::str("request"))]),
            SlaveMsg::Started { task } => Json::obj([
                ("type", Json::str("started")),
                ("task", Json::Num(*task as f64)),
            ]),
            SlaveMsg::Finished {
                task,
                gcups,
                hits,
                kernels,
            } => {
                let mut fields = vec![
                    ("type", Json::str("finished")),
                    ("task", Json::Num(*task as f64)),
                    ("gcups", Json::Num(*gcups)),
                    (
                        "hits",
                        Json::Arr(hits.iter().map(WireHit::to_json).collect()),
                    ),
                ];
                if let Some(k) = kernels {
                    fields.push(("kernels", kernels_to_json(k)));
                }
                Json::obj(fields)
            }
            SlaveMsg::Heartbeat => Json::obj([("type", Json::str("heartbeat"))]),
        }
    }

    fn from_json(v: &Json) -> Result<SlaveMsg, String> {
        match field_str(v, "type")?.as_str() {
            "register" => Ok(SlaveMsg::Register {
                name: field_str(v, "name")?,
                gcups: field_f64(v, "gcups")?,
            }),
            "request" => Ok(SlaveMsg::Request),
            "started" => Ok(SlaveMsg::Started {
                task: field_usize(v, "task")?,
            }),
            "finished" => Ok(SlaveMsg::Finished {
                task: field_usize(v, "task")?,
                gcups: field_f64(v, "gcups")?,
                hits: field(v, "hits")?
                    .as_array()
                    .ok_or("field 'hits' is not an array")?
                    .iter()
                    .map(WireHit::from_json)
                    .collect::<Result<_, _>>()?,
                kernels: v.get("kernels").map(kernels_from_json).transpose()?,
            }),
            "heartbeat" => Ok(SlaveMsg::Heartbeat),
            other => Err(format!("unknown slave message type '{other}'")),
        }
    }
}

impl Wire for MasterMsg {
    fn to_json(&self) -> Json {
        match self {
            MasterMsg::Registered { pe_id } => Json::obj([
                ("type", Json::str("registered")),
                ("pe_id", Json::Num(*pe_id as f64)),
            ]),
            MasterMsg::Tasks { tasks } => Json::obj([
                ("type", Json::str("tasks")),
                (
                    "tasks",
                    Json::Arr(tasks.iter().map(|&t| Json::Num(t as f64)).collect()),
                ),
            ]),
            MasterMsg::Execute { task } => Json::obj([
                ("type", Json::str("execute")),
                ("task", Json::Num(*task as f64)),
            ]),
            MasterMsg::Done => Json::obj([("type", Json::str("done"))]),
            MasterMsg::Error { message } => Json::obj([
                ("type", Json::str("error")),
                ("message", Json::str(message.clone())),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<MasterMsg, String> {
        match field_str(v, "type")?.as_str() {
            "registered" => Ok(MasterMsg::Registered {
                pe_id: field_usize(v, "pe_id")?,
            }),
            "tasks" => Ok(MasterMsg::Tasks {
                tasks: field(v, "tasks")?
                    .as_array()
                    .ok_or("field 'tasks' is not an array")?
                    .iter()
                    .map(|t| {
                        t.as_u64()
                            .map(|n| n as usize)
                            .ok_or_else(|| "task id is not a non-negative integer".to_string())
                    })
                    .collect::<Result<_, _>>()?,
            }),
            "execute" => Ok(MasterMsg::Execute {
                task: field_usize(v, "task")?,
            }),
            "done" => Ok(MasterMsg::Done),
            "error" => Ok(MasterMsg::Error {
                message: field_str(v, "message")?,
            }),
            other => Err(format!("unknown master message type '{other}'")),
        }
    }
}

fn invalid(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

fn send<W: Write, M: Wire>(writer: &mut W, msg: &M) -> io::Result<()> {
    let mut line = msg.to_json().to_string();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

fn decode<M: Wire>(line: &str) -> io::Result<M> {
    let v = Json::parse(line.trim()).map_err(|e| invalid(e.to_string()))?;
    M::from_json(&v).map_err(invalid)
}

/// Blocking receive of one message (slave side and tests; the master reads
/// through [`LineReader`] so it can watch deadlines).
fn recv<R: BufRead, M: Wire>(reader: &mut R) -> io::Result<Option<M>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    decode(&line).map(Some)
}

/// What one attempt to read a line produced.
enum ReadOutcome {
    /// A complete line (newline stripped).
    Line(String),
    /// Clean end of stream.
    Eof,
    /// Nothing new within the read quantum; check deadlines and try again.
    Timeout,
}

/// Line reader over a raw [`TcpStream`] with a read timeout.
///
/// `BufReader::read_line` cannot be used with socket timeouts: a timeout
/// mid-line loses the bytes read so far. This reader keeps partial input
/// in a persistent buffer across timeouts.
struct LineReader {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl LineReader {
    fn new(stream: TcpStream, quantum: Duration) -> io::Result<LineReader> {
        stream.set_read_timeout(Some(quantum))?;
        Ok(LineReader {
            stream,
            pending: Vec::new(),
        })
    }

    fn read_line(&mut self) -> io::Result<ReadOutcome> {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let rest = self.pending.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.pending, rest);
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return match String::from_utf8(line) {
                    Ok(s) => Ok(ReadOutcome::Line(s)),
                    Err(_) => Err(invalid("non-UTF-8 line on the wire")),
                };
            }
            let mut buf = [0u8; 4096];
            match self.stream.read(&mut buf) {
                Ok(0) => return Ok(ReadOutcome::Eof),
                Ok(n) => self.pending.extend_from_slice(&buf[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(ReadOutcome::Timeout)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// Outcome of a distributed run (master side).
#[derive(Debug)]
pub struct DistributedOutcome {
    /// Wall-clock seconds from first registration to last completion.
    pub elapsed_seconds: f64,
    /// Useful DP cells.
    pub total_cells: u64,
    /// Useful GCUPS.
    pub gcups: f64,
    /// Globally merged hits.
    pub hits: Vec<QueryHit>,
    /// For each task, the name of the slave whose result was used.
    pub completed_by: Vec<String>,
    /// Structured event stream of the run (see [`crate::trace`]).
    pub events: Vec<RuntimeEvent>,
}

/// Per-connection shared state, guarded by the hub lock.
struct ConnState {
    /// An unanswered `request` is outstanding (long-poll).
    wants_work: bool,
    /// The connection is shutting down; the dispatcher must exit.
    closed: bool,
    /// `pe_leaves` has run for this connection (idempotence guard).
    left: bool,
}

/// Everything the master's connection threads share, inside one
/// [`WaitHub`] so any state change can wake any long-poller.
struct Hub {
    master: Master,
    /// Connections that completed registration before the barrier opened.
    registered: usize,
    /// Whether work may be handed out (the paper's registration barrier).
    barrier_open: bool,
    /// Connections currently admitted and not yet disconnected.
    alive_conns: usize,
    /// Fatal server-side condition; aborts the run.
    abort: Option<(io::ErrorKind, String)>,
    results: Vec<Option<Vec<WireHit>>>,
    completed_by: Vec<String>,
    conns: HashMap<PeId, ConnState>,
    expected: usize,
}

impl Hub {
    /// Admit a registered connection: before the barrier as a founding
    /// member, after it as a late joiner.
    fn admit(&mut self, name: &str, gcups: f64, now: f64) -> PeId {
        let gcups = if gcups.is_finite() && gcups > 0.0 {
            gcups
        } else {
            f64::MIN_POSITIVE
        };
        let id = if self.barrier_open {
            self.master.pe_joins(name.to_string(), gcups, now)
        } else {
            let id = self.master.register(name.to_string(), gcups);
            self.registered += 1;
            if self.registered >= self.expected {
                self.barrier_open = true;
            }
            id
        };
        self.alive_conns += 1;
        self.conns.insert(
            id,
            ConnState {
                wants_work: false,
                closed: false,
                left: false,
            },
        );
        id
    }

    /// Tear down a connection: exactly once per PE, its held tasks return
    /// to the pool. `suspected_dead` marks a liveness verdict (silence past
    /// the deadline) rather than an observed hang-up.
    fn disconnect(&mut self, pe: PeId, now: f64, suspected_dead: bool) {
        let Some(conn) = self.conns.get_mut(&pe) else {
            return;
        };
        if conn.left {
            return;
        }
        conn.left = true;
        conn.closed = true;
        self.alive_conns -= 1;
        if suspected_dead {
            self.master
                .record_event(now, EventKind::PeSuspectedDead { pe });
        }
        let held: Vec<TaskId> = self
            .master
            .pool()
            .executing_ids()
            .filter(|&t| self.master.pool().get(t).executors.contains(&pe))
            .collect();
        self.master.pe_leaves(pe, &held);
    }

    /// Record a completed task; the first finisher's hits win.
    fn finish(
        &mut self,
        pe: PeId,
        task: TaskId,
        gcups: f64,
        hits: Vec<WireHit>,
        kernels: Option<KernelStats>,
        now: f64,
    ) {
        let was_first = self.master.pool().get(task).state != TaskState::Finished;
        let name = self.master.pe_name(pe).to_string();
        self.master.task_finished(pe, task, now, Some(gcups));
        if was_first {
            if let Some(kernels) = kernels {
                self.master
                    .record_event(now, EventKind::TaskKernels { pe, task, kernels });
            }
            self.results[task] = Some(hits);
            self.completed_by[task] = name;
        }
    }
}

/// A live event tap, as accepted by [`MasterServer::with_event_sink`].
type EventCallback = Box<dyn FnMut(&RuntimeEvent) + Send>;

/// The master process: owns the task pool, serves slave connections.
pub struct MasterServer {
    listener: TcpListener,
    config: MasterConfig,
    expected_slaves: usize,
    net: NetConfig,
    sink: Option<EventCallback>,
}

impl MasterServer {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) with
    /// default [`NetConfig`] timings.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: MasterConfig,
        expected_slaves: usize,
    ) -> io::Result<MasterServer> {
        Self::bind_with(addr, config, expected_slaves, NetConfig::default())
    }

    /// Bind with explicit [`NetConfig`] timings.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        config: MasterConfig,
        expected_slaves: usize,
        net: NetConfig,
    ) -> io::Result<MasterServer> {
        assert!(expected_slaves >= 1, "need at least one slave");
        Ok(MasterServer {
            listener: TcpListener::bind(addr)?,
            config,
            expected_slaves,
            net,
            sink: None,
        })
    }

    /// Stream every [`RuntimeEvent`] to `sink` as it is emitted (e.g. a
    /// JSONL file flushed per line, so a crashed run still leaves a usable
    /// trace). Called with the master's lock held — keep it short.
    pub fn with_event_sink(
        mut self,
        sink: impl FnMut(&RuntimeEvent) + Send + 'static,
    ) -> MasterServer {
        self.sink = Some(Box::new(sink));
        self
    }

    /// The bound address (give this to the slaves).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until every task is finished and every slave has disconnected.
    ///
    /// Registration is a barrier: work is only handed out once
    /// `expected_slaves` have *registered* (required for static policies
    /// and matching the paper's "waits for the slaves to register") — or
    /// [`NetConfig::register_timeout`] expires, whichever is first. The
    /// listener keeps accepting throughout the run, so a connection that
    /// fails its handshake never consumes a slave's place and late or
    /// reconnecting slaves can always get in.
    pub fn serve(self, specs: Vec<TaskSpec>) -> io::Result<DistributedOutcome> {
        let MasterServer {
            listener,
            config,
            expected_slaves,
            net,
            sink,
        } = self;
        let n_tasks = specs.len();
        let total_cells: u64 = specs.iter().map(|s| s.cells()).sum();
        let mut master = Master::new(specs, config);
        if let Some(sink) = sink {
            master.set_event_sink(sink);
        }
        let hub = WaitHub::new(Hub {
            master,
            registered: 0,
            barrier_open: false,
            alive_conns: 0,
            abort: None,
            results: vec![None; n_tasks],
            completed_by: vec![String::new(); n_tasks],
            conns: HashMap::new(),
            expected: expected_slaves,
        });
        listener.set_nonblocking(true)?;
        let start = Instant::now();
        let mut lost_since: Option<Instant> = None;

        std::thread::scope(|scope| {
            loop {
                {
                    let mut g = hub.lock();
                    if g.abort.is_some() {
                        break;
                    }
                    if g.barrier_open && g.master.all_finished() && g.alive_conns == 0 {
                        break;
                    }
                    if !g.barrier_open {
                        if let Some(t) = net.register_timeout {
                            if start.elapsed() > t {
                                if g.registered == 0 {
                                    g.abort = Some((
                                        io::ErrorKind::TimedOut,
                                        format!("no slave registered within {t:?}"),
                                    ));
                                } else {
                                    // Proceed degraded with the slaves we
                                    // have rather than hang on a no-show.
                                    g.barrier_open = true;
                                }
                                drop(g);
                                hub.notify_all();
                                continue;
                            }
                        }
                    } else if g.alive_conns == 0 && !g.master.all_finished() {
                        let since = *lost_since.get_or_insert_with(Instant::now);
                        if since.elapsed() > net.all_lost_grace {
                            g.abort = Some((
                                io::ErrorKind::ConnectionAborted,
                                "every slave disconnected mid-run".to_string(),
                            ));
                            drop(g);
                            hub.notify_all();
                            continue;
                        }
                    } else {
                        lost_since = None;
                    }
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let hub = &hub;
                        let net = &net;
                        scope.spawn(move || connection_reader(scope, stream, hub, net, start));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        // Wakes early on any hub change (e.g. run completed)
                        // and at the latest after one accept quantum.
                        let g = hub.lock();
                        let _g = hub.wait_timeout(g, ACCEPT_QUANTUM);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        let mut g = hub.lock();
                        g.abort = Some((e.kind(), e.to_string()));
                        drop(g);
                        hub.notify_all();
                        break;
                    }
                }
            }
            // Wake every parked dispatcher so the scope can join them.
            hub.notify_all();
        });

        let elapsed_seconds = start.elapsed().as_secs_f64();
        let mut hub = hub.into_inner();
        if let Some((kind, message)) = hub.abort.take() {
            return Err(io::Error::new(kind, message));
        }
        let events = hub.master.take_events();
        let hits = merge_hits(
            hub.results
                .into_iter()
                .enumerate()
                .filter_map(|(task, hits)| {
                    hits.map(|hits| {
                        (
                            task,
                            hits.into_iter().map(WireHit::into_hit).collect::<Vec<_>>(),
                        )
                    })
                }),
        );
        Ok(DistributedOutcome {
            elapsed_seconds,
            total_cells,
            gcups: observed_gcups(total_cells, elapsed_seconds),
            hits,
            completed_by: hub.completed_by,
            events,
        })
    }
}

/// Reader half of one slave connection: handshake, liveness watchdog, and
/// message handling. Spawns the dispatcher (writer half) once registered.
fn connection_reader<'scope>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    stream: TcpStream,
    hub: &'scope WaitHub<Hub>,
    net: &'scope NetConfig,
    start: Instant,
) {
    stream.set_nodelay(true).ok();
    let quantum = liveness_quantum(net.slave_deadline);
    let Ok(writer_stream) = stream.try_clone() else {
        return;
    };
    let Ok(mut reader) = LineReader::new(stream, quantum) else {
        return;
    };
    let mut writer = BufWriter::new(writer_stream);

    // Handshake: the first line must arrive within the deadline and must be
    // a registration. Anything else frees the socket WITHOUT consuming any
    // server state — the old server counted such connections against
    // `expected_slaves` and deadlocked waiting for a slave that could then
    // never be accepted.
    let opened = Instant::now();
    let first = loop {
        match reader.read_line() {
            Ok(ReadOutcome::Line(l)) => break l,
            Ok(ReadOutcome::Eof) | Err(_) => return,
            Ok(ReadOutcome::Timeout) => {
                if hub.lock().abort.is_some() || opened.elapsed() > net.slave_deadline {
                    return;
                }
            }
        }
    };
    let pe_id = match decode::<SlaveMsg>(&first) {
        Ok(SlaveMsg::Register { name, gcups }) => {
            let id = hub
                .lock()
                .admit(&name, gcups, start.elapsed().as_secs_f64());
            hub.notify_all();
            id
        }
        _ => {
            let _ = send(
                &mut writer,
                &MasterMsg::Error {
                    message: "expected a register message first".to_string(),
                },
            );
            return;
        }
    };
    let fatal = |reason_now: f64, suspected: bool| {
        let mut g = hub.lock();
        g.disconnect(pe_id, reason_now, suspected);
        drop(g);
        hub.notify_all();
    };
    if send(&mut writer, &MasterMsg::Registered { pe_id }).is_err() {
        fatal(start.elapsed().as_secs_f64(), false);
        return;
    }

    // The writer belongs to the dispatcher from here on.
    scope.spawn(move || dispatch_loop(hub, pe_id, writer, start));

    let mut last_seen = Instant::now();
    loop {
        match reader.read_line() {
            Ok(ReadOutcome::Line(line)) => {
                last_seen = Instant::now();
                let now = start.elapsed().as_secs_f64();
                let Ok(msg) = decode::<SlaveMsg>(&line) else {
                    fatal(now, false);
                    return;
                };
                let mut g = hub.lock();
                match msg {
                    SlaveMsg::Heartbeat => {}
                    SlaveMsg::Request => {
                        if let Some(c) = g.conns.get_mut(&pe_id) {
                            c.wants_work = true;
                        }
                    }
                    SlaveMsg::Started { task } => {
                        if task >= g.results.len() {
                            g.disconnect(pe_id, now, false);
                            drop(g);
                            hub.notify_all();
                            return;
                        }
                        g.master.task_started(pe_id, task, now);
                    }
                    SlaveMsg::Finished {
                        task,
                        gcups,
                        hits,
                        kernels,
                    } => {
                        if task >= g.results.len() {
                            g.disconnect(pe_id, now, false);
                            drop(g);
                            hub.notify_all();
                            return;
                        }
                        g.finish(pe_id, task, gcups, hits, kernels, now);
                    }
                    SlaveMsg::Register { .. } => {
                        g.disconnect(pe_id, now, false);
                        drop(g);
                        hub.notify_all();
                        return;
                    }
                }
                drop(g);
                hub.notify_all();
            }
            Ok(ReadOutcome::Eof) | Err(_) => {
                fatal(start.elapsed().as_secs_f64(), false);
                return;
            }
            Ok(ReadOutcome::Timeout) => {
                let now = start.elapsed().as_secs_f64();
                {
                    let g = hub.lock();
                    let gone = g.abort.is_some() || g.conns.get(&pe_id).is_none_or(|c| c.closed);
                    drop(g);
                    if gone {
                        fatal(now, false);
                        return;
                    }
                }
                if last_seen.elapsed() > net.slave_deadline {
                    // Nothing — not even a heartbeat — within the deadline:
                    // declare the slave dead and requeue its tasks.
                    fatal(now, true);
                    return;
                }
            }
        }
    }
}

/// Writer half of one slave connection: long-polls the master on behalf of
/// the slave's outstanding `request`, parked on the hub condvar between
/// schedule changes (never a sleep/poll loop).
fn dispatch_loop(
    hub: &WaitHub<Hub>,
    pe_id: PeId,
    mut writer: BufWriter<TcpStream>,
    start: Instant,
) {
    let mut g = hub.lock();
    loop {
        if g.abort.is_some() {
            return;
        }
        let Some(conn) = g.conns.get(&pe_id) else {
            return;
        };
        if conn.closed {
            return;
        }
        let mut reply = None;
        if conn.wants_work && g.barrier_open {
            let now = start.elapsed().as_secs_f64();
            reply = match g.master.request(pe_id, now) {
                Assignment::Tasks(tasks) => Some(MasterMsg::Tasks { tasks }),
                Assignment::Steal { task, .. } | Assignment::Replicate(task) => {
                    Some(MasterMsg::Execute { task })
                }
                // Long-poll: hold the request open, park until the
                // schedule changes.
                Assignment::Wait => None,
                Assignment::Done => Some(MasterMsg::Done),
            };
        }
        match reply {
            Some(msg) => {
                if let Some(c) = g.conns.get_mut(&pe_id) {
                    c.wants_work = false;
                }
                let done = matches!(msg, MasterMsg::Done);
                drop(g);
                // `request` may have moved tasks (a steal): let every other
                // long-poller re-evaluate before we block on the socket.
                hub.notify_all();
                if send(&mut writer, &msg).is_err() {
                    let mut g = hub.lock();
                    g.disconnect(pe_id, start.elapsed().as_secs_f64(), false);
                    drop(g);
                    hub.notify_all();
                    return;
                }
                if done {
                    return;
                }
                g = hub.lock();
            }
            None => g = hub.wait(g),
        }
    }
}

/// How a slave session over one connection ended.
enum SessionEnd {
    /// The master said done; `usize` tasks were executed this session.
    Done(usize),
    /// The connection was lost after `usize` executed tasks; reconnect.
    Lost(usize),
}

fn is_retryable(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::TimedOut
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::NotConnected
    )
}

/// Run a slave: connect, register, execute tasks until the master says
/// done, with default [`NetConfig`] timings.
///
/// `queries` and `subjects` are the locally available sequence data (the
/// paper's model: files are on every host).
#[allow(clippy::too_many_arguments)] // a slave's full execution context, deliberately flat
pub fn run_slave(
    addr: impl ToSocketAddrs,
    name: &str,
    static_gcups: f64,
    backend: &dyn ComputeBackend,
    queries: &[EncodedSequence],
    subjects: &[EncodedSequence],
    scoring: &Scoring,
    top_n: usize,
) -> io::Result<usize> {
    run_slave_with(
        addr,
        name,
        static_gcups,
        backend,
        queries,
        subjects,
        scoring,
        top_n,
        &NetConfig::default(),
    )
}

/// [`run_slave`] with explicit [`NetConfig`] timings. Reconnects with
/// exponential backoff when the connection to the master is lost; returns
/// the total number of tasks executed across all sessions.
#[allow(clippy::too_many_arguments)]
pub fn run_slave_with(
    addr: impl ToSocketAddrs,
    name: &str,
    static_gcups: f64,
    backend: &dyn ComputeBackend,
    queries: &[EncodedSequence],
    subjects: &[EncodedSequence],
    scoring: &Scoring,
    top_n: usize,
    net: &NetConfig,
) -> io::Result<usize> {
    let mut total = 0usize;
    let mut retries_left = net.reconnect_max_retries;
    let mut backoff = net.reconnect_backoff_initial;
    loop {
        match slave_session(
            &addr,
            name,
            static_gcups,
            backend,
            queries,
            subjects,
            scoring,
            top_n,
            net,
        ) {
            Ok(SessionEnd::Done(n)) => return Ok(total + n),
            Ok(SessionEnd::Lost(n)) => {
                total += n;
                if n > 0 {
                    // The session made progress: fresh failure budget.
                    retries_left = net.reconnect_max_retries;
                    backoff = net.reconnect_backoff_initial;
                }
                if retries_left == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "connection to master lost and reconnect budget exhausted",
                    ));
                }
                retries_left -= 1;
            }
            Err(e) if is_retryable(e.kind()) => {
                if retries_left == 0 {
                    return Err(e);
                }
                retries_left -= 1;
            }
            Err(e) => return Err(e),
        }
        // Reconnect backoff — not a work-request poll (work waiting is
        // long-polled by the master while connected).
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(net.reconnect_backoff_max);
    }
}

/// Send a heartbeat line every `interval` until told to stop. Runs in its
/// own thread so heartbeats flow even while the work loop is deep inside a
/// kernel; parks on a [`WaitHub`] so stopping is immediate.
fn spawn_heartbeat(
    writer: Arc<Mutex<BufWriter<TcpStream>>>,
    stop: Arc<WaitHub<bool>>,
    interval: Duration,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut stopped = stop.lock();
        loop {
            stopped = stop.wait_timeout(stopped, interval);
            if *stopped {
                return;
            }
            drop(stopped);
            let failed = send(
                &mut *writer.lock().expect("slave writer poisoned"),
                &SlaveMsg::Heartbeat,
            )
            .is_err();
            if failed {
                // The socket is gone; the work loop will notice on its own.
                return;
            }
            stopped = stop.lock();
        }
    })
}

#[allow(clippy::too_many_arguments)]
fn slave_session(
    addr: &impl ToSocketAddrs,
    name: &str,
    static_gcups: f64,
    backend: &dyn ComputeBackend,
    queries: &[EncodedSequence],
    subjects: &[EncodedSequence],
    scoring: &Scoring,
    top_n: usize,
    net: &NetConfig,
) -> io::Result<SessionEnd> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer = Arc::new(Mutex::new(BufWriter::new(stream)));

    send(
        &mut *writer.lock().expect("slave writer poisoned"),
        &SlaveMsg::Register {
            name: name.to_string(),
            gcups: static_gcups,
        },
    )?;
    match recv::<_, MasterMsg>(&mut reader)? {
        Some(MasterMsg::Registered { .. }) => {}
        Some(MasterMsg::Error { message }) => return Err(invalid(message)),
        Some(other) => return Err(invalid(format!("registration failed: {other:?}"))),
        None => return Ok(SessionEnd::Lost(0)),
    }

    let stop = Arc::new(WaitHub::new(false));
    let heartbeat = spawn_heartbeat(
        Arc::clone(&writer),
        Arc::clone(&stop),
        net.heartbeat_interval,
    );
    let outcome = slave_work_loop(
        &mut reader,
        &writer,
        backend,
        queries,
        subjects,
        scoring,
        top_n,
    );
    *stop.lock() = true;
    stop.notify_all();
    heartbeat.join().expect("heartbeat thread panicked");
    outcome
}

fn slave_work_loop(
    reader: &mut BufReader<TcpStream>,
    writer: &Mutex<BufWriter<TcpStream>>,
    backend: &dyn ComputeBackend,
    queries: &[EncodedSequence],
    subjects: &[EncodedSequence],
    scoring: &Scoring,
    top_n: usize,
) -> io::Result<SessionEnd> {
    let send_msg = |msg: &SlaveMsg| send(&mut *writer.lock().expect("slave writer poisoned"), msg);
    let mut executed = 0usize;
    loop {
        if send_msg(&SlaveMsg::Request).is_err() {
            return Ok(SessionEnd::Lost(executed));
        }
        // The master long-polls: this blocks (heartbeats still flowing)
        // until an assignment or completion arrives.
        let tasks: Vec<TaskId> = match recv::<_, MasterMsg>(reader) {
            Ok(Some(MasterMsg::Tasks { tasks })) => tasks,
            Ok(Some(MasterMsg::Execute { task })) => vec![task],
            Ok(Some(MasterMsg::Done)) => return Ok(SessionEnd::Done(executed)),
            Ok(Some(MasterMsg::Error { message })) => return Err(invalid(message)),
            Ok(Some(MasterMsg::Registered { .. })) => {
                return Err(invalid("unexpected registered message mid-session"))
            }
            Ok(None) => return Ok(SessionEnd::Lost(executed)),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => return Err(e),
            Err(_) => return Ok(SessionEnd::Lost(executed)),
        };
        for task in tasks {
            let query = queries
                .get(task)
                .ok_or_else(|| invalid(format!("master referenced unknown task {task}")))?;
            if send_msg(&SlaveMsg::Started { task }).is_err() {
                return Ok(SessionEnd::Lost(executed));
            }
            let t0 = Instant::now();
            let result = backend.compare(query, subjects, scoring, top_n);
            let gcups = observed_gcups(result.cells, t0.elapsed().as_secs_f64());
            let finished = SlaveMsg::Finished {
                task,
                gcups,
                hits: result.hits.into_iter().map(WireHit::from_hit).collect(),
                kernels: Some(result.stats),
            };
            if send_msg(&finished).is_err() {
                return Ok(SessionEnd::Lost(executed));
            }
            executed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use swhybrid_device::exec::StripedBackend;
    use swhybrid_seq::synth::{paper_database, QueryOrder, QuerySetSpec};
    use swhybrid_seq::Alphabet;

    fn scoring() -> Scoring {
        Scoring {
            matrix: swhybrid_align::scoring::SubstMatrix::blosum62(),
            gap: swhybrid_align::scoring::GapModel::Affine {
                open: 10,
                extend: 2,
            },
        }
    }

    fn tiny_workload() -> (Vec<EncodedSequence>, Vec<EncodedSequence>, Vec<TaskSpec>) {
        let db = paper_database("dog").unwrap().generate_scaled(77, 0.001);
        let subjects: Vec<EncodedSequence> = db.encode_all().unwrap();
        let queries: Vec<EncodedSequence> = QuerySetSpec {
            count: 6,
            min_len: 40,
            max_len: 120,
            order: QueryOrder::Ascending,
        }
        .generate(78)
        .iter()
        .map(|q| EncodedSequence::from_sequence(q, Alphabet::Protein).unwrap())
        .collect();
        let db_residues: u64 = subjects.iter().map(|s| s.len() as u64).sum();
        let specs = queries
            .iter()
            .enumerate()
            .map(|(id, q)| TaskSpec {
                id,
                query_len: q.len(),
                db_residues,
                db_sequences: subjects.len(),
            })
            .collect();
        (queries, subjects, specs)
    }

    #[test]
    fn wire_messages_round_trip() {
        let slave_msgs = vec![
            SlaveMsg::Register {
                name: "host-a/core0".into(),
                gcups: 2.7,
            },
            SlaveMsg::Request,
            SlaveMsg::Started { task: 3 },
            SlaveMsg::Finished {
                task: 3,
                gcups: 2.5,
                hits: vec![WireHit {
                    db_index: 1,
                    id: "s1".into(),
                    score: -7, // scores can be negative; as_i64, not as_u64
                    subject_len: 99,
                }],
                kernels: Some(KernelStats {
                    resolved_i8: 5,
                    interseq_i8: 40,
                    interseq_i16: 2,
                    chunks_striped: 1,
                    chunks_interseq: 3,
                    cells_computed: 12_345,
                    ..Default::default()
                }),
            },
            SlaveMsg::Heartbeat,
        ];
        let mut buf = Vec::new();
        for m in &slave_msgs {
            send(&mut buf, m).unwrap();
        }
        let mut reader = BufReader::new(buf.as_slice());
        for _ in 0..slave_msgs.len() {
            assert!(recv::<_, SlaveMsg>(&mut reader).unwrap().is_some());
        }
        assert!(recv::<_, SlaveMsg>(&mut reader).unwrap().is_none());

        let master_msgs = vec![
            MasterMsg::Registered { pe_id: 1 },
            MasterMsg::Tasks { tasks: vec![4, 5] },
            MasterMsg::Execute { task: 2 },
            MasterMsg::Done,
            MasterMsg::Error {
                message: "nope".into(),
            },
        ];
        let mut buf = Vec::new();
        for m in &master_msgs {
            send(&mut buf, m).unwrap();
        }
        let mut reader = BufReader::new(buf.as_slice());
        for _ in 0..master_msgs.len() {
            assert!(recv::<_, MasterMsg>(&mut reader).unwrap().is_some());
        }
        // The finished round-trip preserves the hit verbatim.
        let msg = decode::<SlaveMsg>(&slave_msgs[3].to_json().to_string()).unwrap();
        match msg {
            SlaveMsg::Finished {
                task,
                gcups,
                hits,
                kernels,
            } => {
                assert_eq!(task, 3);
                assert!((gcups - 2.5).abs() < 1e-12);
                assert_eq!(
                    hits,
                    vec![WireHit {
                        db_index: 1,
                        id: "s1".into(),
                        score: -7,
                        subject_len: 99,
                    }]
                );
                let k = kernels.expect("kernels field must round-trip");
                assert_eq!(k.interseq_i8, 40);
                assert_eq!(k.cells_computed, 12_345);
            }
            other => panic!("wrong decode: {other:?}"),
        }
        // A finished line without the kernels field (an older slave) still
        // decodes, with the counters absent.
        let legacy = r#"{"type":"finished","task":1,"gcups":1.0,"hits":[]}"#;
        match decode::<SlaveMsg>(legacy).unwrap() {
            SlaveMsg::Finished { kernels, .. } => assert!(kernels.is_none()),
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_decode_to_invalid_data() {
        for bad in [
            "",
            "not json",
            "{\"type\":\"warp\"}",
            "{\"type\":\"started\"}",
        ] {
            let err = decode::<SlaveMsg>(bad).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "input: {bad:?}");
        }
    }

    #[test]
    fn distributed_run_two_slaves_over_tcp() {
        let (queries, subjects, specs) = tiny_workload();
        let server = MasterServer::bind(
            "127.0.0.1:0",
            MasterConfig {
                policy: Policy::pss_default(),
                adjustment: true,
                dispatch: Default::default(),
            },
            2,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();

        let outcome = std::thread::scope(|scope| {
            let q = &queries;
            let s = &subjects;
            for name in ["host-a", "host-b"] {
                scope.spawn(move || {
                    run_slave(
                        addr,
                        name,
                        1.0,
                        &StripedBackend::default(),
                        q,
                        s,
                        &scoring(),
                        3,
                    )
                    .expect("slave runs clean")
                });
            }
            server.serve(specs).expect("server completes")
        });

        assert_eq!(outcome.completed_by.len(), 6);
        assert!(outcome
            .completed_by
            .iter()
            .all(|n| n == "host-a" || n == "host-b"));
        assert!(outcome.gcups > 0.0);
        // The run produced an event stream ending in completion.
        assert!(outcome
            .events
            .iter()
            .any(|e| e.kind == EventKind::RunCompleted));
        // Hits match a direct local computation.
        for qh in &outcome.hits {
            let expect = swhybrid_align::score_only::sw_score_affine(
                &queries[qh.query_index].codes,
                &subjects[qh.hit.db_index].codes,
                &scoring(),
            )
            .score;
            assert_eq!(qh.hit.score, expect);
        }
    }

    /// Regression: a connection whose first message is not `register` used
    /// to consume one of the `expected_slaves` accept slots, deadlocking
    /// the server. It must instead get an error and cost nothing.
    #[test]
    fn garbage_first_message_does_not_consume_a_registration_slot() {
        let (queries, subjects, specs) = tiny_workload();
        let server = MasterServer::bind(
            "127.0.0.1:0",
            MasterConfig {
                policy: Policy::pss_default(),
                adjustment: true,
                dispatch: Default::default(),
            },
            2,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();

        let outcome = std::thread::scope(|scope| {
            let q = &queries;
            let s = &subjects;
            scope.spawn(move || {
                // Not a slave at all: say something wrong, expect an error.
                let stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = BufWriter::new(stream);
                writer.write_all(b"i am not a slave\n").unwrap();
                writer.flush().unwrap();
                match recv::<_, MasterMsg>(&mut reader).unwrap() {
                    Some(MasterMsg::Error { .. }) => {}
                    other => panic!("expected an error reply, got {other:?}"),
                }
            });
            for name in ["real-a", "real-b"] {
                scope.spawn(move || {
                    // Give the garbage client a head start so it provably
                    // connects before both real slaves.
                    std::thread::sleep(Duration::from_millis(100));
                    run_slave(
                        addr,
                        name,
                        1.0,
                        &StripedBackend::default(),
                        q,
                        s,
                        &scoring(),
                        3,
                    )
                    .expect("real slave ok")
                });
            }
            server
                .serve(specs)
                .expect("server completes despite garbage")
        });
        assert!(outcome.completed_by.iter().all(|n| !n.is_empty()));
    }

    /// A slave that earns a big batch, then drops the connection (FIN)
    /// mid-batch — simulating a process crash.
    fn run_flaky_slave(
        addr: std::net::SocketAddr,
        queries: &[EncodedSequence],
        subjects: &[EncodedSequence],
    ) {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        send(
            &mut writer,
            &SlaveMsg::Register {
                name: "flaky".into(),
                gcups: 100.0,
            },
        )
        .unwrap();
        assert!(matches!(
            recv::<_, MasterMsg>(&mut reader).unwrap(),
            Some(MasterMsg::Registered { .. })
        ));
        // First allocation is one task; complete it honestly but report an
        // absurd speed so Φ hands us a huge batch next time.
        send(&mut writer, &SlaveMsg::Request).unwrap();
        let first = match recv::<_, MasterMsg>(&mut reader).unwrap() {
            Some(MasterMsg::Tasks { tasks }) => tasks[0],
            other => panic!("expected first allocation, got {other:?}"),
        };
        let backend = StripedBackend::default();
        send(&mut writer, &SlaveMsg::Started { task: first }).unwrap();
        let result = backend.compare(&queries[first], subjects, &scoring(), 3);
        send(
            &mut writer,
            &SlaveMsg::Finished {
                task: first,
                gcups: 1000.0,
                hits: result.hits.into_iter().map(WireHit::from_hit).collect(),
                kernels: Some(result.stats),
            },
        )
        .unwrap();
        send(&mut writer, &SlaveMsg::Request).unwrap();
        match recv::<_, MasterMsg>(&mut reader).unwrap() {
            Some(MasterMsg::Tasks { tasks }) => {
                // Start the first batch entry, then vanish holding them all.
                send(&mut writer, &SlaveMsg::Started { task: tasks[0] }).unwrap();
            }
            Some(MasterMsg::Execute { .. }) | Some(MasterMsg::Done) => {
                // The steady slave was too fast this run; dropping here
                // still exercises the disconnect path.
            }
            other => panic!("unexpected reply: {other:?}"),
        }
        // Connection drops here (stream goes out of scope): the master must
        // return the undone batch entries to the ready queue.
    }

    #[test]
    fn slave_crash_mid_run_is_recovered() {
        let (queries, subjects, specs) = tiny_workload();
        let n_tasks = specs.len();
        let server = MasterServer::bind(
            "127.0.0.1:0",
            MasterConfig {
                policy: Policy::pss_default(),
                adjustment: true,
                dispatch: Default::default(),
            },
            2,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();

        let outcome = std::thread::scope(|scope| {
            let q = &queries;
            let s = &subjects;
            scope.spawn(move || run_flaky_slave(addr, q, s));
            scope.spawn(move || {
                run_slave(
                    addr,
                    "steady",
                    1.0,
                    &StripedBackend::default(),
                    q,
                    s,
                    &scoring(),
                    3,
                )
                .expect("steady slave survives")
            });
            server.serve(specs).expect("server completes despite crash")
        });

        // Every task completed, by someone.
        assert_eq!(outcome.completed_by.len(), n_tasks);
        assert!(outcome.completed_by.iter().all(|n| !n.is_empty()));
        // The flaky slave finished at most its first allocation; the steady
        // slave picked up the crashed slave's abandoned batch.
        assert!(
            outcome
                .completed_by
                .iter()
                .filter(|n| *n == "flaky")
                .count()
                <= 1,
            "completed_by: {:?}",
            outcome.completed_by
        );
    }

    /// The worst failure TCP cannot see: a slave that stops computing but
    /// keeps its socket open (no FIN). The master must notice via the
    /// heartbeat deadline, requeue the held task, and let the surviving
    /// slave pick it up without any poll-interval delay.
    #[test]
    fn silently_dead_slave_is_detected_and_its_task_requeued() {
        let (queries, subjects, specs) = tiny_workload();
        let net = NetConfig {
            heartbeat_interval: Duration::from_millis(100),
            slave_deadline: Duration::from_secs(1),
            ..NetConfig::default()
        };
        let server = MasterServer::bind_with(
            "127.0.0.1:0",
            MasterConfig {
                policy: Policy::SelfScheduling,
                adjustment: false, // no replication: only the deadline can save task 0
                dispatch: Default::default(),
            },
            1,
            net.clone(),
        )
        .unwrap();
        let addr = server.local_addr().unwrap();

        let outcome = std::thread::scope(|scope| {
            let q = &queries;
            let s = &subjects;
            let net = &net;
            scope.spawn(move || {
                // Mute slave: alone it satisfies the barrier, takes a task,
                // reports it started, then goes silent with the socket open.
                let stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = BufWriter::new(stream.try_clone().unwrap());
                send(
                    &mut writer,
                    &SlaveMsg::Register {
                        name: "mute".into(),
                        gcups: 1.0,
                    },
                )
                .unwrap();
                assert!(matches!(
                    recv::<_, MasterMsg>(&mut reader).unwrap(),
                    Some(MasterMsg::Registered { .. })
                ));
                send(&mut writer, &SlaveMsg::Request).unwrap();
                let assigned = match recv::<_, MasterMsg>(&mut reader).unwrap() {
                    Some(MasterMsg::Tasks { tasks }) => tasks,
                    other => panic!("expected tasks, got {other:?}"),
                };
                send(&mut writer, &SlaveMsg::Started { task: assigned[0] }).unwrap();
                // Silence. No heartbeat, no FIN — block until the master,
                // having declared this PE dead, closes the connection.
                let mut sink = String::new();
                while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
                    sink.clear();
                }
            });
            scope.spawn(move || {
                // The real slave joins late (pe_joins path) so the mute one
                // is guaranteed to have been assigned its task first.
                std::thread::sleep(Duration::from_millis(200));
                run_slave_with(
                    addr,
                    "steady",
                    1.0,
                    &StripedBackend::default(),
                    q,
                    s,
                    &scoring(),
                    3,
                    net,
                )
                .expect("steady slave completes the run")
            });
            server
                .serve(specs)
                .expect("server completes despite silent death")
        });

        // All tasks completed, all by the surviving slave.
        assert!(outcome.completed_by.iter().all(|n| n == "steady"));
        // The liveness verdict and the requeue are in the event stream.
        let ev = &outcome.events;
        assert!(
            ev.iter()
                .any(|e| matches!(e.kind, EventKind::PeSuspectedDead { .. })),
            "no suspected-dead event"
        );
        let (rq_time, rq_task) = ev
            .iter()
            .find_map(|e| match e.kind {
                EventKind::TaskRequeued { task, .. } => Some((e.time, task)),
                _ => None,
            })
            .expect("no requeue event");
        // The requeued task is picked up without any poll-interval delay:
        // the surviving slave's long-poll wakes on the requeue itself.
        let pickup = ev
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::TasksAssigned { tasks, .. }
                    if e.time >= rq_time && tasks.contains(&rq_task) =>
                {
                    Some(e.time)
                }
                _ => None,
            })
            .expect("requeued task never reassigned");
        assert!(
            pickup - rq_time < 0.5,
            "requeue→pickup latency {}s looks like polling",
            pickup - rq_time
        );
        // Hits still match a direct local computation.
        for qh in &outcome.hits {
            let expect = swhybrid_align::score_only::sw_score_affine(
                &queries[qh.query_index].codes,
                &subjects[qh.hit.db_index].codes,
                &scoring(),
            )
            .score;
            assert_eq!(qh.hit.score, expect);
        }
    }

    /// A connection that never says anything must not pin server state:
    /// the handshake deadline frees it without consuming a slot.
    #[test]
    fn silent_probe_connection_is_dropped_at_handshake_deadline() {
        let (queries, subjects, specs) = tiny_workload();
        let net = NetConfig {
            heartbeat_interval: Duration::from_millis(100),
            slave_deadline: Duration::from_secs(1),
            ..NetConfig::default()
        };
        let server = MasterServer::bind_with(
            "127.0.0.1:0",
            MasterConfig {
                policy: Policy::pss_default(),
                adjustment: true,
                dispatch: Default::default(),
            },
            1,
            net.clone(),
        )
        .unwrap();
        let addr = server.local_addr().unwrap();

        let outcome = std::thread::scope(|scope| {
            let q = &queries;
            let s = &subjects;
            let net = &net;
            scope.spawn(move || {
                // Connect, say nothing, wait for the master to hang up.
                let stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream);
                let mut sink = String::new();
                while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
                    sink.clear();
                }
            });
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(100));
                run_slave_with(
                    addr,
                    "real",
                    1.0,
                    &StripedBackend::default(),
                    q,
                    s,
                    &scoring(),
                    3,
                    net,
                )
                .expect("real slave ok")
            });
            server
                .serve(specs)
                .expect("server unaffected by silent probe")
        });
        assert!(outcome.completed_by.iter().all(|n| n == "real"));
    }

    /// With a registration timeout, a no-show slave no longer hangs the
    /// server: the barrier opens with whoever did register.
    #[test]
    fn register_timeout_proceeds_with_fewer_slaves() {
        let (queries, subjects, specs) = tiny_workload();
        let net = NetConfig {
            register_timeout: Some(Duration::from_millis(300)),
            ..NetConfig::default()
        };
        let server = MasterServer::bind_with(
            "127.0.0.1:0",
            MasterConfig {
                policy: Policy::pss_default(),
                adjustment: true,
                dispatch: Default::default(),
            },
            2, // the second slave never shows up
            net,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();

        let outcome = std::thread::scope(|scope| {
            let q = &queries;
            let s = &subjects;
            scope.spawn(move || {
                run_slave(
                    addr,
                    "only",
                    1.0,
                    &StripedBackend::default(),
                    q,
                    s,
                    &scoring(),
                    3,
                )
                .expect("lone slave completes everything")
            });
            server.serve(specs).expect("server proceeds degraded")
        });
        assert!(outcome.completed_by.iter().all(|n| n == "only"));
    }

    /// With no slave at all, `serve` returns instead of blocking forever
    /// in accept.
    #[test]
    fn register_timeout_with_no_slaves_errors_out() {
        let (_queries, _subjects, specs) = tiny_workload();
        let net = NetConfig {
            register_timeout: Some(Duration::from_millis(200)),
            ..NetConfig::default()
        };
        let server =
            MasterServer::bind_with("127.0.0.1:0", MasterConfig::default(), 1, net).unwrap();
        let err = server.serve(specs).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    /// The slave side of fault tolerance: a dropped connection is retried
    /// with backoff, and the second session completes the work.
    #[test]
    fn slave_reconnects_after_connection_drop() {
        let (queries, subjects, _specs) = tiny_workload();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let net = NetConfig {
            heartbeat_interval: Duration::from_secs(10), // keep the transcript clean
            reconnect_backoff_initial: Duration::from_millis(10),
            ..NetConfig::default()
        };

        let executed = std::thread::scope(|scope| {
            let q = &queries;
            let s = &subjects;
            let net = &net;
            let slave = scope.spawn(move || {
                run_slave_with(
                    addr,
                    "phoenix",
                    1.0,
                    &StripedBackend::default(),
                    q,
                    s,
                    &scoring(),
                    3,
                    net,
                )
            });
            // Session 1: take the registration, then drop the connection.
            {
                let (stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(stream);
                assert!(matches!(
                    recv::<_, SlaveMsg>(&mut reader).unwrap(),
                    Some(SlaveMsg::Register { .. })
                ));
            }
            // Session 2: full handshake, one task, done.
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = BufWriter::new(stream);
            assert!(matches!(
                recv::<_, SlaveMsg>(&mut reader).unwrap(),
                Some(SlaveMsg::Register { .. })
            ));
            send(&mut writer, &MasterMsg::Registered { pe_id: 0 }).unwrap();
            loop {
                match recv::<_, SlaveMsg>(&mut reader).unwrap() {
                    Some(SlaveMsg::Request) => break,
                    Some(SlaveMsg::Heartbeat) => {}
                    other => panic!("unexpected {other:?}"),
                }
            }
            send(&mut writer, &MasterMsg::Execute { task: 0 }).unwrap();
            let mut finished = false;
            loop {
                match recv::<_, SlaveMsg>(&mut reader).unwrap() {
                    Some(SlaveMsg::Heartbeat) | Some(SlaveMsg::Started { .. }) => {}
                    Some(SlaveMsg::Finished { task, gcups, .. }) => {
                        assert_eq!(task, 0);
                        assert!(gcups > 0.0, "finished with degenerate speed {gcups}");
                        finished = true;
                    }
                    Some(SlaveMsg::Request) if finished => break,
                    other => panic!("unexpected {other:?}"),
                }
            }
            send(&mut writer, &MasterMsg::Done).unwrap();
            slave.join().unwrap()
        })
        .unwrap();
        assert_eq!(executed, 1);
    }

    #[test]
    fn distributed_equals_local_runtime_results() {
        let (queries, subjects, specs) = tiny_workload();
        let server = MasterServer::bind(
            "127.0.0.1:0",
            MasterConfig {
                policy: Policy::SelfScheduling,
                adjustment: false,
                dispatch: Default::default(),
            },
            1,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let outcome = std::thread::scope(|scope| {
            let q = &queries;
            let s = &subjects;
            scope.spawn(move || {
                run_slave(
                    addr,
                    "solo",
                    1.0,
                    &StripedBackend::default(),
                    q,
                    s,
                    &scoring(),
                    3,
                )
                .expect("slave ok")
            });
            server.serve(specs).expect("server ok")
        });

        let local = crate::runtime::run_real(
            vec![crate::runtime::RealPe {
                name: "solo".into(),
                static_gcups: 1.0,
                backend: Box::new(StripedBackend::default()),
            }],
            &queries,
            &subjects,
            &scoring(),
            crate::runtime::RuntimeConfig {
                master: MasterConfig {
                    policy: Policy::SelfScheduling,
                    adjustment: false,
                    dispatch: Default::default(),
                },
                top_n: 3,
            },
        );
        let key = |hits: &[QueryHit]| {
            let mut v: Vec<(usize, usize, i32)> = hits
                .iter()
                .map(|h| (h.query_index, h.hit.db_index, h.hit.score))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(key(&outcome.hits), key(&local.hits));
    }
}
