//! Per-PE observed-speed statistics — the Ω-window weighted mean of PSS.
//!
//! "To distribute tasks to PEs, the master analyzes periodic notifications
//! sent by the slave PEs, reporting the progress in processing tasks. It
//! then calculates the weighted mean from the last Ω notifications sent by
//! each pᵢ slave PE. A small Ω indicates that only very recent histories
//! will be considered … high values for Ω indicate that not only recent
//! histories will be considered but also older ones." (§IV-A-2)
//!
//! The weights are linear-decay: the most recent of the Ω retained samples
//! has weight Ω, the oldest weight 1.

use std::collections::VecDeque;

/// Smallest duration (seconds) a real runtime will divide by when turning a
/// completed task into a speed observation.
///
/// Wall-clock timers can report a zero (or denormal) elapsed time for a tiny
/// task. Reporting `0.0` GCUPS for such a completion used to *poison* the
/// Ω-window mean: an instantaneously-finished task — the strongest possible
/// evidence of a *fast* PE — dragged its speed estimate towards zero.
/// Clamping the denominator turns the same measurement into a very large
/// (but finite, so not discarded by [`PeSpeedStats::observe`]) speed.
pub const MIN_MEASURED_SECONDS: f64 = 1e-6;

/// Convert a completed task's `cells` / `seconds` measurement into a GCUPS
/// observation, clamping the duration to [`MIN_MEASURED_SECONDS`].
///
/// Both real drivers (the threaded runtime and the TCP slave) report task
/// speeds through this helper; the virtual-time simulator keeps its own
/// exact arithmetic.
pub fn observed_gcups(cells: u64, seconds: f64) -> f64 {
    cells as f64 / seconds.max(MIN_MEASURED_SECONDS) / 1e9
}

/// Observed-speed history of one PE.
#[derive(Debug, Clone)]
pub struct PeSpeedStats {
    /// Static (theoretical) GCUPS supplied at registration; used until the
    /// first observation arrives.
    pub static_gcups: f64,
    omega: usize,
    /// `(time, gcups)` samples, oldest first, at most `omega` retained.
    samples: VecDeque<(f64, f64)>,
}

impl PeSpeedStats {
    /// New history with window `omega` (≥ 1) and a static prior.
    pub fn new(static_gcups: f64, omega: usize) -> PeSpeedStats {
        assert!(omega >= 1, "Ω must be at least 1");
        assert!(static_gcups > 0.0, "static speed must be positive");
        PeSpeedStats {
            static_gcups,
            omega,
            samples: VecDeque::with_capacity(omega),
        }
    }

    /// Record an observation (a progress notification or a completed task's
    /// implicit speed report).
    pub fn observe(&mut self, time: f64, gcups: f64) {
        if !(gcups.is_finite() && gcups >= 0.0) {
            return; // ignore degenerate observations
        }
        if self.samples.len() == self.omega {
            self.samples.pop_front();
        }
        self.samples.push_back((time, gcups));
    }

    /// Number of retained samples.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// Whether any observation has been recorded.
    pub fn has_observations(&self) -> bool {
        !self.samples.is_empty()
    }

    /// The Ω-window linearly-weighted mean speed, or the static prior when
    /// no observation exists yet.
    pub fn weighted_mean_gcups(&self) -> f64 {
        if self.samples.is_empty() {
            return self.static_gcups;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &(_, g)) in self.samples.iter().enumerate() {
            let w = (i + 1) as f64; // oldest weight 1, newest weight len
            num += w * g;
            den += w;
        }
        num / den
    }

    /// Raw samples (oldest first) — used by the Fig. 7/8 trace exports.
    pub fn samples(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.samples.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_used_until_first_observation() {
        let s = PeSpeedStats::new(30.0, 4);
        assert_eq!(s.weighted_mean_gcups(), 30.0);
        assert!(!s.has_observations());
    }

    #[test]
    fn single_observation_replaces_prior() {
        let mut s = PeSpeedStats::new(30.0, 4);
        s.observe(1.0, 2.0);
        assert_eq!(s.weighted_mean_gcups(), 2.0);
    }

    #[test]
    fn recent_samples_weigh_more() {
        let mut s = PeSpeedStats::new(1.0, 3);
        s.observe(1.0, 10.0);
        s.observe(2.0, 10.0);
        s.observe(3.0, 1.0); // speed collapsed
                             // Weighted mean (1*10 + 2*10 + 3*1) / 6 = 33/6 = 5.5 — well below
                             // the plain mean 7.0: the collapse is noticed quickly.
        assert!((s.weighted_mean_gcups() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn window_evicts_oldest() {
        let mut s = PeSpeedStats::new(1.0, 2);
        s.observe(1.0, 100.0);
        s.observe(2.0, 4.0);
        s.observe(3.0, 4.0);
        assert_eq!(s.sample_count(), 2);
        // The 100.0 sample fell out of the window entirely.
        assert!((s.weighted_mean_gcups() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn small_omega_adapts_faster_than_large() {
        let mut fast = PeSpeedStats::new(1.0, 2);
        let mut slow = PeSpeedStats::new(1.0, 10);
        for t in 0..10 {
            fast.observe(t as f64, 10.0);
            slow.observe(t as f64, 10.0);
        }
        fast.observe(10.0, 1.0);
        slow.observe(10.0, 1.0);
        assert!(fast.weighted_mean_gcups() < slow.weighted_mean_gcups());
    }

    #[test]
    fn degenerate_observations_ignored() {
        let mut s = PeSpeedStats::new(5.0, 3);
        s.observe(1.0, f64::NAN);
        s.observe(2.0, -3.0);
        s.observe(3.0, f64::INFINITY);
        assert!(!s.has_observations());
        assert_eq!(s.weighted_mean_gcups(), 5.0);
    }

    #[test]
    #[should_panic(expected = "Ω must be at least 1")]
    fn zero_omega_rejected() {
        PeSpeedStats::new(1.0, 0);
    }

    #[test]
    fn zero_duration_completion_never_lowers_the_estimate() {
        // Regression for the PSS-poisoning bug: a task that completes in
        // less than the timer resolution must raise (or leave) the speed
        // estimate, never drag it towards zero.
        let mut s = PeSpeedStats::new(30.0, 4);
        s.observe(1.0, 25.0);
        let before = s.weighted_mean_gcups();
        let g = observed_gcups(1_000_000, 0.0);
        assert!(g.is_finite() && g > 0.0);
        s.observe(2.0, g);
        assert!(
            s.weighted_mean_gcups() >= before,
            "zero-duration completion lowered the estimate: {} -> {}",
            before,
            s.weighted_mean_gcups()
        );
    }

    #[test]
    fn observed_gcups_matches_plain_division_for_normal_durations() {
        let g = observed_gcups(2_000_000_000, 2.0);
        assert!((g - 1.0).abs() < 1e-12);
    }
}
