//! The master process (Fig. 4) — a thin façade over the scheduling engine.
//!
//! The master waits for slaves to register, converts the input files, and
//! then serves task requests: under a dynamic policy it pops ready tasks in
//! file order (batch size from the policy); once the ready queue is empty
//! the **workload adjustment mechanism** (if enabled) hands an idle PE a
//! replica of the executing task with the largest estimated remaining work.
//! The first PE to complete a task wins; the master cancels the other
//! replicas. Slaves give the master implicit speed information when they
//! ask for more work and explicit information through periodic progress
//! notifications.
//!
//! Every one of those decisions is made by [`crate::sched::Scheduler`] —
//! this module only re-exports the engine's vocabulary under its
//! historical names and wraps it in [`Master`]. The façade is deliberately
//! free of any notion of *how* time passes or *how* tasks execute: the
//! discrete-event simulator ([`crate::sim`], on a
//! [`crate::sched::VirtualClock`]) and the real runtimes ([`crate::pool`],
//! [`crate::runtime`], the TCP transport — all on a
//! [`crate::sched::WallClock`]) drive the same engine, which is what makes
//! the simulation a faithful reproduction of the scheduling behaviour.

pub use crate::sched::{Assignment, Dispatch, EventSink, MasterConfig};

use crate::sched::Scheduler;
use crate::task::{PeId, TaskId, TaskPool};
use crate::trace::{EventKind, RuntimeEvent};
use swhybrid_device::task::TaskSpec;

/// The master process: the driver-facing handle on one
/// [`Scheduler`](crate::sched::Scheduler) run.
#[derive(Debug)]
pub struct Master {
    engine: Scheduler,
}

impl Master {
    /// Create a master for a workload.
    pub fn new(specs: Vec<TaskSpec>, config: MasterConfig) -> Master {
        Master {
            engine: Scheduler::new(specs, config),
        }
    }

    /// Install a live event tap (see [`EventSink`]).
    pub fn set_event_sink(&mut self, sink: impl FnMut(&RuntimeEvent) + Send + 'static) {
        self.engine.set_event_sink(sink);
    }

    /// Keep the master alive across workloads: with `keep_alive` set, a
    /// drained pool yields [`Assignment::Wait`] (PEs idle at the barrier)
    /// instead of [`Assignment::Done`], until more tasks arrive through
    /// [`Master::submit_tasks`] or keep-alive is cleared for shutdown.
    pub fn set_keep_alive(&mut self, keep_alive: bool) {
        self.engine.set_keep_alive(keep_alive);
    }

    /// Whether the master outlives a drained pool (see
    /// [`Master::set_keep_alive`]).
    pub fn keep_alive(&self) -> bool {
        self.engine.keep_alive()
    }

    /// Append a new batch of tasks to the pool mid-run (multi-batch
    /// lifecycle). Returns the assigned task ids, in submission order.
    pub fn submit_tasks(&mut self, specs: Vec<TaskSpec>) -> Vec<TaskId> {
        self.engine.submit_tasks(specs)
    }

    /// Record a driver-observed event at time `time` (e.g. the TCP
    /// master's liveness verdicts).
    pub fn record_event(&mut self, time: f64, kind: EventKind) {
        self.engine.record_event(time, kind);
    }

    /// The event stream so far.
    pub fn events(&self) -> &[RuntimeEvent] {
        self.engine.events()
    }

    /// Take ownership of the event stream (leaves it empty).
    pub fn take_events(&mut self) -> Vec<RuntimeEvent> {
        self.engine.take_events()
    }

    /// Register a slave PE; `static_gcups` is its theoretical speed (used
    /// by WFixed and as the PSS prior until observations arrive).
    pub fn register(&mut self, name: impl Into<String>, static_gcups: f64) -> PeId {
        self.engine.register(name, static_gcups)
    }

    /// Name of a PE.
    pub fn pe_name(&self, pe: PeId) -> &str {
        self.engine.pe_name(pe)
    }

    /// Number of registered PEs.
    pub fn pe_count(&self) -> usize {
        self.engine.pe_count()
    }

    /// The task pool (read-only).
    pub fn pool(&self) -> &TaskPool {
        self.engine.pool()
    }

    /// Whether every task has finished.
    pub fn all_finished(&self) -> bool {
        self.engine.all_finished()
    }

    /// Current speed estimates (GCUPS) for every PE.
    pub fn speed_estimates(&self) -> Vec<f64> {
        self.engine.speed_estimates()
    }

    /// A PE asks for work at time `now`.
    pub fn request(&mut self, pe: PeId, now: f64) -> Assignment {
        self.engine.request(pe, now)
    }

    /// Estimated cells still to compute for an executing task: the minimum
    /// over its executors of `cells − speed × elapsed` (a task assigned but
    /// not started counts as entirely remaining).
    pub fn estimated_remaining_cells(&self, task: TaskId, now: f64) -> f64 {
        self.engine.estimated_remaining_cells(task, now)
    }

    /// A PE reports that it has *started* executing a task.
    pub fn task_started(&mut self, pe: PeId, task: TaskId, now: f64) {
        self.engine.task_started(pe, task, now);
    }

    /// A PE reports a periodic progress notification (observed GCUPS since
    /// the previous notification).
    pub fn notify_progress(&mut self, pe: PeId, now: f64, gcups: f64) {
        self.engine.notify_progress(pe, now, gcups);
    }

    /// A PE reports task completion. `measured_gcups` is the implicit speed
    /// information of the request/response cycle. Returns the PEs whose
    /// replicas of this task must be cancelled (empty if the task was
    /// already finished by someone else — the caller should then discard
    /// this PE's result).
    pub fn task_finished(
        &mut self,
        pe: PeId,
        task: TaskId,
        now: f64,
        measured_gcups: Option<f64>,
    ) -> Vec<PeId> {
        self.engine.task_finished(pe, task, now, measured_gcups)
    }

    /// A PE leaves the platform (membership extension): its held tasks —
    /// running or queued — are handed back so they return to ready unless a
    /// replica survives elsewhere.
    pub fn pe_leaves(&mut self, pe: PeId, held: &[TaskId]) {
        self.engine.pe_leaves(pe, held);
    }

    /// A late PE joins (membership extension). `now` stamps the
    /// [`EventKind::PeJoined`] event.
    pub fn pe_joins(&mut self, name: impl Into<String>, static_gcups: f64, now: f64) -> PeId {
        self.engine.pe_joins(name, static_gcups, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;

    fn specs(n: usize) -> Vec<TaskSpec> {
        (0..n)
            .map(|id| TaskSpec {
                id,
                query_len: 1000,
                queries: 1,
                db_residues: 1_000_000_000,
                db_sequences: 10_000,
            })
            .collect()
    }

    fn master(n_tasks: usize, policy: Policy, adjustment: bool) -> Master {
        Master::new(
            specs(n_tasks),
            MasterConfig {
                policy,
                adjustment,
                dispatch: Default::default(),
            },
        )
    }

    #[test]
    fn ss_hands_one_task_per_request() {
        let mut m = master(3, Policy::SelfScheduling, true);
        let a = m.register("pe0", 1.0);
        assert_eq!(m.request(a, 0.0), Assignment::Tasks(vec![0]));
        assert_eq!(m.request(a, 0.0), Assignment::Tasks(vec![1]));
    }

    #[test]
    fn pss_first_allocation_is_one_then_adapts() {
        let mut m = master(20, Policy::pss_default(), true);
        let gpu = m.register("gpu0", 30.0);
        let sse = m.register("sse0", 3.0);
        // "In the first allocation, the master assigns one work unit for
        // each slave" — regardless of priors.
        assert_eq!(m.request(gpu, 0.0), Assignment::Tasks(vec![0]));
        assert_eq!(m.request(sse, 0.0), Assignment::Tasks(vec![1]));
        // The GPU reports completion: observed 30 GCUPS vs the SSE's 3.0
        // prior → Φ = 10.
        m.task_finished(gpu, 0, 1.0, Some(30.0));
        match m.request(gpu, 1.0) {
            Assignment::Tasks(t) => assert_eq!(t.len(), 10),
            other => panic!("{other:?}"),
        }
        // Observations can also overturn the prior downwards.
        m.notify_progress(sse, 2.0, 40.0); // the "SSE" is actually fast
        match m.request(sse, 2.0) {
            Assignment::Tasks(t) => assert_eq!(t.len(), 1), // 40/30 rounds to 1
            other => panic!("{other:?}"),
        }
    }

    /// Regression: a PE that joins (or reconnects) mid-run re-enters the
    /// Ω window with only its static prior. That prior is a `min_alive`
    /// candidate, so before the clamp a wildly wrong one would hand every
    /// *other* PE a mis-calibrated Φ batch until the joiner's first real
    /// measurement landed. The fleet must instead drop to the SS grain
    /// for exactly that interval.
    #[test]
    fn late_join_clamps_fleet_to_ss_until_first_measurement() {
        let mut m = master(40, Policy::pss_default(), true);
        let gpu = m.register("gpu0", 30.0);
        let sse = m.register("sse0", 3.0);
        assert_eq!(m.request(gpu, 0.0), Assignment::Tasks(vec![0]));
        assert_eq!(m.request(sse, 0.0), Assignment::Tasks(vec![1]));
        m.task_finished(gpu, 0, 1.0, Some(30.0));
        m.task_finished(sse, 1, 1.0, Some(3.0));
        // Calibrated fleet: Φ = round(30/3) = 10 for the GPU.
        let batch = match m.request(gpu, 1.0) {
            Assignment::Tasks(t) => {
                assert_eq!(t.len(), 10);
                t
            }
            other => panic!("{other:?}"),
        };
        for t in batch {
            m.task_finished(gpu, t, 1.5, Some(30.0));
        }
        // A PE joins mid-run with a wildly wrong (tiny) static prior.
        // Unclamped, min_alive = 0.05 and the GPU's next Φ would be
        // round(30/0.05) = 600 — the whole fleet must clamp to SS instead.
        let joiner = m.pe_joins("joiner", 0.05, 2.0);
        match m.request(gpu, 2.0) {
            Assignment::Tasks(t) => assert_eq!(
                t.len(),
                1,
                "fleet must hold the SS grain while the joiner is unobserved"
            ),
            other => panic!("{other:?}"),
        }
        // The joiner itself starts on the first-allocation rule.
        let t_joiner = match m.request(joiner, 2.0) {
            Assignment::Tasks(t) => {
                assert_eq!(t.len(), 1);
                t[0]
            }
            other => panic!("{other:?}"),
        };
        // Its first real measurement replaces the prior in the Ω window
        // and lifts the clamp: Φ resumes against measured speeds only
        // (min_alive is the SSE's observed 3.0, not the joiner's prior).
        m.task_finished(joiner, t_joiner, 3.0, Some(5.0));
        match m.request(gpu, 3.0) {
            Assignment::Tasks(t) => assert_eq!(t.len(), 10),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn adjustment_replicates_when_ready_drains() {
        let mut m = master(2, Policy::SelfScheduling, true);
        let a = m.register("a", 1.0);
        let b = m.register("b", 1.0);
        assert_eq!(m.request(a, 0.0), Assignment::Tasks(vec![0]));
        assert_eq!(m.request(b, 0.0), Assignment::Tasks(vec![1]));
        m.task_started(a, 0, 0.0);
        m.task_started(b, 1, 0.0);
        // a finishes its task and asks again: only b's task is executing.
        assert!(m.task_finished(a, 0, 5.0, Some(1.0)).is_empty());
        assert_eq!(m.request(a, 5.0), Assignment::Replicate(1));
        // b's task now has two executors; when b finishes first, a must be
        // cancelled.
        m.task_started(a, 1, 5.0);
        let cancels = m.task_finished(b, 1, 6.0, Some(1.0));
        assert_eq!(cancels, vec![a]);
        assert!(m.all_finished());
        assert_eq!(m.request(a, 6.0), Assignment::Done);
    }

    #[test]
    fn no_adjustment_means_wait() {
        let mut m = master(2, Policy::SelfScheduling, false);
        let a = m.register("a", 1.0);
        let b = m.register("b", 1.0);
        m.request(a, 0.0);
        m.request(b, 0.0);
        m.task_finished(a, 0, 5.0, None);
        assert_eq!(m.request(a, 5.0), Assignment::Wait);
    }

    #[test]
    fn replication_never_duplicates_onto_same_pe() {
        let mut m = master(1, Policy::SelfScheduling, true);
        let a = m.register("a", 1.0);
        assert_eq!(m.request(a, 0.0), Assignment::Tasks(vec![0]));
        m.task_started(a, 0, 0.0);
        // a itself asks again — it cannot replicate its own task.
        assert_eq!(m.request(a, 1.0), Assignment::Wait);
    }

    #[test]
    fn replication_prefers_larger_remaining_work() {
        let mut m = master(2, Policy::SelfScheduling, true);
        let a = m.register("a", 1.0);
        let b = m.register("b", 1.0);
        let c = m.register("c", 1.0);
        m.request(a, 0.0);
        m.request(b, 0.0);
        m.task_started(a, 0, 0.0);
        // b starts later, so more of task 1 remains at t=400.
        m.task_started(b, 1, 300.0);
        match m.request(c, 400.0) {
            Assignment::Replicate(t) => assert_eq!(t, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unstarted_batch_entries_are_stolen_when_beneficial() {
        let mut m = master(3, Policy::Pss { omega: 3 }, true);
        let a = m.register("a", 3.0);
        let b = m.register("b", 2.0);
        // First allocation: one task. a completes it, reporting 3 GCUPS.
        assert_eq!(m.request(a, 0.0), Assignment::Tasks(vec![0]));
        m.task_started(a, 0, 0.0);
        m.task_finished(a, 0, 333.0, Some(3.0));
        // Φ = round(3/2) = 2: a takes the remaining two tasks as a batch
        // and starts the first.
        match m.request(a, 333.0) {
            Assignment::Tasks(t) => assert_eq!(t, vec![1, 2]),
            other => panic!("{other:?}"),
        }
        m.task_started(a, 1, 333.0);
        // a's backlog ≈ 2 tasks at 3 GCUPS (ETA ≈ 667 s); b at 2 GCUPS
        // would finish task 2 in 500 s → the takeover is beneficial and no
        // work is lost.
        match m.request(b, 333.0) {
            Assignment::Steal { task, from } => {
                assert_eq!(task, 2);
                assert_eq!(from, a);
                // The stolen task now belongs to b alone.
                assert_eq!(m.pool().get(task).executors, vec![b]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn harmful_takeover_degrades_to_replication() {
        // A very slow idle PE must NOT move a big task off a fast PE's
        // queue — it replicates instead, so the fast PE still gets to run
        // the original.
        let mut m = master(3, Policy::Pss { omega: 3 }, true);
        let fast = m.register("fast", 30.0);
        let slow = m.register("slow", 1.0);
        m.notify_progress(fast, 0.0, 30.0);
        match m.request(fast, 0.0) {
            Assignment::Tasks(t) => assert_eq!(t, vec![0, 1, 2]),
            other => panic!("{other:?}"),
        }
        m.task_started(fast, 0, 0.0);
        match m.request(slow, 0.0) {
            Assignment::Replicate(t) => {
                assert!(t == 1 || t == 2);
                // The fast PE still holds the task.
                assert!(m.pool().get(t).executors.contains(&fast));
            }
            other => panic!("expected replication, got {other:?}"),
        }
    }

    #[test]
    fn fixed_policy_splits_upfront_and_stops() {
        let mut m = master(4, Policy::Fixed, false);
        let a = m.register("a", 30.0);
        let b = m.register("b", 1.0);
        match m.request(a, 0.0) {
            Assignment::Tasks(t) => assert_eq!(t.len(), 2),
            other => panic!("{other:?}"),
        }
        match m.request(b, 0.0) {
            Assignment::Tasks(t) => assert_eq!(t.len(), 2),
            other => panic!("{other:?}"),
        }
        // Quotas exhausted.
        assert_eq!(m.request(a, 1.0), Assignment::Wait);
    }

    #[test]
    fn wfixed_policy_splits_by_static_speed() {
        let mut m = master(11, Policy::WFixed, false);
        let a = m.register("gpu", 30.0);
        let b = m.register("sse", 3.0);
        let got_a = match m.request(a, 0.0) {
            Assignment::Tasks(t) => t.len(),
            other => panic!("{other:?}"),
        };
        let got_b = match m.request(b, 0.0) {
            Assignment::Tasks(t) => t.len(),
            other => panic!("{other:?}"),
        };
        assert_eq!(got_a + got_b, 11);
        assert_eq!(got_a, 10);
        assert_eq!(got_b, 1);
    }

    #[test]
    fn late_finisher_result_is_discarded() {
        let mut m = master(1, Policy::SelfScheduling, true);
        let a = m.register("a", 1.0);
        let b = m.register("b", 1.0);
        m.request(a, 0.0);
        m.task_started(a, 0, 0.0);
        assert_eq!(m.request(b, 0.1), Assignment::Replicate(0));
        m.task_started(b, 0, 0.1);
        let cancels = m.task_finished(b, 0, 1.0, None);
        assert_eq!(cancels, vec![a]);
        // a crosses the line later: empty cancel list signals "discard".
        assert!(m.task_finished(a, 0, 1.1, None).is_empty());
    }

    #[test]
    fn leave_returns_tasks_to_ready() {
        let mut m = master(2, Policy::Pss { omega: 3 }, true);
        let a = m.register("a", 2.0);
        let b = m.register("b", 1.0);
        m.notify_progress(a, 0.0, 2.0);
        match m.request(a, 0.0) {
            Assignment::Tasks(t) => assert_eq!(t, vec![0, 1]),
            other => panic!("{other:?}"),
        }
        m.task_started(a, 0, 0.0);
        m.pe_leaves(a, &[0, 1]);
        // Both tasks are ready again; b picks them up.
        match m.request(b, 1.0) {
            Assignment::Tasks(t) => assert!(!t.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn join_mid_run_participates() {
        let mut m = master(3, Policy::SelfScheduling, true);
        let a = m.register("a", 1.0);
        m.request(a, 0.0);
        let late = m.pe_joins("late", 5.0, 1.0);
        match m.request(late, 1.0) {
            Assignment::Tasks(t) => assert_eq!(t, vec![1]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "register before the first request")]
    fn static_policy_registration_after_request_rejected() {
        let mut m = master(4, Policy::Fixed, false);
        let a = m.register("a", 1.0);
        m.request(a, 0.0);
        m.register("b", 1.0);
    }

    #[test]
    fn event_stream_records_the_full_run() {
        use crate::trace::EventKind as E;
        let mut m = master(2, Policy::SelfScheduling, true);
        let a = m.register("a", 1.0);
        let b = m.register("b", 1.0);
        m.request(a, 0.0);
        m.request(b, 0.0);
        m.task_started(a, 0, 0.0);
        m.task_started(b, 1, 0.0);
        m.task_finished(a, 0, 5.0, Some(1.0));
        assert_eq!(m.request(a, 5.0), Assignment::Replicate(1));
        m.task_started(a, 1, 5.0);
        m.task_finished(b, 1, 6.0, Some(1.0));
        let names: Vec<&str> = m.events().iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            names,
            vec![
                "pe_registered",
                "pe_registered",
                "tasks_assigned",
                "tasks_assigned",
                "task_started",
                "task_started",
                "task_finished",
                "task_replicated",
                "task_started",
                "task_finished",
                "replica_cancelled",
                "run_completed",
            ]
        );
        // The replica a ran for 1 s at ~1 GCUPS: its wasted work is counted.
        let wasted = m.events().iter().find_map(|e| match e.kind {
            E::ReplicaCancelled { wasted_cells, .. } => Some(wasted_cells),
            _ => None,
        });
        assert!(wasted.unwrap() > 0);
        // take_events drains.
        assert_eq!(m.take_events().len(), 12);
        assert!(m.events().is_empty());
    }

    #[test]
    fn keep_alive_waits_across_batches_and_replays_completion() {
        use crate::trace::EventKind as E;
        let mut m = master(1, Policy::SelfScheduling, true);
        m.set_keep_alive(true);
        let a = m.register("a", 1.0);
        assert_eq!(m.request(a, 0.0), Assignment::Tasks(vec![0]));
        m.task_started(a, 0, 0.0);
        m.task_finished(a, 0, 1.0, Some(1.0));
        assert!(m.all_finished());
        // Drained but kept alive: the PE idles instead of exiting.
        assert_eq!(m.request(a, 1.0), Assignment::Wait);
        // A second batch arrives and is scheduled like any other work.
        let ids = m.submit_tasks(specs(2));
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(m.request(a, 2.0), Assignment::Tasks(vec![1]));
        m.task_started(a, 1, 2.0);
        m.task_finished(a, 1, 3.0, Some(1.0));
        assert_eq!(m.request(a, 3.0), Assignment::Tasks(vec![2]));
        m.task_started(a, 2, 3.0);
        m.task_finished(a, 2, 4.0, Some(1.0));
        // Each drain emits its own run_completed.
        let completions = m
            .events()
            .iter()
            .filter(|e| matches!(e.kind, E::RunCompleted))
            .count();
        assert_eq!(completions, 2);
        // Shutdown: clearing keep-alive lets the PE exit.
        m.set_keep_alive(false);
        assert_eq!(m.request(a, 5.0), Assignment::Done);
    }

    #[test]
    fn event_sink_sees_every_event_in_order() {
        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut m = master(1, Policy::SelfScheduling, true);
        let tap = Arc::clone(&seen);
        m.set_event_sink(move |e| tap.lock().unwrap().push(e.kind.name()));
        let a = m.register("a", 1.0);
        m.request(a, 0.0);
        m.task_started(a, 0, 0.0);
        m.task_finished(a, 0, 1.0, Some(1.0));
        let streamed = seen.lock().unwrap().clone();
        let stored: Vec<&str> = m.events().iter().map(|e| e.kind.name()).collect();
        assert_eq!(streamed, stored);
        assert!(streamed.contains(&"run_completed"));
    }

    #[test]
    #[should_panic(expected = "dynamic policy")]
    fn static_policy_rejects_multi_batch() {
        let mut m = master(2, Policy::Fixed, false);
        m.register("a", 1.0);
        m.submit_tasks(specs(1));
    }

    #[test]
    fn leave_emits_requeue_only_for_returned_tasks() {
        use crate::trace::EventKind as E;
        let mut m = master(2, Policy::Pss { omega: 3 }, true);
        // Φ(a) = round(1.8/1.0) = 2, so a takes both tasks — yet b would
        // still finish the unstarted one before a's two-task backlog drains,
        // so the takeover is beneficial.
        let a = m.register("a", 1.8);
        let b = m.register("b", 1.0);
        m.notify_progress(a, 0.0, 1.8);
        m.request(a, 0.0); // a takes both tasks
        m.task_started(a, 0, 0.0);
        assert_eq!(m.request(b, 0.1), Assignment::Steal { task: 1, from: a });
        m.task_started(b, 1, 0.1);
        // a dies holding task 0 (task 1 was stolen away already).
        m.pe_leaves(a, &[0]);
        let requeued: Vec<_> = m
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                E::TaskRequeued { task, from } => Some((task, from)),
                _ => None,
            })
            .collect();
        assert_eq!(requeued, vec![(0, a)]);
    }
}
