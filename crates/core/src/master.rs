//! The master's state machine (Fig. 4).
//!
//! The master waits for slaves to register, converts the input files, and
//! then serves task requests: under a dynamic policy it pops ready tasks in
//! file order (batch size from the policy); once the ready queue is empty
//! the **workload adjustment mechanism** (if enabled) hands an idle PE a
//! replica of the executing task with the largest estimated remaining work.
//! The first PE to complete a task wins; the master cancels the other
//! replicas. Slaves give the master implicit speed information when they
//! ask for more work and explicit information through periodic progress
//! notifications.
//!
//! This state machine is deliberately free of any notion of *how* time
//! passes or *how* tasks execute: both the discrete-event simulator
//! ([`crate::sim`]) and the real threaded runtime ([`crate::runtime`])
//! drive the same code, which is what makes the simulation a faithful
//! reproduction of the scheduling behaviour.

use crate::policy::Policy;
use crate::stats::PeSpeedStats;
use crate::task::{PeId, TaskId, TaskPool, TaskState};
use crate::trace::{EventKind, RuntimeEvent};
use std::collections::HashMap;
use swhybrid_device::task::TaskSpec;

/// How ready tasks are picked for a requesting PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dispatch {
    /// Query-file order (the paper's behaviour): first ready task first,
    /// regardless of who asks.
    #[default]
    FileOrder,
    /// Extension: PEs at or above the mean estimated speed take the largest
    /// ready tasks, slower PEs the smallest — a slow PE can then never
    /// become the lone straggler on a huge task (see the
    /// `ablation_dispatch` experiment).
    SizeAware,
}

/// Master configuration: the user-selected policy and whether the workload
/// adjustment mechanism is active.
#[derive(Debug, Clone, Copy)]
pub struct MasterConfig {
    /// Task allocation policy.
    pub policy: Policy,
    /// Whether idle PEs replicate executing tasks once the ready queue is
    /// empty (§IV-A-3).
    pub adjustment: bool,
    /// Ready-queue dispatch order.
    pub dispatch: Dispatch,
}

impl Default for MasterConfig {
    fn default() -> Self {
        MasterConfig {
            policy: Policy::pss_default(),
            adjustment: true,
            dispatch: Dispatch::FileOrder,
        }
    }
}

/// What the master answers to a work request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Assignment {
    /// Fresh ready tasks, in allocation order.
    Tasks(Vec<TaskId>),
    /// Take over a task that was assigned to another PE's batch but has not
    /// started there yet: the task moves wholesale (no work is lost). The
    /// `from` PE must drop it from its local queue.
    Steal {
        /// The reassigned task.
        task: TaskId,
        /// The PE it is taken from.
        from: PeId,
    },
    /// A replica of a task another PE is already *running*; whichever copy
    /// finishes first wins and the others are cancelled.
    Replicate(TaskId),
    /// Nothing for this PE right now (it may be re-polled if tasks are
    /// released back to ready, e.g. when a PE leaves).
    Wait,
    /// Every task is finished.
    Done,
}

/// A live tap on the master's event stream: called once per event, in
/// emission order, while the master's lock is held — keep callbacks short
/// (push to a channel, write a line). Events are still appended to the
/// in-memory stream; the sink is a copy, not a diversion.
pub struct EventSink(Box<dyn FnMut(&RuntimeEvent) + Send>);

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("EventSink(..)")
    }
}

#[derive(Debug)]
struct PeInfo {
    name: String,
    stats: PeSpeedStats,
    alive: bool,
    /// Joined after the registration barrier ([`Master::pe_joins`]). Until
    /// its first real measurement lands, such a PE sits in the Ω window
    /// with only its static prior — a bad prior there skews `min_alive`
    /// and through it every *other* PE's Φ, so [`Master::batch_for`]
    /// clamps the whole fleet to the SS grain while any alive late joiner
    /// is still unobserved.
    late_join: bool,
    /// Start times of tasks currently running on this PE (tasks assigned
    /// but not yet started are not in this map).
    running: HashMap<TaskId, f64>,
}

/// The master process.
#[derive(Debug)]
pub struct Master {
    pool: TaskPool,
    config: MasterConfig,
    pes: Vec<PeInfo>,
    /// Remaining up-front quotas for static policies, computed on the
    /// first request (all PEs must register before that point).
    quotas: Option<Vec<usize>>,
    /// Structured event stream (every scheduling decision and membership
    /// change, in emission order).
    events: Vec<RuntimeEvent>,
    /// Latest time any driver call reported; events from calls without a
    /// `now` parameter are stamped with this.
    clock: f64,
    run_completed_emitted: bool,
    /// When set, a drained pool answers [`Assignment::Wait`] instead of
    /// [`Assignment::Done`]: the master outlives its current workload and
    /// expects more batches via [`Master::submit_tasks`].
    keep_alive: bool,
    /// Optional live event tap (see [`EventSink`]).
    sink: Option<EventSink>,
}

impl Master {
    /// Create a master for a workload.
    pub fn new(specs: Vec<TaskSpec>, config: MasterConfig) -> Master {
        Master {
            pool: TaskPool::new(specs),
            config,
            pes: Vec::new(),
            quotas: None,
            events: Vec::new(),
            clock: 0.0,
            run_completed_emitted: false,
            keep_alive: false,
            sink: None,
        }
    }

    /// Install a live event tap: `sink` is called for every event from now
    /// on, in emission order (events already in the stream are not
    /// replayed). Used by the CLI to stream JSONL incrementally and by the
    /// query service to derive per-PE metrics without polling.
    pub fn set_event_sink(&mut self, sink: impl FnMut(&RuntimeEvent) + Send + 'static) {
        self.sink = Some(EventSink(Box::new(sink)));
    }

    /// Keep the master alive across workloads: with `keep_alive` set, a
    /// drained pool yields [`Assignment::Wait`] (PEs idle at the barrier)
    /// instead of [`Assignment::Done`], until more tasks arrive through
    /// [`Master::submit_tasks`] or keep-alive is cleared for shutdown.
    pub fn set_keep_alive(&mut self, keep_alive: bool) {
        self.keep_alive = keep_alive;
    }

    /// Whether the master outlives a drained pool (see
    /// [`Master::set_keep_alive`]).
    pub fn keep_alive(&self) -> bool {
        self.keep_alive
    }

    /// Append a new batch of tasks to the pool mid-run (multi-batch
    /// lifecycle). Returns the assigned task ids, in submission order.
    /// Only dynamic policies can absorb new work — static quotas are
    /// computed once against the initial workload.
    pub fn submit_tasks(&mut self, specs: Vec<TaskSpec>) -> Vec<TaskId> {
        assert!(
            !self.config.policy.is_static(),
            "multi-batch submission requires a dynamic policy"
        );
        // The next drain is a fresh completion.
        self.run_completed_emitted = false;
        let ids: Vec<TaskId> = specs.into_iter().map(|spec| self.pool.push(spec)).collect();
        self.emit(EventKind::BatchSubmitted { tasks: ids.clone() });
        ids
    }

    /// Record an event at time `time`. Drivers use this for conditions only
    /// they can see (e.g. the TCP master's liveness verdicts); the state
    /// machine emits its own scheduling events internally.
    pub fn record_event(&mut self, time: f64, kind: EventKind) {
        self.clock = self.clock.max(time);
        self.push_event(RuntimeEvent { time, kind });
    }

    fn emit(&mut self, kind: EventKind) {
        self.push_event(RuntimeEvent {
            time: self.clock,
            kind,
        });
    }

    fn push_event(&mut self, event: RuntimeEvent) {
        if let Some(EventSink(sink)) = &mut self.sink {
            sink(&event);
        }
        self.events.push(event);
    }

    /// The event stream so far.
    pub fn events(&self) -> &[RuntimeEvent] {
        &self.events
    }

    /// Take ownership of the event stream (leaves it empty).
    pub fn take_events(&mut self) -> Vec<RuntimeEvent> {
        std::mem::take(&mut self.events)
    }

    /// Register a slave PE; `static_gcups` is its theoretical speed (used
    /// by WFixed and as the PSS prior until observations arrive).
    pub fn register(&mut self, name: impl Into<String>, static_gcups: f64) -> PeId {
        assert!(
            self.quotas.is_none(),
            "all PEs must register before the first request under a static policy"
        );
        let id = self.pes.len();
        let name = name.into();
        self.emit(EventKind::PeRegistered {
            pe: id,
            name: name.clone(),
        });
        self.pes.push(PeInfo {
            name,
            stats: PeSpeedStats::new(static_gcups, self.config.policy.omega()),
            alive: true,
            late_join: false,
            running: HashMap::new(),
        });
        id
    }

    /// Name of a PE.
    pub fn pe_name(&self, pe: PeId) -> &str {
        &self.pes[pe].name
    }

    /// Number of registered PEs.
    pub fn pe_count(&self) -> usize {
        self.pes.len()
    }

    /// The task pool (read-only).
    pub fn pool(&self) -> &TaskPool {
        &self.pool
    }

    /// Whether every task has finished.
    pub fn all_finished(&self) -> bool {
        self.pool.all_finished()
    }

    /// Current speed estimates (GCUPS) for every PE.
    pub fn speed_estimates(&self) -> Vec<f64> {
        self.pes
            .iter()
            .map(|p| p.stats.weighted_mean_gcups())
            .collect()
    }

    /// A PE asks for work at time `now`.
    pub fn request(&mut self, pe: PeId, now: f64) -> Assignment {
        assert!(self.pes[pe].alive, "dead PE {pe} cannot request work");
        self.clock = self.clock.max(now);
        if self.pool.all_finished() {
            return if self.keep_alive {
                Assignment::Wait
            } else {
                Assignment::Done
            };
        }
        let batch = self.batch_for(pe);
        if batch > 0 && self.pool.ready_count() > 0 {
            let tasks = match self.config.dispatch {
                Dispatch::FileOrder => self.pool.take_ready(batch, pe),
                Dispatch::SizeAware => {
                    let speeds = self.speed_estimates();
                    let alive: Vec<f64> = speeds
                        .iter()
                        .zip(self.pes.iter())
                        .filter(|(_, p)| p.alive)
                        .map(|(&s, _)| s)
                        .collect();
                    let mean = alive.iter().sum::<f64>() / alive.len().max(1) as f64;
                    self.pool.take_ready_by_size(batch, pe, speeds[pe] >= mean)
                }
            };
            if let Some(quotas) = &mut self.quotas {
                quotas[pe] -= tasks.len().min(quotas[pe]);
            }
            self.emit(EventKind::TasksAssigned {
                pe,
                tasks: tasks.clone(),
            });
            return Assignment::Tasks(tasks);
        }
        if self.config.adjustment {
            // Prefer taking over a task that has not started anywhere —
            // no work is lost — but ONLY when this PE would finish it
            // before its current holder is even expected to get to it:
            // moving a big task onto a slow idle PE would *create* the very
            // straggler the mechanism exists to prevent. When no beneficial
            // takeover exists, fall back to replication (§IV-A-3), which by
            // construction can never delay the original execution.
            if let Some((task, from)) = self.steal_candidate(pe, now) {
                self.pool.reassign(task, from, pe);
                self.emit(EventKind::TaskStolen { pe, task, from });
                return Assignment::Steal { task, from };
            }
            if let Some(task) = self.replication_candidate(pe, now) {
                self.pool.replicate(task, pe);
                self.emit(EventKind::TaskReplicated { pe, task });
                return Assignment::Replicate(task);
            }
        }
        Assignment::Wait
    }

    /// Estimated cells a PE still has to compute across everything it
    /// currently holds (running task remainder + unstarted batch entries).
    fn backlog_cells(&self, pe: PeId, now: f64) -> f64 {
        self.pool
            .executing_ids()
            .filter(|&t| self.pool.get(t).executors.contains(&pe))
            .map(|t| match self.pes[pe].running.get(&t) {
                Some(&start) => {
                    let speed = self.pes[pe].stats.weighted_mean_gcups() * 1e9;
                    (self.pool.get(t).spec.cells() as f64 - speed * (now - start)).max(0.0)
                }
                None => self.pool.get(t).spec.cells() as f64,
            })
            .sum()
    }

    /// The most beneficial takeover: an executing task no holder has begun
    /// that `pe` would finish well before its holder's ETA.
    fn steal_candidate(&self, pe: PeId, now: f64) -> Option<(TaskId, PeId)> {
        let speeds = self.speed_estimates();
        let req_speed = (speeds[pe] * 1e9).max(1.0);
        self.pool
            .executing_ids()
            .filter_map(|t| {
                let task = self.pool.get(t);
                if task.executors.contains(&pe) {
                    return None;
                }
                // Only unstarted tasks move; started ones are replicated.
                let unstarted = task
                    .executors
                    .iter()
                    .all(|&holder| !self.pes[holder].running.contains_key(&t));
                if !unstarted {
                    return None;
                }
                let holder = *task.executors.first()?;
                let holder_speed = (speeds[holder] * 1e9).max(1.0);
                // The holder must finish its whole backlog (which includes
                // this task) before this task completes there.
                let holder_eta = self.backlog_cells(holder, now) / holder_speed;
                let req_eta = task.spec.cells() as f64 / req_speed;
                let benefit = holder_eta - req_eta;
                (benefit > 0.0).then_some((t, holder, benefit))
            })
            .max_by(|a, b| a.2.partial_cmp(&b.2).expect("benefit is finite"))
            .map(|(t, holder, _)| (t, holder))
    }

    fn batch_for(&mut self, pe: PeId) -> usize {
        if self.config.policy.is_static() {
            if self.quotas.is_none() {
                let static_speeds: Vec<f64> =
                    self.pes.iter().map(|p| p.stats.static_gcups).collect();
                self.quotas = Some(
                    self.config
                        .policy
                        .static_quotas(self.pool.len(), &static_speeds),
                );
            }
            return self.quotas.as_ref().expect("just computed")[pe];
        }
        // "In the first allocation, the master assigns one work unit for
        // each slave" (§I): until a PE has reported real progress, PSS
        // behaves like SS for it. The static prior only seeds the speed
        // estimate other PEs' Φ is computed against.
        if !self.pes[pe].stats.has_observations() {
            return 1;
        }
        // A reconnecting or late-joining PE re-enters the Ω window with
        // only its static prior. Until its first real measurement lands,
        // that prior is the `min_alive` candidate every other PE's Φ is
        // divided by — a mis-stated prior would briefly hand the whole
        // fleet mis-calibrated batches. Clamp everyone to the SS grain for
        // that interval; the cold-start case (initial registrations) keeps
        // the paper's behaviour, where priors are what Φ is *for*.
        if self
            .pes
            .iter()
            .any(|p| p.alive && p.late_join && !p.stats.has_observations())
        {
            return 1;
        }
        let speeds = self.speed_estimates();
        let alive: Vec<bool> = self.pes.iter().map(|p| p.alive).collect();
        self.config.policy.batch_size(pe, &speeds, &alive)
    }

    /// The executing task with the largest estimated remaining work that
    /// `pe` is not already involved in.
    fn replication_candidate(&self, pe: PeId, now: f64) -> Option<TaskId> {
        self.pool
            .executing_ids()
            .filter(|&t| !self.pool.get(t).executors.contains(&pe))
            .map(|t| (t, self.estimated_remaining_cells(t, now)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("remaining is finite"))
            .filter(|&(_, remaining)| remaining > 0.0)
            .map(|(t, _)| t)
    }

    /// Estimated cells still to compute for an executing task: the minimum
    /// over its executors of `cells − speed × elapsed` (a task assigned but
    /// not started counts as entirely remaining).
    pub fn estimated_remaining_cells(&self, task: TaskId, now: f64) -> f64 {
        let t = self.pool.get(task);
        if t.state != TaskState::Executing {
            return 0.0;
        }
        let cells = t.spec.cells() as f64;
        t.executors
            .iter()
            .map(|&pe| match self.pes[pe].running.get(&task) {
                Some(&start) => {
                    let speed = self.pes[pe].stats.weighted_mean_gcups() * 1e9;
                    (cells - speed * (now - start)).max(0.0)
                }
                None => cells, // assigned, not yet started
            })
            .fold(cells, f64::min)
    }

    /// A PE reports that it has *started* executing a task.
    pub fn task_started(&mut self, pe: PeId, task: TaskId, now: f64) {
        self.clock = self.clock.max(now);
        self.pes[pe].running.insert(task, now);
        self.emit(EventKind::TaskStarted { pe, task });
    }

    /// A PE reports a periodic progress notification (observed GCUPS since
    /// the previous notification).
    pub fn notify_progress(&mut self, pe: PeId, now: f64, gcups: f64) {
        self.clock = self.clock.max(now);
        self.pes[pe].stats.observe(now, gcups);
    }

    /// A PE reports task completion. `measured_gcups` is the implicit speed
    /// information of the request/response cycle. Returns the PEs whose
    /// replicas of this task must be cancelled (empty if the task was
    /// already finished by someone else — the caller should then discard
    /// this PE's result).
    pub fn task_finished(
        &mut self,
        pe: PeId,
        task: TaskId,
        now: f64,
        measured_gcups: Option<f64>,
    ) -> Vec<PeId> {
        self.clock = self.clock.max(now);
        self.pes[pe].running.remove(&task);
        if let Some(g) = measured_gcups {
            self.pes[pe].stats.observe(now, g);
        }
        let winner = self.pool.get(task).state != TaskState::Finished;
        let cancels = self.pool.finish(task, pe);
        self.emit(EventKind::TaskFinished {
            pe,
            task,
            winner,
            measured_gcups: measured_gcups.unwrap_or(f64::NAN),
        });
        let task_cells = self.pool.get(task).spec.cells();
        for &other in &cancels {
            // Estimate the duplicated work the cancelled replica had done:
            // its speed estimate × its time on the task, capped at the task
            // size. Computed before the running entry is dropped.
            let wasted_cells = match self.pes[other].running.get(&task) {
                Some(&start) => {
                    let speed = self.pes[other].stats.weighted_mean_gcups() * 1e9;
                    (speed * (now - start)).max(0.0).min(task_cells as f64) as u64
                }
                None => 0, // assigned but never started: nothing computed
            };
            self.pes[other].running.remove(&task);
            self.emit(EventKind::ReplicaCancelled {
                pe: other,
                task,
                wasted_cells,
            });
        }
        if self.pool.all_finished() && !self.run_completed_emitted {
            self.run_completed_emitted = true;
            self.emit(EventKind::RunCompleted);
        }
        cancels
    }

    /// A PE leaves the platform (membership extension): its held tasks —
    /// running or queued — are handed back so they return to ready unless a
    /// replica survives elsewhere.
    pub fn pe_leaves(&mut self, pe: PeId, held: &[TaskId]) {
        self.pes[pe].alive = false;
        self.pes[pe].running.clear();
        self.emit(EventKind::PeLeft { pe });
        for &t in held {
            let was_executing = self.pool.get(t).state == TaskState::Executing
                && self.pool.get(t).executors.contains(&pe);
            self.pool.release(t, pe);
            // Requeued only when no surviving replica kept it executing.
            if was_executing && self.pool.get(t).state == TaskState::Ready {
                self.emit(EventKind::TaskRequeued { task: t, from: pe });
            }
        }
    }

    /// A late PE joins (membership extension). `now` stamps the
    /// [`EventKind::PeJoined`] event (joins can happen while the master is
    /// otherwise idle, so the clock may not have advanced on its own).
    pub fn pe_joins(&mut self, name: impl Into<String>, static_gcups: f64, now: f64) -> PeId {
        self.clock = self.clock.max(now);
        let id = self.pes.len();
        let name = name.into();
        self.emit(EventKind::PeJoined {
            pe: id,
            name: name.clone(),
        });
        self.pes.push(PeInfo {
            name,
            stats: PeSpeedStats::new(static_gcups, self.config.policy.omega()),
            alive: true,
            late_join: true,
            running: HashMap::new(),
        });
        if let Some(quotas) = &mut self.quotas {
            quotas.push(0); // static policies give latecomers nothing
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(n: usize) -> Vec<TaskSpec> {
        (0..n)
            .map(|id| TaskSpec {
                id,
                query_len: 1000,
                queries: 1,
                db_residues: 1_000_000_000,
                db_sequences: 10_000,
            })
            .collect()
    }

    fn master(n_tasks: usize, policy: Policy, adjustment: bool) -> Master {
        Master::new(
            specs(n_tasks),
            MasterConfig {
                policy,
                adjustment,
                dispatch: Default::default(),
            },
        )
    }

    #[test]
    fn ss_hands_one_task_per_request() {
        let mut m = master(3, Policy::SelfScheduling, true);
        let a = m.register("pe0", 1.0);
        assert_eq!(m.request(a, 0.0), Assignment::Tasks(vec![0]));
        assert_eq!(m.request(a, 0.0), Assignment::Tasks(vec![1]));
    }

    #[test]
    fn pss_first_allocation_is_one_then_adapts() {
        let mut m = master(20, Policy::pss_default(), true);
        let gpu = m.register("gpu0", 30.0);
        let sse = m.register("sse0", 3.0);
        // "In the first allocation, the master assigns one work unit for
        // each slave" — regardless of priors.
        assert_eq!(m.request(gpu, 0.0), Assignment::Tasks(vec![0]));
        assert_eq!(m.request(sse, 0.0), Assignment::Tasks(vec![1]));
        // The GPU reports completion: observed 30 GCUPS vs the SSE's 3.0
        // prior → Φ = 10.
        m.task_finished(gpu, 0, 1.0, Some(30.0));
        match m.request(gpu, 1.0) {
            Assignment::Tasks(t) => assert_eq!(t.len(), 10),
            other => panic!("{other:?}"),
        }
        // Observations can also overturn the prior downwards.
        m.notify_progress(sse, 2.0, 40.0); // the "SSE" is actually fast
        match m.request(sse, 2.0) {
            Assignment::Tasks(t) => assert_eq!(t.len(), 1), // 40/30 rounds to 1
            other => panic!("{other:?}"),
        }
    }

    /// Regression: a PE that joins (or reconnects) mid-run re-enters the
    /// Ω window with only its static prior. That prior is a `min_alive`
    /// candidate, so before the clamp a wildly wrong one would hand every
    /// *other* PE a mis-calibrated Φ batch until the joiner's first real
    /// measurement landed. The fleet must instead drop to the SS grain
    /// for exactly that interval.
    #[test]
    fn late_join_clamps_fleet_to_ss_until_first_measurement() {
        let mut m = master(40, Policy::pss_default(), true);
        let gpu = m.register("gpu0", 30.0);
        let sse = m.register("sse0", 3.0);
        assert_eq!(m.request(gpu, 0.0), Assignment::Tasks(vec![0]));
        assert_eq!(m.request(sse, 0.0), Assignment::Tasks(vec![1]));
        m.task_finished(gpu, 0, 1.0, Some(30.0));
        m.task_finished(sse, 1, 1.0, Some(3.0));
        // Calibrated fleet: Φ = round(30/3) = 10 for the GPU.
        let batch = match m.request(gpu, 1.0) {
            Assignment::Tasks(t) => {
                assert_eq!(t.len(), 10);
                t
            }
            other => panic!("{other:?}"),
        };
        for t in batch {
            m.task_finished(gpu, t, 1.5, Some(30.0));
        }
        // A PE joins mid-run with a wildly wrong (tiny) static prior.
        // Unclamped, min_alive = 0.05 and the GPU's next Φ would be
        // round(30/0.05) = 600 — the whole fleet must clamp to SS instead.
        let joiner = m.pe_joins("joiner", 0.05, 2.0);
        match m.request(gpu, 2.0) {
            Assignment::Tasks(t) => assert_eq!(
                t.len(),
                1,
                "fleet must hold the SS grain while the joiner is unobserved"
            ),
            other => panic!("{other:?}"),
        }
        // The joiner itself starts on the first-allocation rule.
        let t_joiner = match m.request(joiner, 2.0) {
            Assignment::Tasks(t) => {
                assert_eq!(t.len(), 1);
                t[0]
            }
            other => panic!("{other:?}"),
        };
        // Its first real measurement replaces the prior in the Ω window
        // and lifts the clamp: Φ resumes against measured speeds only
        // (min_alive is the SSE's observed 3.0, not the joiner's prior).
        m.task_finished(joiner, t_joiner, 3.0, Some(5.0));
        match m.request(gpu, 3.0) {
            Assignment::Tasks(t) => assert_eq!(t.len(), 10),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn adjustment_replicates_when_ready_drains() {
        let mut m = master(2, Policy::SelfScheduling, true);
        let a = m.register("a", 1.0);
        let b = m.register("b", 1.0);
        assert_eq!(m.request(a, 0.0), Assignment::Tasks(vec![0]));
        assert_eq!(m.request(b, 0.0), Assignment::Tasks(vec![1]));
        m.task_started(a, 0, 0.0);
        m.task_started(b, 1, 0.0);
        // a finishes its task and asks again: only b's task is executing.
        assert!(m.task_finished(a, 0, 5.0, Some(1.0)).is_empty());
        assert_eq!(m.request(a, 5.0), Assignment::Replicate(1));
        // b's task now has two executors; when b finishes first, a must be
        // cancelled.
        m.task_started(a, 1, 5.0);
        let cancels = m.task_finished(b, 1, 6.0, Some(1.0));
        assert_eq!(cancels, vec![a]);
        assert!(m.all_finished());
        assert_eq!(m.request(a, 6.0), Assignment::Done);
    }

    #[test]
    fn no_adjustment_means_wait() {
        let mut m = master(2, Policy::SelfScheduling, false);
        let a = m.register("a", 1.0);
        let b = m.register("b", 1.0);
        m.request(a, 0.0);
        m.request(b, 0.0);
        m.task_finished(a, 0, 5.0, None);
        assert_eq!(m.request(a, 5.0), Assignment::Wait);
    }

    #[test]
    fn replication_never_duplicates_onto_same_pe() {
        let mut m = master(1, Policy::SelfScheduling, true);
        let a = m.register("a", 1.0);
        assert_eq!(m.request(a, 0.0), Assignment::Tasks(vec![0]));
        m.task_started(a, 0, 0.0);
        // a itself asks again — it cannot replicate its own task.
        assert_eq!(m.request(a, 1.0), Assignment::Wait);
    }

    #[test]
    fn replication_prefers_larger_remaining_work() {
        let mut m = master(2, Policy::SelfScheduling, true);
        let a = m.register("a", 1.0);
        let b = m.register("b", 1.0);
        let c = m.register("c", 1.0);
        m.request(a, 0.0);
        m.request(b, 0.0);
        m.task_started(a, 0, 0.0);
        // b starts later, so more of task 1 remains at t=400.
        m.task_started(b, 1, 300.0);
        match m.request(c, 400.0) {
            Assignment::Replicate(t) => assert_eq!(t, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unstarted_batch_entries_are_stolen_when_beneficial() {
        let mut m = master(3, Policy::Pss { omega: 3 }, true);
        let a = m.register("a", 3.0);
        let b = m.register("b", 2.0);
        // First allocation: one task. a completes it, reporting 3 GCUPS.
        assert_eq!(m.request(a, 0.0), Assignment::Tasks(vec![0]));
        m.task_started(a, 0, 0.0);
        m.task_finished(a, 0, 333.0, Some(3.0));
        // Φ = round(3/2) = 2: a takes the remaining two tasks as a batch
        // and starts the first.
        match m.request(a, 333.0) {
            Assignment::Tasks(t) => assert_eq!(t, vec![1, 2]),
            other => panic!("{other:?}"),
        }
        m.task_started(a, 1, 333.0);
        // a's backlog ≈ 2 tasks at 3 GCUPS (ETA ≈ 667 s); b at 2 GCUPS
        // would finish task 2 in 500 s → the takeover is beneficial and no
        // work is lost.
        match m.request(b, 333.0) {
            Assignment::Steal { task, from } => {
                assert_eq!(task, 2);
                assert_eq!(from, a);
                // The stolen task now belongs to b alone.
                assert_eq!(m.pool().get(task).executors, vec![b]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn harmful_takeover_degrades_to_replication() {
        // A very slow idle PE must NOT move a big task off a fast PE's
        // queue — it replicates instead, so the fast PE still gets to run
        // the original.
        let mut m = master(3, Policy::Pss { omega: 3 }, true);
        let fast = m.register("fast", 30.0);
        let slow = m.register("slow", 1.0);
        m.notify_progress(fast, 0.0, 30.0);
        match m.request(fast, 0.0) {
            Assignment::Tasks(t) => assert_eq!(t, vec![0, 1, 2]),
            other => panic!("{other:?}"),
        }
        m.task_started(fast, 0, 0.0);
        match m.request(slow, 0.0) {
            Assignment::Replicate(t) => {
                assert!(t == 1 || t == 2);
                // The fast PE still holds the task.
                assert!(m.pool().get(t).executors.contains(&fast));
            }
            other => panic!("expected replication, got {other:?}"),
        }
    }

    #[test]
    fn fixed_policy_splits_upfront_and_stops() {
        let mut m = master(4, Policy::Fixed, false);
        let a = m.register("a", 30.0);
        let b = m.register("b", 1.0);
        match m.request(a, 0.0) {
            Assignment::Tasks(t) => assert_eq!(t.len(), 2),
            other => panic!("{other:?}"),
        }
        match m.request(b, 0.0) {
            Assignment::Tasks(t) => assert_eq!(t.len(), 2),
            other => panic!("{other:?}"),
        }
        // Quotas exhausted.
        assert_eq!(m.request(a, 1.0), Assignment::Wait);
    }

    #[test]
    fn wfixed_policy_splits_by_static_speed() {
        let mut m = master(11, Policy::WFixed, false);
        let a = m.register("gpu", 30.0);
        let b = m.register("sse", 3.0);
        let got_a = match m.request(a, 0.0) {
            Assignment::Tasks(t) => t.len(),
            other => panic!("{other:?}"),
        };
        let got_b = match m.request(b, 0.0) {
            Assignment::Tasks(t) => t.len(),
            other => panic!("{other:?}"),
        };
        assert_eq!(got_a + got_b, 11);
        assert_eq!(got_a, 10);
        assert_eq!(got_b, 1);
    }

    #[test]
    fn late_finisher_result_is_discarded() {
        let mut m = master(1, Policy::SelfScheduling, true);
        let a = m.register("a", 1.0);
        let b = m.register("b", 1.0);
        m.request(a, 0.0);
        m.task_started(a, 0, 0.0);
        assert_eq!(m.request(b, 0.1), Assignment::Replicate(0));
        m.task_started(b, 0, 0.1);
        let cancels = m.task_finished(b, 0, 1.0, None);
        assert_eq!(cancels, vec![a]);
        // a crosses the line later: empty cancel list signals "discard".
        assert!(m.task_finished(a, 0, 1.1, None).is_empty());
    }

    #[test]
    fn leave_returns_tasks_to_ready() {
        let mut m = master(2, Policy::Pss { omega: 3 }, true);
        let a = m.register("a", 2.0);
        let b = m.register("b", 1.0);
        m.notify_progress(a, 0.0, 2.0);
        match m.request(a, 0.0) {
            Assignment::Tasks(t) => assert_eq!(t, vec![0, 1]),
            other => panic!("{other:?}"),
        }
        m.task_started(a, 0, 0.0);
        m.pe_leaves(a, &[0, 1]);
        // Both tasks are ready again; b picks them up.
        match m.request(b, 1.0) {
            Assignment::Tasks(t) => assert!(!t.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn join_mid_run_participates() {
        let mut m = master(3, Policy::SelfScheduling, true);
        let a = m.register("a", 1.0);
        m.request(a, 0.0);
        let late = m.pe_joins("late", 5.0, 1.0);
        match m.request(late, 1.0) {
            Assignment::Tasks(t) => assert_eq!(t, vec![1]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "register before the first request")]
    fn static_policy_registration_after_request_rejected() {
        let mut m = master(4, Policy::Fixed, false);
        let a = m.register("a", 1.0);
        m.request(a, 0.0);
        m.register("b", 1.0);
    }

    #[test]
    fn event_stream_records_the_full_run() {
        use crate::trace::EventKind as E;
        let mut m = master(2, Policy::SelfScheduling, true);
        let a = m.register("a", 1.0);
        let b = m.register("b", 1.0);
        m.request(a, 0.0);
        m.request(b, 0.0);
        m.task_started(a, 0, 0.0);
        m.task_started(b, 1, 0.0);
        m.task_finished(a, 0, 5.0, Some(1.0));
        assert_eq!(m.request(a, 5.0), Assignment::Replicate(1));
        m.task_started(a, 1, 5.0);
        m.task_finished(b, 1, 6.0, Some(1.0));
        let names: Vec<&str> = m.events().iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            names,
            vec![
                "pe_registered",
                "pe_registered",
                "tasks_assigned",
                "tasks_assigned",
                "task_started",
                "task_started",
                "task_finished",
                "task_replicated",
                "task_started",
                "task_finished",
                "replica_cancelled",
                "run_completed",
            ]
        );
        // The replica a ran for 1 s at ~1 GCUPS: its wasted work is counted.
        let wasted = m.events().iter().find_map(|e| match e.kind {
            E::ReplicaCancelled { wasted_cells, .. } => Some(wasted_cells),
            _ => None,
        });
        assert!(wasted.unwrap() > 0);
        // take_events drains.
        assert_eq!(m.take_events().len(), 12);
        assert!(m.events().is_empty());
    }

    #[test]
    fn keep_alive_waits_across_batches_and_replays_completion() {
        use crate::trace::EventKind as E;
        let mut m = master(1, Policy::SelfScheduling, true);
        m.set_keep_alive(true);
        let a = m.register("a", 1.0);
        assert_eq!(m.request(a, 0.0), Assignment::Tasks(vec![0]));
        m.task_started(a, 0, 0.0);
        m.task_finished(a, 0, 1.0, Some(1.0));
        assert!(m.all_finished());
        // Drained but kept alive: the PE idles instead of exiting.
        assert_eq!(m.request(a, 1.0), Assignment::Wait);
        // A second batch arrives and is scheduled like any other work.
        let ids = m.submit_tasks(specs(2));
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(m.request(a, 2.0), Assignment::Tasks(vec![1]));
        m.task_started(a, 1, 2.0);
        m.task_finished(a, 1, 3.0, Some(1.0));
        assert_eq!(m.request(a, 3.0), Assignment::Tasks(vec![2]));
        m.task_started(a, 2, 3.0);
        m.task_finished(a, 2, 4.0, Some(1.0));
        // Each drain emits its own run_completed.
        let completions = m
            .events()
            .iter()
            .filter(|e| matches!(e.kind, E::RunCompleted))
            .count();
        assert_eq!(completions, 2);
        // Shutdown: clearing keep-alive lets the PE exit.
        m.set_keep_alive(false);
        assert_eq!(m.request(a, 5.0), Assignment::Done);
    }

    #[test]
    fn event_sink_sees_every_event_in_order() {
        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut m = master(1, Policy::SelfScheduling, true);
        let tap = Arc::clone(&seen);
        m.set_event_sink(move |e| tap.lock().unwrap().push(e.kind.name()));
        let a = m.register("a", 1.0);
        m.request(a, 0.0);
        m.task_started(a, 0, 0.0);
        m.task_finished(a, 0, 1.0, Some(1.0));
        let streamed = seen.lock().unwrap().clone();
        let stored: Vec<&str> = m.events().iter().map(|e| e.kind.name()).collect();
        assert_eq!(streamed, stored);
        assert!(streamed.contains(&"run_completed"));
    }

    #[test]
    #[should_panic(expected = "dynamic policy")]
    fn static_policy_rejects_multi_batch() {
        let mut m = master(2, Policy::Fixed, false);
        m.register("a", 1.0);
        m.submit_tasks(specs(1));
    }

    #[test]
    fn leave_emits_requeue_only_for_returned_tasks() {
        use crate::trace::EventKind as E;
        let mut m = master(2, Policy::Pss { omega: 3 }, true);
        // Φ(a) = round(1.8/1.0) = 2, so a takes both tasks — yet b would
        // still finish the unstarted one before a's two-task backlog drains,
        // so the takeover is beneficial.
        let a = m.register("a", 1.8);
        let b = m.register("b", 1.0);
        m.notify_progress(a, 0.0, 1.8);
        m.request(a, 0.0); // a takes both tasks
        m.task_started(a, 0, 0.0);
        assert_eq!(m.request(b, 0.1), Assignment::Steal { task: 1, from: a });
        m.task_started(b, 1, 0.1);
        // a dies holding task 0 (task 1 was stolen away already).
        m.pe_leaves(a, &[0]);
        let requeued: Vec<_> = m
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                E::TaskRequeued { task, from } => Some((task, from)),
                _ => None,
            })
            .collect();
        assert_eq!(requeued, vec![(0, a)]);
    }
}
