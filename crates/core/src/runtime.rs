//! Real threaded master/slave runtime.
//!
//! The same [`Master`] state machine that drives the simulator here serves
//! OS threads that really compute: each slave owns a
//! [`ComputeBackend`](swhybrid_device::exec::ComputeBackend) and executes
//! genuine striped-kernel searches against a materialised database. This is
//! the path the examples and integration tests use to demonstrate the whole
//! environment end-to-end (on reduced-scale databases — the full platform
//! experiments run under virtual time in [`crate::sim`]).
//!
//! Since the endpoint extraction this module contains no scheduling loop of
//! its own: each PE thread is a [`LocalEndpoint`] around its backend's
//! compute closure, run by [`crate::pool::drive`] — the *same* function
//! that serves a TCP slave connection in [`crate::net`]. Idle PEs long-poll
//! inside the pool ([`crate::pool::PePool::next_assignment`]), so the
//! idle→busy latency is a condvar wakeup, not a poll interval.
//!
//! One deliberate difference from the simulator: real replicas are not
//! preempted — a replica that loses the race simply runs to completion and
//! its result is discarded (cooperative cancellation would complicate the
//! kernels for no behavioural gain at this scale).

use std::time::Instant;

use crate::master::{Master, MasterConfig};
use crate::pool::{drive, BatchOwner, LocalEndpoint, PePool, TaskResult};
use crate::stats::observed_gcups;
use crate::trace::RuntimeEvent;
use swhybrid_align::scoring::Scoring;
use swhybrid_device::exec::{merge_hits, ComputeBackend, QueryHit};
use swhybrid_device::task::TaskSpec;
use swhybrid_seq::sequence::EncodedSequence;
use swhybrid_simd::engine::KernelStats;

/// A real processing element: a name, a speed prior, and a backend.
pub struct RealPe {
    /// PE name (registered with the master).
    pub name: String,
    /// Theoretical GCUPS prior (used by WFixed and as the PSS prior).
    pub static_gcups: f64,
    /// The compute backend.
    pub backend: Box<dyn ComputeBackend>,
}

impl From<swhybrid_device::fleet::FleetPe> for RealPe {
    /// A fleet member is directly runnable: the backend carries the compute
    /// path and (for modeled kinds) the speed attribution, so real SIMD PEs
    /// and modeled accelerators drop into the same pool.
    fn from(pe: swhybrid_device::fleet::FleetPe) -> RealPe {
        RealPe {
            name: pe.name,
            static_gcups: pe.static_gcups,
            backend: pe.backend,
        }
    }
}

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Master configuration (policy + adjustment).
    pub master: MasterConfig,
    /// Hits retained per task.
    pub top_n: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            master: MasterConfig::default(),
            top_n: 10,
        }
    }
}

/// Outcome of a real run.
pub struct RuntimeOutcome {
    /// Wall-clock seconds.
    pub elapsed_seconds: f64,
    /// Useful DP cells across all tasks.
    pub total_cells: u64,
    /// Achieved GCUPS (useful cells / wall time).
    pub gcups: f64,
    /// Globally merged hits (best first).
    pub hits: Vec<QueryHit>,
    /// For each task, the name of the PE whose result was used.
    pub completed_by: Vec<String>,
    /// Kernel-family counters merged across every completion (losing
    /// replicas included — they are work the platform really did).
    pub kernels: KernelStats,
    /// Structured event stream of the run (see [`crate::trace`]).
    pub events: Vec<RuntimeEvent>,
}

/// Run `queries` × `subjects` on real threads.
///
/// Each query index becomes one task (the paper's very coarse grain); the
/// returned hit list is the master's merged result (Fig. 4 "merge results").
pub fn run_real(
    pes: Vec<RealPe>,
    queries: &[EncodedSequence],
    subjects: &[EncodedSequence],
    scoring: &Scoring,
    config: RuntimeConfig,
) -> RuntimeOutcome {
    assert!(!pes.is_empty(), "at least one PE required");
    let db_residues: u64 = subjects.iter().map(|s| s.len() as u64).sum();
    let specs: Vec<TaskSpec> = queries
        .iter()
        .enumerate()
        .map(|(id, q)| TaskSpec {
            id,
            query_len: q.len(),
            queries: 1,
            db_residues,
            db_sequences: subjects.len(),
        })
        .collect();
    let total_cells: u64 = specs.iter().map(|s| s.cells()).sum();
    let n_tasks = specs.len();
    let top_n = config.top_n;

    let master = Master::new(specs.clone(), config.master);
    let pool = PePool::new(master, BatchOwner::new(n_tasks), pes.len());
    // Admit every PE before any thread runs, so the event stream opens
    // with the complete registration block (the paper's barrier) and PE
    // ids equal the caller's ordering.
    let ids: Vec<_> = pes
        .iter()
        .map(|pe| pool.admit(&pe.name, pe.static_gcups, false))
        .collect();
    let start = Instant::now();

    std::thread::scope(|scope| {
        for (pe_id, pe) in ids.iter().copied().zip(&pes) {
            let pool = &pool;
            let specs = &specs;
            scope.spawn(move || {
                let mut endpoint = LocalEndpoint::new(|task| {
                    let t_start = Instant::now();
                    let search = pe.backend.compare(&queries[task], subjects, scoring, top_n);
                    // Modeled accelerators attribute their device model's
                    // throughput (so the scheduler sees e.g. GTX-580 speed);
                    // real PEs report measured wall-clock speed.
                    let gcups = pe.backend.modeled_gcups(&specs[task]).unwrap_or_else(|| {
                        observed_gcups(search.cells, t_start.elapsed().as_secs_f64())
                    });
                    TaskResult {
                        gcups: Some(gcups),
                        hits: search.hits,
                        cells: search.cells,
                        kernels: Some(search.stats),
                        fused: None,
                    }
                });
                drive(pool, pe_id, &mut endpoint);
            });
        }
    });

    let elapsed_seconds = start.elapsed().as_secs_f64();
    let mut core = pool.into_inner();
    let hits = merge_hits(
        core.owner
            .results
            .into_iter()
            .enumerate()
            .filter_map(|(task, hits)| hits.map(|hits| (task, hits))),
    );
    RuntimeOutcome {
        elapsed_seconds,
        total_cells,
        gcups: observed_gcups(total_cells, elapsed_seconds),
        hits,
        completed_by: core.owner.completed_by,
        kernels: core.owner.kernels,
        events: core.master.take_events(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::trace::EventKind;
    use swhybrid_align::scoring::{GapModel, SubstMatrix};
    use swhybrid_device::exec::StripedBackend;
    use swhybrid_seq::synth::{paper_database, QueryOrder, QuerySetSpec};
    use swhybrid_seq::Alphabet;

    fn scoring() -> Scoring {
        Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine {
                open: 10,
                extend: 2,
            },
        }
    }

    fn pe(name: &str, gcups: f64) -> RealPe {
        RealPe {
            name: name.into(),
            static_gcups: gcups,
            backend: Box::new(StripedBackend::default()),
        }
    }

    fn tiny_workload() -> (Vec<EncodedSequence>, Vec<EncodedSequence>) {
        let dog = paper_database("dog").unwrap();
        let db = dog.generate_scaled(42, 0.002); // ~50 sequences
        let subjects: Vec<EncodedSequence> = db.encode_all().unwrap();
        let spec = QuerySetSpec {
            count: 6,
            min_len: 40,
            max_len: 200,
            order: QueryOrder::Ascending,
        };
        let queries: Vec<EncodedSequence> = spec
            .generate(43)
            .iter()
            .map(|q| EncodedSequence::from_sequence(q, Alphabet::Protein).unwrap())
            .collect();
        (queries, subjects)
    }

    #[test]
    fn real_run_completes_all_tasks_single_pe() {
        let (queries, subjects) = tiny_workload();
        let out = run_real(
            vec![pe("solo", 1.0)],
            &queries,
            &subjects,
            &scoring(),
            RuntimeConfig::default(),
        );
        assert_eq!(out.completed_by.len(), 6);
        assert!(out.completed_by.iter().all(|n| n == "solo"));
        assert!(!out.hits.is_empty());
        assert!(out.total_cells > 0);
        assert!(out.gcups > 0.0);
        // The kernel counters travelled through the pool: every computed
        // cell is accounted for.
        assert!(out.kernels.cells_computed > 0);
        assert!(out.kernels.chunks_striped + out.kernels.chunks_interseq > 0);
    }

    #[test]
    fn real_run_multi_pe_covers_all_tasks() {
        let (queries, subjects) = tiny_workload();
        let out = run_real(
            vec![pe("a", 1.0), pe("b", 1.0), pe("c", 1.0)],
            &queries,
            &subjects,
            &scoring(),
            RuntimeConfig {
                master: MasterConfig {
                    policy: Policy::SelfScheduling,
                    adjustment: true,
                    dispatch: Default::default(),
                },
                top_n: 5,
            },
        );
        assert!(out.completed_by.iter().all(|n| !n.is_empty()));
        // Results identical to a single-PE run (scores are deterministic).
        let solo = run_real(
            vec![pe("solo", 1.0)],
            &queries,
            &subjects,
            &scoring(),
            RuntimeConfig {
                master: MasterConfig {
                    policy: Policy::SelfScheduling,
                    adjustment: true,
                    dispatch: Default::default(),
                },
                top_n: 5,
            },
        );
        let key = |hits: &[QueryHit]| {
            let mut v: Vec<(usize, usize, i32)> = hits
                .iter()
                .map(|h| (h.query_index, h.hit.db_index, h.hit.score))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(key(&out.hits), key(&solo.hits));
    }

    #[test]
    fn static_wfixed_policy_also_completes() {
        let (queries, subjects) = tiny_workload();
        let out = run_real(
            vec![pe("fast", 4.0), pe("slow", 1.0)],
            &queries,
            &subjects,
            &scoring(),
            RuntimeConfig {
                master: MasterConfig {
                    policy: Policy::WFixed,
                    adjustment: false,
                    dispatch: Default::default(),
                },
                top_n: 5,
            },
        );
        assert!(out.completed_by.iter().all(|n| !n.is_empty()));
    }

    #[test]
    fn hybrid_fleet_matches_solo_and_attributes_modeled_speed() {
        use swhybrid_device::FleetSpec;
        let (queries, subjects) = tiny_workload();
        let pes: Vec<RealPe> = FleetSpec::parse("gpu:1+sse:2")
            .unwrap()
            .build()
            .into_iter()
            .map(RealPe::from)
            .collect();
        let out = run_real(
            pes,
            &queries,
            &subjects,
            &scoring(),
            RuntimeConfig::default(),
        );
        // Bit-identical hit table vs a single real PE.
        let solo = run_real(
            vec![pe("solo", 1.0)],
            &queries,
            &subjects,
            &scoring(),
            RuntimeConfig::default(),
        );
        assert_eq!(
            out.hits, solo.hits,
            "hybrid fleet must score bit-identically"
        );
        // The modeled GPU attributes its calibrated model speed, which is
        // far beyond what one host thread really measures on this workload.
        let gpu_pe = out
            .events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::PeRegistered { pe, name, .. } if name == "gpu0" => Some(*pe),
                _ => None,
            })
            .expect("gpu0 registered");
        let modeled: Vec<(usize, f64)> = out
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::TaskFinished {
                    pe,
                    task,
                    measured_gcups,
                    ..
                } if pe == gpu_pe => Some((task, measured_gcups)),
                _ => None,
            })
            .collect();
        assert!(!modeled.is_empty(), "the modeled PE finished no task");
        // The attributed speed is the calibrated model's throughput for
        // exactly that task spec — not a host wall-clock measurement.
        let device = swhybrid_device::GpuDevice::gtx580("gpu0");
        use swhybrid_device::DeviceModel;
        let db_residues: u64 = subjects.iter().map(|s| s.len() as u64).sum();
        for (task, gcups) in modeled {
            let spec = swhybrid_device::TaskSpec {
                id: task,
                query_len: queries[task].len(),
                queries: 1,
                db_residues,
                db_sequences: subjects.len(),
            };
            assert_eq!(
                gcups,
                device.task_gcups(&spec),
                "task {task}: attributed speed must be the model's"
            );
        }
    }

    #[test]
    fn event_stream_covers_the_run_and_never_reports_zero_speed() {
        let (queries, subjects) = tiny_workload();
        let out = run_real(
            vec![pe("a", 1.0), pe("b", 1.0)],
            &queries,
            &subjects,
            &scoring(),
            RuntimeConfig::default(),
        );
        let finishes = out
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::TaskFinished { .. }))
            .count();
        assert!(finishes >= 6, "at least one finish per task: {finishes}");
        assert!(out.events.iter().any(|e| e.kind == EventKind::RunCompleted));
        // The PSS-poisoning regression: real completions must never report
        // a zero speed, however fast the timer said the task was.
        for e in &out.events {
            if let EventKind::TaskFinished { measured_gcups, .. } = e.kind {
                assert!(
                    measured_gcups > 0.0 && measured_gcups.is_finite(),
                    "degenerate speed report {measured_gcups}"
                );
            }
        }
        // Times are monotonically plausible and start at registration.
        assert!(matches!(
            out.events[0].kind,
            EventKind::PeRegistered { pe: 0, .. }
        ));
    }
}
