//! Biological alphabets and residue encoding.
//!
//! The paper (§II) treats DNA, RNA and protein sequences as strings over
//! Σ = {A,T,G,C}, Σ = {A,U,G,C} and the 20-letter amino-acid alphabet
//! respectively. The alignment kernels work on small integer *codes* rather
//! than ASCII so that substitution-matrix lookups are a single indexed load;
//! this module owns the bidirectional mapping.
//!
//! Protein codes follow the canonical NCBI ordering
//! `ARNDCQEGHILKMFPSTWYVBZX*` so that the substitution matrices in
//! `swhybrid-align` can be copied verbatim from the standard tables.

use crate::error::SeqError;

/// Canonical protein residue ordering used by NCBI substitution matrices.
pub const PROTEIN_RESIDUES: &[u8; 24] = b"ARNDCQEGHILKMFPSTWYVBZX*";

/// Number of codes in the protein alphabet (20 amino acids + B, Z, X, *).
pub const PROTEIN_CODES: usize = 24;

/// Code used for "unknown/any" protein residue (X).
pub const PROTEIN_UNKNOWN: u8 = 22;

/// DNA residue ordering.
pub const DNA_RESIDUES: &[u8; 5] = b"ACGTN";

/// RNA residue ordering.
pub const RNA_RESIDUES: &[u8; 5] = b"ACGUN";

/// Code used for "unknown/any" nucleotide (N).
pub const NUCLEOTIDE_UNKNOWN: u8 = 4;

/// A biological alphabet: which ASCII residues are legal and how they map to
/// dense integer codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Alphabet {
    /// Deoxyribonucleic acid: A, C, G, T (+ N for ambiguity).
    Dna,
    /// Ribonucleic acid: A, C, G, U (+ N for ambiguity).
    Rna,
    /// Protein: the 20 standard amino acids plus B, Z, X and the stop `*`.
    Protein,
}

impl Alphabet {
    /// Number of distinct codes in this alphabet.
    #[inline]
    pub const fn size(self) -> usize {
        match self {
            Alphabet::Dna | Alphabet::Rna => 5,
            Alphabet::Protein => PROTEIN_CODES,
        }
    }

    /// The residues of this alphabet in code order.
    #[inline]
    pub const fn residues(self) -> &'static [u8] {
        match self {
            Alphabet::Dna => DNA_RESIDUES,
            Alphabet::Rna => RNA_RESIDUES,
            Alphabet::Protein => PROTEIN_RESIDUES,
        }
    }

    /// Code reserved for unknown residues.
    #[inline]
    pub const fn unknown_code(self) -> u8 {
        match self {
            Alphabet::Dna | Alphabet::Rna => NUCLEOTIDE_UNKNOWN,
            Alphabet::Protein => PROTEIN_UNKNOWN,
        }
    }

    /// Map an ASCII residue (case-insensitive) to its code.
    ///
    /// Returns `None` for bytes outside the alphabet. Ambiguity codes that
    /// are not explicitly modelled (e.g. IUPAC `R`, `Y` for DNA; `U`, `O`
    /// for protein) map to the unknown code rather than `None`, matching the
    /// permissive behaviour of database-search tools.
    #[inline]
    pub fn encode_byte(self, byte: u8) -> Option<u8> {
        let up = byte.to_ascii_uppercase();
        match self {
            Alphabet::Dna => match up {
                b'A' => Some(0),
                b'C' => Some(1),
                b'G' => Some(2),
                b'T' => Some(3),
                b'N' | b'R' | b'Y' | b'S' | b'W' | b'K' | b'M' | b'B' | b'D' | b'H' | b'V' => {
                    Some(NUCLEOTIDE_UNKNOWN)
                }
                _ => None,
            },
            Alphabet::Rna => match up {
                b'A' => Some(0),
                b'C' => Some(1),
                b'G' => Some(2),
                b'U' => Some(3),
                b'N' | b'R' | b'Y' | b'S' | b'W' | b'K' | b'M' | b'B' | b'D' | b'H' | b'V' => {
                    Some(NUCLEOTIDE_UNKNOWN)
                }
                _ => None,
            },
            Alphabet::Protein => match up {
                b'A' => Some(0),
                b'R' => Some(1),
                b'N' => Some(2),
                b'D' => Some(3),
                b'C' => Some(4),
                b'Q' => Some(5),
                b'E' => Some(6),
                b'G' => Some(7),
                b'H' => Some(8),
                b'I' => Some(9),
                b'L' => Some(10),
                b'K' => Some(11),
                b'M' => Some(12),
                b'F' => Some(13),
                b'P' => Some(14),
                b'S' => Some(15),
                b'T' => Some(16),
                b'W' => Some(17),
                b'Y' => Some(18),
                b'V' => Some(19),
                b'B' => Some(20),
                b'Z' => Some(21),
                b'X' => Some(22),
                b'*' => Some(23),
                // Selenocysteine / pyrrolysine / ambiguous J map to unknown.
                b'U' | b'O' | b'J' => Some(PROTEIN_UNKNOWN),
                _ => None,
            },
        }
    }

    /// Map a code back to its canonical (uppercase) ASCII residue.
    ///
    /// # Panics
    /// Panics if `code` is out of range for the alphabet.
    #[inline]
    pub fn decode(self, code: u8) -> u8 {
        self.residues()[code as usize]
    }

    /// Encode a whole ASCII residue string into codes.
    ///
    /// Fails with [`SeqError::InvalidResidue`] on the first illegal byte.
    pub fn encode(self, residues: &[u8]) -> Result<Vec<u8>, SeqError> {
        let mut out = Vec::with_capacity(residues.len());
        for (position, &byte) in residues.iter().enumerate() {
            match self.encode_byte(byte) {
                Some(code) => out.push(code),
                None => return Err(SeqError::InvalidResidue { byte, position }),
            }
        }
        Ok(out)
    }

    /// Decode a code slice back into ASCII residues.
    pub fn decode_all(self, codes: &[u8]) -> Vec<u8> {
        codes.iter().map(|&c| self.decode(c)).collect()
    }

    /// Whether every byte of `residues` is legal in this alphabet.
    pub fn validates(self, residues: &[u8]) -> bool {
        residues.iter().all(|&b| self.encode_byte(b).is_some())
    }

    /// Guess the alphabet of an ASCII residue string.
    ///
    /// Uses the heuristic common to sequence tools: if ≥ 90 % of the first
    /// 1,000 residues are ACGTUN the sequence is treated as nucleic acid
    /// (DNA unless it contains U), otherwise protein.
    pub fn guess(residues: &[u8]) -> Alphabet {
        let sample = &residues[..residues.len().min(1000)];
        if sample.is_empty() {
            return Alphabet::Protein;
        }
        let mut nucleic = 0usize;
        let mut has_u = false;
        let mut has_t = false;
        for &b in sample {
            match b.to_ascii_uppercase() {
                b'A' | b'C' | b'G' | b'N' => nucleic += 1,
                b'T' => {
                    nucleic += 1;
                    has_t = true;
                }
                b'U' => {
                    nucleic += 1;
                    has_u = true;
                }
                _ => {}
            }
        }
        if nucleic * 10 >= sample.len() * 9 {
            if has_u && !has_t {
                Alphabet::Rna
            } else {
                Alphabet::Dna
            }
        } else {
            Alphabet::Protein
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protein_round_trip() {
        for (code, &res) in PROTEIN_RESIDUES.iter().enumerate() {
            assert_eq!(Alphabet::Protein.encode_byte(res), Some(code as u8));
            assert_eq!(Alphabet::Protein.decode(code as u8), res);
        }
    }

    #[test]
    fn dna_round_trip() {
        for (code, &res) in DNA_RESIDUES.iter().enumerate() {
            assert_eq!(Alphabet::Dna.encode_byte(res), Some(code as u8));
            assert_eq!(Alphabet::Dna.decode(code as u8), res);
        }
    }

    #[test]
    fn rna_uses_u_not_t() {
        assert_eq!(Alphabet::Rna.encode_byte(b'U'), Some(3));
        assert!(Alphabet::Rna.encode_byte(b'T').is_none());
        assert!(Alphabet::Dna.encode_byte(b'U').is_none());
    }

    #[test]
    fn lowercase_accepted() {
        assert_eq!(Alphabet::Protein.encode_byte(b'w'), Some(17));
        assert_eq!(Alphabet::Dna.encode_byte(b'g'), Some(2));
    }

    #[test]
    fn ambiguity_maps_to_unknown() {
        assert_eq!(Alphabet::Dna.encode_byte(b'R'), Some(NUCLEOTIDE_UNKNOWN));
        assert_eq!(Alphabet::Protein.encode_byte(b'U'), Some(PROTEIN_UNKNOWN));
        assert_eq!(Alphabet::Protein.encode_byte(b'J'), Some(PROTEIN_UNKNOWN));
    }

    #[test]
    fn illegal_bytes_rejected() {
        assert!(Alphabet::Protein.encode_byte(b'7').is_none());
        assert!(Alphabet::Dna.encode_byte(b'E').is_none());
        let err = Alphabet::Dna.encode(b"ACGE").unwrap_err();
        match err {
            SeqError::InvalidResidue { byte, position } => {
                assert_eq!(byte, b'E');
                assert_eq!(position, 3);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn encode_decode_all() {
        let codes = Alphabet::Protein.encode(b"MKVL").unwrap();
        assert_eq!(Alphabet::Protein.decode_all(&codes), b"MKVL");
    }

    #[test]
    fn guess_dna_rna_protein() {
        assert_eq!(Alphabet::guess(b"ACGTACGTACGT"), Alphabet::Dna);
        assert_eq!(Alphabet::guess(b"ACGUACGUACGU"), Alphabet::Rna);
        assert_eq!(Alphabet::guess(b"MKVLAWPFSRE"), Alphabet::Protein);
        assert_eq!(Alphabet::guess(b""), Alphabet::Protein);
    }

    #[test]
    fn validates_checks_every_byte() {
        assert!(Alphabet::Protein.validates(b"ACDEFGHIKLMNPQRSTVWY"));
        assert!(!Alphabet::Protein.validates(b"ACDE1"));
    }

    #[test]
    fn sizes_match_residue_tables() {
        for a in [Alphabet::Dna, Alphabet::Rna, Alphabet::Protein] {
            assert_eq!(a.size(), a.residues().len());
            assert!((a.unknown_code() as usize) < a.size());
        }
    }
}
