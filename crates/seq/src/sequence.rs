//! Sequence records.

use crate::alphabet::Alphabet;
use crate::error::SeqError;

/// A biological sequence record: identifier, optional description, and the
/// residues as ASCII bytes.
///
/// Residues are stored as ASCII (the on-disk representation) and encoded to
/// dense codes on demand with [`Sequence::encode`]; alignment kernels cache
/// the encoded form themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sequence {
    /// Identifier (the first word of the FASTA header).
    pub id: String,
    /// Free-text description (the rest of the FASTA header), may be empty.
    pub description: String,
    /// Residues as ASCII bytes (uppercase by convention, not enforced).
    pub residues: Vec<u8>,
}

impl Sequence {
    /// Create a record from parts.
    pub fn new(id: impl Into<String>, description: impl Into<String>, residues: Vec<u8>) -> Self {
        Sequence {
            id: id.into(),
            description: description.into(),
            residues,
        }
    }

    /// Convenience constructor for tests and examples: no description.
    pub fn of(id: impl Into<String>, residues: &[u8]) -> Self {
        Sequence::new(id, "", residues.to_vec())
    }

    /// Number of residues.
    #[inline]
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// Whether the record has zero residues.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }

    /// Encode the residues into alphabet codes.
    pub fn encode(&self, alphabet: Alphabet) -> Result<Vec<u8>, SeqError> {
        alphabet.encode(&self.residues)
    }

    /// The residues as a `&str` (FASTA residues are always ASCII).
    pub fn residues_str(&self) -> &str {
        std::str::from_utf8(&self.residues).expect("residues are ASCII")
    }

    /// Full FASTA header line content (without the leading `>`).
    pub fn header(&self) -> String {
        if self.description.is_empty() {
            self.id.clone()
        } else {
            format!("{} {}", self.id, self.description)
        }
    }
}

/// An encoded sequence: codes plus a back-reference to the alphabet.
///
/// This is what the alignment kernels consume. Constructing one validates
/// every residue exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedSequence {
    /// Identifier copied from the source record.
    pub id: String,
    /// Dense alphabet codes.
    pub codes: Vec<u8>,
    /// The alphabet the codes belong to.
    pub alphabet: Alphabet,
}

impl EncodedSequence {
    /// Encode a [`Sequence`] under `alphabet`.
    pub fn from_sequence(seq: &Sequence, alphabet: Alphabet) -> Result<Self, SeqError> {
        Ok(EncodedSequence {
            id: seq.id.clone(),
            codes: seq.encode(alphabet)?,
            alphabet,
        })
    }

    /// Encode raw ASCII residues under `alphabet` with a synthetic id.
    pub fn from_residues(
        id: impl Into<String>,
        residues: &[u8],
        alphabet: Alphabet,
    ) -> Result<Self, SeqError> {
        Ok(EncodedSequence {
            id: id.into(),
            codes: alphabet.encode(residues)?,
            alphabet,
        })
    }

    /// Number of residues.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the sequence has zero residues.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Decode back to ASCII residues.
    pub fn decode(&self) -> Vec<u8> {
        self.alphabet.decode_all(&self.codes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let s = Sequence::new("sp|P1", "test protein", b"MKV".to_vec());
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.residues_str(), "MKV");
        assert_eq!(s.header(), "sp|P1 test protein");
    }

    #[test]
    fn header_without_description() {
        let s = Sequence::of("q1", b"ACGT");
        assert_eq!(s.header(), "q1");
    }

    #[test]
    fn encode_round_trip() {
        let s = Sequence::of("q1", b"MKVLAW");
        let enc = EncodedSequence::from_sequence(&s, Alphabet::Protein).unwrap();
        assert_eq!(enc.len(), 6);
        assert_eq!(enc.decode(), b"MKVLAW");
    }

    #[test]
    fn encode_rejects_bad_residue() {
        let s = Sequence::of("q1", b"MKV7");
        assert!(EncodedSequence::from_sequence(&s, Alphabet::Protein).is_err());
    }

    #[test]
    fn empty_sequence() {
        let s = Sequence::of("e", b"");
        assert!(s.is_empty());
        let enc = EncodedSequence::from_sequence(&s, Alphabet::Protein).unwrap();
        assert!(enc.is_empty());
    }

    #[test]
    fn from_residues_constructor() {
        let enc = EncodedSequence::from_residues("x", b"acgt", Alphabet::Dna).unwrap();
        assert_eq!(enc.codes, vec![0, 1, 2, 3]);
        assert_eq!(enc.decode(), b"ACGT");
    }
}
