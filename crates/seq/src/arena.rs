//! Flat database arena: one contiguous residue buffer plus `(offset, len)`
//! spans.
//!
//! The alignment kernels scan the database sequentially; storing every
//! subject in its own `Vec<u8>` makes that scan chase one heap pointer per
//! sequence and defeats hardware prefetch. The arena packs all residues
//! into a single buffer **in scan order**, so chunk claiming and the
//! inter-sequence kernel's lane refill read forward through memory.
//!
//! Scan order is either database order ([`DbArena::from_encoded`]) or
//! ascending sequence length ([`DbArena::length_sorted`]). The length-sorted
//! order makes chunks length-homogeneous — what the inter-sequence kernel
//! wants, since lanes idle while the longest sequence of a batch drains —
//! and keeps a permutation back to database indices: consumers must report
//! [`DbArena::db_index`], never the scan position, so rankings stay
//! bit-identical to a database-order scan.
//!
//! The residue buffer is either owned (packed from encoded sequences) or
//! **shared**: a window into a reference-counted byte buffer such as a
//! memory-mapped `.swdb` store file ([`DbArena::from_shared`]). Shared
//! arenas let the daemon serve scans directly out of the page cache with
//! zero copies; every accessor behaves identically for both storages.

use std::fmt;
use std::sync::Arc;

use crate::error::SeqError;
use crate::sequence::EncodedSequence;

/// A reference-counted byte buffer an arena can borrow residues from
/// without copying — e.g. a memory-mapped store file.
pub type SharedBytes = Arc<dyn AsRef<[u8]> + Send + Sync>;

/// Residue storage: an owned packed buffer, or a window into a shared one.
#[derive(Clone)]
enum Residues {
    Owned(Vec<u8>),
    Shared {
        buf: SharedBytes,
        offset: usize,
        len: usize,
    },
}

impl Residues {
    #[inline]
    fn as_slice(&self) -> &[u8] {
        match self {
            Residues::Owned(v) => v,
            Residues::Shared { buf, offset, len } => &(**buf).as_ref()[*offset..*offset + *len],
        }
    }
}

/// A flat, immutable database of encoded sequences.
#[derive(Clone)]
pub struct DbArena {
    /// All residues, concatenated in scan order.
    residues: Residues,
    /// Per-sequence `(offset, len)` into `residues`, in scan order.
    spans: Vec<(usize, usize)>,
    /// Scan position → database index; `None` means scan order *is*
    /// database order.
    perm: Option<Vec<usize>>,
}

impl fmt::Debug for DbArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DbArena")
            .field("sequences", &self.spans.len())
            .field("residues", &self.residues.as_slice().len())
            .field("permuted", &self.perm.is_some())
            .field(
                "storage",
                &match self.residues {
                    Residues::Owned(_) => "owned",
                    Residues::Shared { .. } => "shared",
                },
            )
            .finish()
    }
}

impl PartialEq for DbArena {
    fn eq(&self, other: &Self) -> bool {
        self.residues.as_slice() == other.residues.as_slice()
            && self.spans == other.spans
            && self.perm == other.perm
    }
}

impl Eq for DbArena {}

impl DbArena {
    /// Pack `subjects` in database order.
    pub fn from_encoded(subjects: &[EncodedSequence]) -> DbArena {
        DbArena::pack(subjects, None)
    }

    /// Pack `subjects` in ascending length order (stable: equal lengths keep
    /// database order), remembering the permutation back to database
    /// indices.
    pub fn length_sorted(subjects: &[EncodedSequence]) -> DbArena {
        let mut order: Vec<usize> = (0..subjects.len()).collect();
        order.sort_by_key(|&i| subjects[i].len());
        DbArena::pack(subjects, Some(order))
    }

    fn pack(subjects: &[EncodedSequence], perm: Option<Vec<usize>>) -> DbArena {
        let total: usize = subjects.iter().map(|s| s.len()).sum();
        let mut residues = Vec::with_capacity(total);
        let mut spans = Vec::with_capacity(subjects.len());
        let positions: &mut dyn Iterator<Item = usize> = match &perm {
            Some(order) => &mut order.iter().copied(),
            None => &mut (0..subjects.len()),
        };
        for db_index in positions {
            let codes = &subjects[db_index].codes;
            spans.push((residues.len(), codes.len()));
            residues.extend_from_slice(codes);
        }
        DbArena {
            residues: Residues::Owned(residues),
            spans,
            perm,
        }
    }

    /// Borrow a `len`-byte residue window at `offset` inside `buf` without
    /// copying — the zero-copy load path for memory-mapped stores.
    ///
    /// The spans must tile the window exactly: strictly contiguous
    /// (`offset_{i+1} = offset_i + len_i`, starting at 0) and summing to
    /// `len`. `perm`, when present, must be a permutation of `0..spans.len()`.
    /// Violations return [`SeqError::BadArena`]; an arena built here is
    /// indistinguishable from a packed one to every consumer.
    pub fn from_shared(
        buf: SharedBytes,
        offset: usize,
        len: usize,
        spans: Vec<(usize, usize)>,
        perm: Option<Vec<usize>>,
    ) -> Result<DbArena, SeqError> {
        let buf_len = (*buf).as_ref().len();
        let end = offset
            .checked_add(len)
            .ok_or_else(|| SeqError::BadArena("window offset + len overflows".into()))?;
        if end > buf_len {
            return Err(SeqError::BadArena(format!(
                "window [{offset}, {end}) exceeds buffer of {buf_len} bytes"
            )));
        }
        let mut cursor = 0usize;
        for (i, &(off, l)) in spans.iter().enumerate() {
            if off != cursor {
                return Err(SeqError::BadArena(format!(
                    "span {i} starts at {off}, expected {cursor} (spans must tile the arena)"
                )));
            }
            cursor = cursor
                .checked_add(l)
                .ok_or_else(|| SeqError::BadArena(format!("span {i} length overflows")))?;
        }
        if cursor != len {
            return Err(SeqError::BadArena(format!(
                "spans cover {cursor} residues but the arena window holds {len}"
            )));
        }
        if let Some(order) = &perm {
            if order.len() != spans.len() {
                return Err(SeqError::BadArena(format!(
                    "permutation has {} entries for {} spans",
                    order.len(),
                    spans.len()
                )));
            }
            let mut seen = vec![false; order.len()];
            for &ix in order {
                if ix >= seen.len() || seen[ix] {
                    return Err(SeqError::BadArena(format!(
                        "permutation entry {ix} out of range or repeated"
                    )));
                }
                seen[ix] = true;
            }
        }
        Ok(DbArena {
            residues: Residues::Shared { buf, offset, len },
            spans,
            perm,
        })
    }

    /// Whether the residue buffer is a shared (e.g. memory-mapped) window
    /// rather than an owned allocation.
    #[inline]
    pub fn is_shared(&self) -> bool {
        matches!(self.residues, Residues::Shared { .. })
    }

    /// Number of sequences.
    #[inline]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the arena holds no sequences.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total residues across all sequences.
    #[inline]
    pub fn total_residues(&self) -> u64 {
        self.residues.as_slice().len() as u64
    }

    /// Residues of the sequence at scan position `pos`.
    #[inline]
    pub fn residues(&self, pos: usize) -> &[u8] {
        let (offset, len) = self.spans[pos];
        &self.residues.as_slice()[offset..offset + len]
    }

    /// `(offset, len)` span of scan position `pos`.
    #[inline]
    pub fn span(&self, pos: usize) -> (usize, usize) {
        self.spans[pos]
    }

    /// Length in residues of the sequence at scan position `pos`.
    #[inline]
    pub fn seq_len(&self, pos: usize) -> usize {
        self.spans[pos].1
    }

    /// The whole residue buffer (scan order).
    #[inline]
    pub fn buffer(&self) -> &[u8] {
        self.residues.as_slice()
    }

    /// The spans table (scan order).
    #[inline]
    pub fn spans(&self) -> &[(usize, usize)] {
        &self.spans
    }

    /// The scan permutation, if scan order differs from database order.
    #[inline]
    pub fn permutation(&self) -> Option<&[usize]> {
        self.perm.as_deref()
    }

    /// Database index of the sequence at scan position `pos` — the
    /// un-permutation every consumer must apply before reporting hits.
    #[inline]
    pub fn db_index(&self, pos: usize) -> usize {
        match &self.perm {
            Some(order) => order[pos],
            None => pos,
        }
    }

    /// Whether scan order differs from database order.
    #[inline]
    pub fn is_permuted(&self) -> bool {
        self.perm.is_some()
    }

    /// Total residues of the scan positions in `range`.
    pub fn range_residues(&self, range: std::ops::Range<usize>) -> u64 {
        self.spans[range].iter().map(|&(_, len)| len as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn seqs(lens: &[usize]) -> Vec<EncodedSequence> {
        lens.iter()
            .enumerate()
            .map(|(i, &len)| EncodedSequence {
                id: format!("s{i}"),
                codes: (0..len).map(|j| ((i + j) % 20) as u8).collect(),
                alphabet: Alphabet::Protein,
            })
            .collect()
    }

    #[test]
    fn db_order_round_trips() {
        let subjects = seqs(&[3, 0, 5, 1]);
        let arena = DbArena::from_encoded(&subjects);
        assert_eq!(arena.len(), 4);
        assert_eq!(arena.total_residues(), 9);
        assert!(!arena.is_permuted());
        for (i, s) in subjects.iter().enumerate() {
            assert_eq!(arena.residues(i), &s.codes[..]);
            assert_eq!(arena.seq_len(i), s.len());
            assert_eq!(arena.db_index(i), i);
        }
    }

    #[test]
    fn residues_are_contiguous_in_scan_order() {
        let subjects = seqs(&[2, 4, 3]);
        let arena = DbArena::from_encoded(&subjects);
        let mut expect = Vec::new();
        for s in &subjects {
            expect.extend_from_slice(&s.codes);
        }
        assert_eq!(arena.buffer(), &expect[..]);
        let (o1, l1) = arena.span(1);
        assert_eq!((o1, l1), (2, 4));
    }

    #[test]
    fn length_sorted_permutes_and_unpermutes() {
        let subjects = seqs(&[9, 2, 7, 2, 4]);
        let arena = DbArena::length_sorted(&subjects);
        assert!(arena.is_permuted());
        // Ascending lengths, ties in database order.
        let lens: Vec<usize> = (0..arena.len()).map(|p| arena.seq_len(p)).collect();
        assert_eq!(lens, vec![2, 2, 4, 7, 9]);
        let order: Vec<usize> = (0..arena.len()).map(|p| arena.db_index(p)).collect();
        assert_eq!(order, vec![1, 3, 4, 2, 0]);
        // Every scan position still reads its own sequence's residues.
        for pos in 0..arena.len() {
            assert_eq!(
                arena.residues(pos),
                &subjects[arena.db_index(pos)].codes[..]
            );
        }
    }

    #[test]
    fn range_residues_sums_spans() {
        let subjects = seqs(&[3, 5, 2, 8]);
        let arena = DbArena::from_encoded(&subjects);
        assert_eq!(arena.range_residues(1..3), 7);
        assert_eq!(arena.range_residues(0..4), 18);
        assert_eq!(arena.range_residues(2..2), 0);
    }

    #[test]
    fn empty_database() {
        let arena = DbArena::from_encoded(&[]);
        assert!(arena.is_empty());
        assert_eq!(arena.total_residues(), 0);
        let sorted = DbArena::length_sorted(&[]);
        assert_eq!(sorted.len(), 0);
    }

    #[test]
    fn shared_window_matches_owned_packing() {
        let subjects = seqs(&[3, 0, 5, 1]);
        let owned = DbArena::from_encoded(&subjects);
        // Embed the packed residues inside a larger shared buffer with a
        // leading pad, as a store file does.
        let mut file = vec![0xAAu8; 7];
        file.extend_from_slice(owned.buffer());
        file.push(0xBB);
        let buf: SharedBytes = Arc::new(file);
        let shared =
            DbArena::from_shared(buf, 7, owned.buffer().len(), owned.spans().to_vec(), None)
                .unwrap();
        assert!(shared.is_shared());
        assert_eq!(shared, owned);
        for (i, subject) in subjects.iter().enumerate() {
            assert_eq!(shared.residues(i), &subject.codes[..]);
        }
    }

    #[test]
    fn shared_window_rejects_bad_geometry() {
        let buf: SharedBytes = Arc::new(vec![1u8, 2, 3, 4]);
        // Window past the end of the buffer.
        assert!(matches!(
            DbArena::from_shared(buf.clone(), 2, 3, vec![(0, 3)], None),
            Err(SeqError::BadArena(_))
        ));
        // Spans with a gap.
        assert!(DbArena::from_shared(buf.clone(), 0, 4, vec![(0, 1), (2, 2)], None).is_err());
        // Spans overrunning the window.
        assert!(DbArena::from_shared(buf.clone(), 0, 4, vec![(0, 5)], None).is_err());
        // Spans undershooting the window.
        assert!(DbArena::from_shared(buf.clone(), 0, 4, vec![(0, 2)], None).is_err());
        // Bad permutation: repeated entry.
        assert!(
            DbArena::from_shared(buf.clone(), 0, 4, vec![(0, 2), (2, 2)], Some(vec![0, 0]))
                .is_err()
        );
        // Bad permutation: out of range.
        assert!(DbArena::from_shared(buf, 0, 4, vec![(0, 2), (2, 2)], Some(vec![0, 2])).is_err());
    }
}
