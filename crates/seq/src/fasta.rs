//! Streaming FASTA reader and writer.
//!
//! Biological "databases" are in fact huge flat FASTA files (paper §IV-B);
//! this module parses them streamingly so that indexing (see [`crate::index`])
//! never needs the whole file in memory.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::error::SeqError;
use crate::sequence::Sequence;

/// Streaming FASTA reader: yields one [`Sequence`] per record.
pub struct FastaReader<R: BufRead> {
    inner: R,
    /// Header of the next record, if we've already consumed its `>` line.
    pending_header: Option<String>,
    line: String,
    records_read: usize,
}

impl FastaReader<BufReader<std::fs::File>> {
    /// Open a FASTA file from disk.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SeqError> {
        let file = std::fs::File::open(path)?;
        Ok(FastaReader::new(BufReader::new(file)))
    }
}

impl<R: BufRead> FastaReader<R> {
    /// Wrap any buffered reader.
    pub fn new(inner: R) -> Self {
        FastaReader {
            inner,
            pending_header: None,
            line: String::new(),
            records_read: 0,
        }
    }

    /// Number of records yielded so far.
    pub fn records_read(&self) -> usize {
        self.records_read
    }

    /// Read the next record, or `Ok(None)` at end of input.
    pub fn next_record(&mut self) -> Result<Option<Sequence>, SeqError> {
        let header = match self.pending_header.take() {
            Some(h) => h,
            None => {
                // Skip blank lines before the first record.
                loop {
                    self.line.clear();
                    if self.inner.read_line(&mut self.line)? == 0 {
                        return Ok(None);
                    }
                    let trimmed = self.line.trim_end();
                    if trimmed.is_empty() {
                        continue;
                    }
                    if let Some(h) = trimmed.strip_prefix('>') {
                        break h.to_string();
                    }
                    return Err(SeqError::MalformedFasta(format!(
                        "expected '>' header, found {:?}",
                        &trimmed[..trimmed.len().min(40)]
                    )));
                }
            }
        };

        let mut residues = Vec::new();
        loop {
            self.line.clear();
            if self.inner.read_line(&mut self.line)? == 0 {
                break;
            }
            let trimmed = self.line.trim_end();
            if let Some(h) = trimmed.strip_prefix('>') {
                self.pending_header = Some(h.to_string());
                break;
            }
            residues.extend(trimmed.bytes().filter(|b| !b.is_ascii_whitespace()));
        }

        let (id, description) = split_header(&header);
        self.records_read += 1;
        Ok(Some(Sequence::new(id, description, residues)))
    }

    /// Collect every remaining record.
    pub fn read_all(&mut self) -> Result<Vec<Sequence>, SeqError> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }
}

impl<R: BufRead> Iterator for FastaReader<R> {
    type Item = Result<Sequence, SeqError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// Split a FASTA header into `(id, description)` at the first whitespace.
fn split_header(header: &str) -> (String, String) {
    match header.split_once(char::is_whitespace) {
        Some((id, desc)) => (id.to_string(), desc.trim().to_string()),
        None => (header.to_string(), String::new()),
    }
}

/// Parse a full FASTA string (convenience for tests/examples).
///
/// ```
/// let records = swhybrid_seq::fasta::parse_str(">q1 my protein\nMKVL\nAW\n").unwrap();
/// assert_eq!(records[0].id, "q1");
/// assert_eq!(records[0].residues, b"MKVLAW");
/// ```
pub fn parse_str(input: &str) -> Result<Vec<Sequence>, SeqError> {
    FastaReader::new(input.as_bytes()).read_all()
}

/// Parse every record of a reader.
pub fn parse_reader<R: Read>(reader: R) -> Result<Vec<Sequence>, SeqError> {
    FastaReader::new(BufReader::new(reader)).read_all()
}

/// Width at which [`write_fasta`] wraps residue lines.
pub const LINE_WIDTH: usize = 60;

/// Write records as FASTA, wrapping residues at [`LINE_WIDTH`] columns.
pub fn write_fasta<'a, W: Write>(
    writer: &mut W,
    records: impl IntoIterator<Item = &'a Sequence>,
) -> io::Result<()> {
    for rec in records {
        writeln!(writer, ">{}", rec.header())?;
        for chunk in rec.residues.chunks(LINE_WIDTH) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
        if rec.residues.is_empty() {
            // Keep the record visible even with no residues.
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

/// Render records to a FASTA string.
pub fn to_string<'a>(records: impl IntoIterator<Item = &'a Sequence>) -> String {
    let mut buf = Vec::new();
    write_fasta(&mut buf, records).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("FASTA output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = ">q1 first protein\nMKVL\nAWPF\n>q2\nACDE\n";

    #[test]
    fn parses_two_records() {
        let recs = parse_str(SAMPLE).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "q1");
        assert_eq!(recs[0].description, "first protein");
        assert_eq!(recs[0].residues, b"MKVLAWPF");
        assert_eq!(recs[1].id, "q2");
        assert_eq!(recs[1].description, "");
        assert_eq!(recs[1].residues, b"ACDE");
    }

    #[test]
    fn iterator_interface() {
        let recs: Result<Vec<_>, _> = FastaReader::new(SAMPLE.as_bytes()).collect();
        assert_eq!(recs.unwrap().len(), 2);
    }

    #[test]
    fn blank_lines_and_crlf_tolerated() {
        let recs = parse_str("\n\n>a desc\r\nMK\r\nVL\r\n\n>b\nW\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].residues, b"MKVL");
        assert_eq!(recs[1].residues, b"W");
    }

    #[test]
    fn garbage_before_header_is_error() {
        assert!(parse_str("MKVL\n>a\nMK\n").is_err());
    }

    #[test]
    fn empty_input_yields_no_records() {
        assert!(parse_str("").unwrap().is_empty());
        assert!(parse_str("\n\n").unwrap().is_empty());
    }

    #[test]
    fn record_with_no_residues() {
        let recs = parse_str(">only_header\n>b\nMK\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert!(recs[0].residues.is_empty());
        assert_eq!(recs[1].residues, b"MK");
    }

    #[test]
    fn round_trip_write_parse() {
        let recs = parse_str(SAMPLE).unwrap();
        let text = to_string(&recs);
        let reparsed = parse_str(&text).unwrap();
        assert_eq!(recs, reparsed);
    }

    #[test]
    fn long_sequences_wrap() {
        let long = Sequence::of("long", &[b'A'; 130]);
        let text = to_string(std::iter::once(&long));
        let max_line = text.lines().map(|l| l.len()).max().unwrap();
        assert!(max_line <= LINE_WIDTH.max(5));
        let reparsed = parse_str(&text).unwrap();
        assert_eq!(reparsed[0].residues.len(), 130);
    }

    #[test]
    fn records_read_counter() {
        let mut r = FastaReader::new(SAMPLE.as_bytes());
        assert_eq!(r.records_read(), 0);
        r.next_record().unwrap();
        assert_eq!(r.records_read(), 1);
        r.read_all().unwrap();
        assert_eq!(r.records_read(), 2);
    }
}
