//! Sequence substrate for `swhybrid`.
//!
//! This crate provides everything the task execution environment needs to
//! represent biological data:
//!
//! * [`alphabet`] — DNA / RNA / protein alphabets and residue encoding,
//! * [`sequence`] — sequence records (identifier, description, residues),
//! * [`arena`] — a flat database arena (contiguous residues + spans) with an
//!   optional length-sorted scan order, the memory layout the scan kernels
//!   stream through,
//! * [`fasta`] — a streaming FASTA reader/writer,
//! * [`index`] — the paper's indexed sequence-file format (§IV-B): sequence
//!   count, longest-sequence size, and per-sequence byte offsets for fast
//!   random access into a flat file,
//! * [`db`] — an in-memory database with summary statistics,
//! * [`snapshot`] — an immutable, shareable view of one database generation
//!   (ids + database-order arena + digest), the unit a serve daemon
//!   hot-swaps atomically,
//! * [`digest`] — stable content digests for queries and databases (the
//!   cache keys of the persistent query service),
//! * [`synth`] — deterministic synthetic generators standing in for the five
//!   public protein databases used in the paper's evaluation (Table II).
//!
//! The paper compares 40 query sequences (lengths equally distributed between
//! 100 and 5,000 amino acids) against five genomic databases; [`synth`]
//! reproduces those workloads at full scale (metadata only) or at a reduced
//! scale (materialised residues) suitable for real kernel execution.

pub mod alphabet;
pub mod arena;
pub mod db;
pub mod digest;
pub mod error;
pub mod fasta;
pub mod index;
pub mod sequence;
pub mod snapshot;
pub mod synth;

pub use alphabet::Alphabet;
pub use arena::{DbArena, SharedBytes};
pub use db::{Database, DbStats};
pub use error::SeqError;
pub use sequence::Sequence;
pub use snapshot::DbSnapshot;
