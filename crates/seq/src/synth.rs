//! Deterministic synthetic stand-ins for the paper's evaluation data.
//!
//! The paper compares 40 real query sequences (100 – ~5,000 amino acids,
//! equally distributed sizes) against five public protein databases
//! (Table II). Those flat files are not redistributable, so this module
//! generates synthetic equivalents that preserve everything the experiments
//! are sensitive to:
//!
//! * the **sequence counts** of Table II (exact),
//! * realistic **residue totals / length distributions** (log-normal with
//!   SwissProt-like mean lengths; totals documented in `DESIGN.md`),
//! * SwissProt **amino-acid background frequencies** for the residues
//!   themselves (only scores depend on these, not scheduling),
//! * the **query-length spread** of the evaluation (40 lengths equally
//!   distributed over [100, 5000]).
//!
//! Two scales are provided: [`DbProfile::full_scale_stats`] returns exact
//! metadata for the discrete-event platform experiments (no residues are
//! materialised — SwissProt alone would be ~191 MB), and
//! [`DbProfile::generate_scaled`] materialises a reduced database for real
//! kernel execution in tests, examples and benches.

use rand::{Rng, RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::alphabet::Alphabet;
use crate::db::{Database, DbStats};
use crate::sequence::Sequence;

/// SwissProt amino-acid background frequencies (fractions), in the canonical
/// `ARNDCQEGHILKMFPSTWYV` order (release 2013_01 composition, rounded).
pub const SWISSPROT_AA_FREQS: [(u8, f64); 20] = [
    (b'A', 0.0826),
    (b'R', 0.0553),
    (b'N', 0.0406),
    (b'D', 0.0546),
    (b'C', 0.0137),
    (b'Q', 0.0393),
    (b'E', 0.0674),
    (b'G', 0.0708),
    (b'H', 0.0227),
    (b'I', 0.0593),
    (b'L', 0.0965),
    (b'K', 0.0582),
    (b'M', 0.0241),
    (b'F', 0.0386),
    (b'P', 0.0472),
    (b'S', 0.0660),
    (b'T', 0.0535),
    (b'W', 0.0109),
    (b'Y', 0.0292),
    (b'V', 0.0686),
];

/// Deterministic RNG used throughout the synthetic generators.
pub type SynthRng = ChaCha8Rng;

/// Create the canonical generator RNG for a seed.
pub fn rng(seed: u64) -> SynthRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Sample one amino acid from the SwissProt background distribution.
pub fn sample_residue(rng: &mut impl Rng) -> u8 {
    let mut x: f64 = rng.random();
    for &(res, f) in SWISSPROT_AA_FREQS.iter() {
        if x < f {
            return res;
        }
        x -= f;
    }
    // Rounding leaves ~0.1% tail mass; attribute it to Leucine (most common).
    b'L'
}

/// Generate a random protein sequence of exactly `len` residues.
pub fn random_protein(rng: &mut impl Rng, len: usize) -> Vec<u8> {
    (0..len).map(|_| sample_residue(rng)).collect()
}

/// Sample from a log-normal distribution via Box–Muller (the `rand_distr`
/// crate is avoided to keep the dependency set minimal).
fn sample_lognormal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mu + sigma * z).exp()
}

/// Profile of one of the paper's five genomic databases (Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct DbProfile {
    /// Database name as printed in the paper.
    pub name: String,
    /// Number of sequences (Table II, exact).
    pub num_sequences: usize,
    /// Mean sequence length used for generation and full-scale stats.
    pub mean_len: f64,
    /// Log-normal shape parameter for the length distribution.
    pub sigma: f64,
    /// Shortest sequence permitted.
    pub min_len: usize,
    /// Longest sequence permitted.
    pub max_len: usize,
}

impl DbProfile {
    /// Exact full-scale metadata for the scheduling experiments.
    ///
    /// `total_residues` is `num_sequences × mean_len` rounded — the value all
    /// discrete-event experiments use, so it is *exact by construction*
    /// rather than subject to sampling noise.
    pub fn full_scale_stats(&self) -> DbStats {
        DbStats {
            name: self.name.clone(),
            num_sequences: self.num_sequences,
            total_residues: (self.num_sequences as f64 * self.mean_len).round() as u64,
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Materialise a database scaled down to `scale` (0 < scale ≤ 1) of the
    /// full sequence count, deterministically from `seed`.
    pub fn generate_scaled(&self, seed: u64, scale: f64) -> Database {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let n = ((self.num_sequences as f64 * scale).round() as usize).max(1);
        let mut r = rng(seed);
        let mu = self.mean_len.ln() - self.sigma * self.sigma / 2.0;
        let mut sequences = Vec::with_capacity(n);
        for i in 0..n {
            let len = sample_lognormal(&mut r, mu, self.sigma)
                .round()
                .clamp(self.min_len as f64, self.max_len as f64) as usize;
            sequences.push(Sequence::new(
                format!("{}|{:06}", short_tag(&self.name), i),
                format!("synthetic member of {}", self.name),
                random_protein(&mut r, len),
            ));
        }
        Database::new(self.name.clone(), Alphabet::Protein, sequences)
    }
}

fn short_tag(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .take(8)
        .collect::<String>()
        .to_lowercase()
}

/// The five databases of the paper's Table II, in paper order.
///
/// Sequence counts are the paper's exact numbers; mean lengths are chosen to
/// match the public 2012/2013 releases (see `DESIGN.md` §2 calibration).
pub fn paper_databases() -> Vec<DbProfile> {
    vec![
        DbProfile {
            name: "Ensembl Dog Proteins".into(),
            num_sequences: 25_160,
            mean_len: 493.0,
            sigma: 0.7,
            min_len: 25,
            max_len: 11_996,
        },
        DbProfile {
            name: "Ensembl Rat Proteins".into(),
            num_sequences: 32_971,
            mean_len: 491.0,
            sigma: 0.7,
            min_len: 25,
            max_len: 8_992,
        },
        DbProfile {
            name: "RefSeq Human Proteins".into(),
            num_sequences: 34_705,
            mean_len: 545.0,
            sigma: 0.7,
            min_len: 24,
            max_len: 22_981,
        },
        DbProfile {
            name: "RefSeq Mouse Proteins".into(),
            num_sequences: 29_437,
            mean_len: 543.0,
            sigma: 0.7,
            min_len: 24,
            max_len: 16_000,
        },
        DbProfile {
            name: "UniProtKB/SwissProt".into(),
            num_sequences: 537_505,
            mean_len: 355.0,
            sigma: 0.75,
            min_len: 2,
            max_len: 34_998,
        },
    ]
}

/// Look up one of the paper databases by (case-insensitive) substring.
pub fn paper_database(name: &str) -> Option<DbProfile> {
    let needle = name.to_lowercase();
    paper_databases()
        .into_iter()
        .find(|p| p.name.to_lowercase().contains(&needle))
}

/// How the paper's 40 query lengths are ordered in the query file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOrder {
    /// Shortest first — the adversarial order under which "slow node receives
    /// one of the last (largest) tasks" is most visible; the default for the
    /// reproduction (see `DESIGN.md` §2).
    Ascending,
    /// Longest first.
    Descending,
    /// Deterministically shuffled by the workload seed.
    Shuffled,
}

/// Specification of a query set: `count` lengths equally distributed over
/// `[min_len, max_len]` (paper §V: 40 queries, 100 – 5,000 amino acids).
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySetSpec {
    /// Number of query sequences.
    pub count: usize,
    /// Shortest query length.
    pub min_len: usize,
    /// Longest query length.
    pub max_len: usize,
    /// File order of the queries.
    pub order: QueryOrder,
}

impl QuerySetSpec {
    /// The paper's evaluation query set: 40 queries, 100..=5000, ascending.
    pub fn paper() -> Self {
        QuerySetSpec {
            count: 40,
            min_len: 100,
            max_len: 5000,
            order: QueryOrder::Ascending,
        }
    }

    /// The equally-distributed query lengths in file order.
    pub fn lengths(&self, seed: u64) -> Vec<usize> {
        assert!(self.count > 0, "query set must not be empty");
        assert!(self.min_len <= self.max_len);
        let mut lens: Vec<usize> = if self.count == 1 {
            vec![self.min_len]
        } else {
            (0..self.count)
                .map(|i| {
                    let t = i as f64 / (self.count - 1) as f64;
                    (self.min_len as f64 + t * (self.max_len - self.min_len) as f64).round()
                        as usize
                })
                .collect()
        };
        match self.order {
            QueryOrder::Ascending => {}
            QueryOrder::Descending => lens.reverse(),
            QueryOrder::Shuffled => {
                let mut r = rng(seed ^ 0x5157_5345_5446_4c45); // "QWSE TFLE" salt
                                                               // Fisher–Yates shuffle.
                for i in (1..lens.len()).rev() {
                    let j = r.random_range(0..=i);
                    lens.swap(i, j);
                }
            }
        }
        lens
    }

    /// Total residues across all queries.
    pub fn total_query_residues(&self, seed: u64) -> u64 {
        self.lengths(seed).iter().map(|&l| l as u64).sum()
    }

    /// Materialise the queries with random SwissProt-composition residues.
    pub fn generate(&self, seed: u64) -> Vec<Sequence> {
        let mut r = rng(seed);
        self.lengths(seed)
            .into_iter()
            .enumerate()
            .map(|(i, len)| {
                Sequence::new(
                    format!("query|{i:03}"),
                    format!("synthetic query, {len} aa"),
                    random_protein(&mut r, len),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residue_frequencies_sum_close_to_one() {
        let total: f64 = SWISSPROT_AA_FREQS.iter().map(|&(_, f)| f).sum();
        assert!((total - 1.0).abs() < 0.002, "sum {total}");
    }

    #[test]
    fn sampled_residues_are_valid_protein() {
        let mut r = rng(1);
        let seq = random_protein(&mut r, 5000);
        assert!(Alphabet::Protein.validates(&seq));
    }

    #[test]
    fn residue_distribution_roughly_matches_background() {
        let mut r = rng(2);
        let seq = random_protein(&mut r, 200_000);
        let leu = seq.iter().filter(|&&b| b == b'L').count() as f64 / seq.len() as f64;
        let trp = seq.iter().filter(|&&b| b == b'W').count() as f64 / seq.len() as f64;
        assert!((leu - 0.0965).abs() < 0.01, "L fraction {leu}");
        assert!((trp - 0.0109).abs() < 0.005, "W fraction {trp}");
    }

    #[test]
    fn paper_databases_match_table2_counts() {
        let dbs = paper_databases();
        assert_eq!(dbs.len(), 5);
        let counts: Vec<usize> = dbs.iter().map(|d| d.num_sequences).collect();
        assert_eq!(counts, vec![25_160, 32_971, 34_705, 29_437, 537_505]);
        // SwissProt is by far the biggest database.
        let sw = dbs[4].full_scale_stats();
        for d in &dbs[..4] {
            assert!(sw.total_residues > 5 * d.full_scale_stats().total_residues);
        }
    }

    #[test]
    fn lookup_by_substring() {
        assert!(paper_database("swissprot").is_some());
        assert!(paper_database("Dog").is_some());
        assert!(paper_database("zebrafish").is_none());
    }

    #[test]
    fn full_scale_stats_are_deterministic_products() {
        let dog = paper_database("dog").unwrap();
        let s = dog.full_scale_stats();
        assert_eq!(s.total_residues, (25_160.0f64 * 493.0).round() as u64);
    }

    #[test]
    fn generate_scaled_is_deterministic() {
        let dog = paper_database("dog").unwrap();
        let a = dog.generate_scaled(7, 0.002);
        let b = dog.generate_scaled(7, 0.002);
        assert_eq!(a, b);
        let c = dog.generate_scaled(8, 0.002);
        assert_ne!(a, c);
    }

    #[test]
    fn generate_scaled_respects_bounds_and_count() {
        let dog = paper_database("dog").unwrap();
        let db = dog.generate_scaled(3, 0.004);
        let expect = (25_160.0f64 * 0.004).round() as usize;
        assert_eq!(db.len(), expect);
        let st = db.stats();
        assert!(st.min_len >= dog.min_len);
        assert!(st.max_len <= dog.max_len);
        // Mean length should be in the right ballpark (log-normal sampling).
        assert!(st.mean_len() > dog.mean_len * 0.6 && st.mean_len() < dog.mean_len * 1.6);
    }

    #[test]
    fn paper_query_lengths_equally_distributed() {
        let spec = QuerySetSpec::paper();
        let lens = spec.lengths(0);
        assert_eq!(lens.len(), 40);
        assert_eq!(lens[0], 100);
        assert_eq!(*lens.last().unwrap(), 5000);
        // Gaps are all within 1 of each other.
        let gaps: Vec<i64> = lens.windows(2).map(|w| w[1] as i64 - w[0] as i64).collect();
        let gmin = *gaps.iter().min().unwrap();
        let gmax = *gaps.iter().max().unwrap();
        assert!(gmax - gmin <= 1, "gaps {gaps:?}");
    }

    #[test]
    fn query_order_variants() {
        let mut spec = QuerySetSpec::paper();
        spec.order = QueryOrder::Descending;
        let lens = spec.lengths(0);
        assert_eq!(lens[0], 5000);
        assert_eq!(*lens.last().unwrap(), 100);

        spec.order = QueryOrder::Shuffled;
        let s1 = spec.lengths(42);
        let s2 = spec.lengths(42);
        assert_eq!(s1, s2, "shuffle must be deterministic per seed");
        let mut sorted = s1.clone();
        sorted.sort_unstable();
        spec.order = QueryOrder::Ascending;
        assert_eq!(sorted, spec.lengths(42), "shuffle must be a permutation");
    }

    #[test]
    fn single_query_spec() {
        let spec = QuerySetSpec {
            count: 1,
            min_len: 250,
            max_len: 250,
            order: QueryOrder::Ascending,
        };
        assert_eq!(spec.lengths(0), vec![250]);
    }

    #[test]
    fn generated_queries_match_spec_lengths() {
        let spec = QuerySetSpec::paper();
        let queries = spec.generate(11);
        let lens: Vec<usize> = queries.iter().map(|q| q.len()).collect();
        assert_eq!(lens, spec.lengths(11));
        assert!(queries
            .iter()
            .all(|q| Alphabet::Protein.validates(&q.residues)));
        // Total residues ≈ 40 × 2550 = 102,000 (the DESIGN.md §2 workload size).
        let total = spec.total_query_residues(11);
        assert!((101_000..=103_000).contains(&total), "total {total}");
    }
}
