//! Content digests for queries and databases.
//!
//! A long-running search service must know when two queries are *the same
//! work* (so a cached result can be reused) and when the database a result
//! was computed against has changed (so the cached result is stale). Both
//! questions are answered with a stable 64-bit FNV-1a digest over the
//! encoded content: alphabet codes are canonical (case and formatting
//! differences in the FASTA source disappear at encoding time), so two
//! textually different files describing the same sequences digest equally.
//!
//! FNV-1a is not cryptographic; it is used here as a cache key, where an
//! adversarially constructed collision is not part of the threat model and
//! a stray collision costs a wrong cache hit in ~2⁻⁶⁴ of lookups.

use crate::sequence::EncodedSequence;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// Start a fresh digest.
    pub fn new() -> Fnv1a {
        Fnv1a::default()
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a length-prefixed byte run (makes the digest unambiguous
    /// under concatenation: `["ab","c"]` ≠ `["a","bc"]`).
    pub fn update_framed(&mut self, bytes: &[u8]) {
        self.update(&(bytes.len() as u64).to_le_bytes());
        self.update(bytes);
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Digest of one encoded query: its alphabet codes only. Two queries with
/// the same residues digest equally regardless of their FASTA ids — the
/// id does not change the scores, so it must not split the cache.
pub fn query_digest(codes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update_framed(codes);
    h.finish()
}

/// Digest of a database: ids *and* codes of every sequence, in order.
/// Ids participate because hit lists report them — renaming a subject
/// changes the observable result even though scores are unchanged. Order
/// participates because `db_index` (the tie-break of every ranking) does.
pub fn db_digest(subjects: &[EncodedSequence]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(&(subjects.len() as u64).to_le_bytes());
    for s in subjects {
        h.update_framed(s.id.as_bytes());
        h.update_framed(&s.codes);
    }
    h.finish()
}

/// [`db_digest`] computed from a database's parts — ids plus a
/// database-order arena — instead of `EncodedSequence`s. Bit-identical to
/// [`db_digest`] over the sequences the parts were built from, so a store
/// file's recorded digest and a FASTA-loaded daemon's recomputed one agree.
///
/// The arena must be in database order (unpermuted): the digest covers
/// sequences in database order, and `arena.residues(i)` must be sequence
/// `i`'s codes.
pub fn db_digest_parts(ids: &[String], arena: &crate::arena::DbArena) -> u64 {
    debug_assert!(!arena.is_permuted(), "digest arena must be in db order");
    debug_assert_eq!(ids.len(), arena.len());
    let mut h = Fnv1a::new();
    h.update(&(ids.len() as u64).to_le_bytes());
    for (i, id) in ids.iter().enumerate() {
        h.update_framed(id.as_bytes());
        h.update_framed(arena.residues(i));
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn enc(id: &str, residues: &[u8]) -> EncodedSequence {
        EncodedSequence {
            id: id.into(),
            codes: Alphabet::Protein.encode(residues).unwrap(),
            alphabet: Alphabet::Protein,
        }
    }

    #[test]
    fn query_digest_depends_only_on_codes() {
        let a = enc("a", b"MKVLAW");
        let b = enc("completely-different-id", b"MKVLAW");
        let c = enc("a", b"MKVLAC");
        assert_eq!(query_digest(&a.codes), query_digest(&b.codes));
        assert_ne!(query_digest(&a.codes), query_digest(&c.codes));
    }

    #[test]
    fn db_digest_sees_ids_order_and_content() {
        let base = vec![enc("a", b"MKVL"), enc("b", b"AWCD")];
        let renamed = vec![enc("a", b"MKVL"), enc("z", b"AWCD")];
        let reordered = vec![enc("b", b"AWCD"), enc("a", b"MKVL")];
        let edited = vec![enc("a", b"MKVL"), enc("b", b"AWCE")];
        let d = db_digest(&base);
        assert_ne!(d, db_digest(&renamed));
        assert_ne!(d, db_digest(&reordered));
        assert_ne!(d, db_digest(&edited));
        assert_eq!(d, db_digest(&base.clone()));
    }

    #[test]
    fn framing_disambiguates_splits() {
        // ["ab", "c"] vs ["a", "bc"]: same concatenation, different dbs.
        let one = vec![enc("x", b"AC"), enc("y", b"D")];
        let two = vec![enc("x", b"A"), enc("y", b"CD")];
        assert_ne!(db_digest(&one), db_digest(&two));
    }

    #[test]
    fn digest_parts_matches_db_digest() {
        let db = vec![enc("a", b"MKVL"), enc("b", b"AWCD"), enc("c", b"")];
        let ids: Vec<String> = db.iter().map(|s| s.id.clone()).collect();
        let arena = crate::arena::DbArena::from_encoded(&db);
        assert_eq!(db_digest_parts(&ids, &arena), db_digest(&db));
        assert_eq!(
            db_digest_parts(&[], &crate::arena::DbArena::from_encoded(&[])),
            db_digest(&[])
        );
    }

    #[test]
    fn empty_inputs_digest_stably() {
        assert_eq!(query_digest(&[]), query_digest(&[]));
        assert_ne!(query_digest(&[]), query_digest(&[0]));
        assert_eq!(db_digest(&[]), db_digest(&[]));
    }
}
