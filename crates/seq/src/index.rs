//! The paper's indexed sequence-file format (§IV-B).
//!
//! Query files are flat FASTA; to "quickly retrieve a subset of query
//! sequences" the paper proposes an index that records
//!
//! 1. the total number of sequences,
//! 2. the size of the biggest sequence, and
//! 3. the byte offset that marks the beginning of each sequence in the file.
//!
//! [`SeqIndex`] is that structure; [`IndexedFasta`] pairs it with the flat
//! file and serves random access (`fetch`, `fetch_range`) by seeking to the
//! recorded offset and parsing a single record.
//!
//! ## On-disk layout (little-endian)
//!
//! ```text
//! magic   8 bytes  b"SWHIDX1\0"
//! count   u64      number of sequences
//! max_len u64      residue count of the longest sequence
//! offsets count × u64   byte offset of each record's '>' byte
//! ```

use std::fs::File;
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::error::SeqError;
use crate::fasta::FastaReader;
use crate::sequence::Sequence;

/// Magic bytes identifying an index file (version 1).
pub const MAGIC: &[u8; 8] = b"SWHIDX1\0";

/// Index over a flat FASTA file: count, longest-sequence size, offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqIndex {
    /// Residue count of the longest sequence in the file.
    pub max_len: u64,
    /// Byte offset of each record's `>` within the flat file.
    pub offsets: Vec<u64>,
}

impl SeqIndex {
    /// Number of sequences in the indexed file.
    pub fn count(&self) -> usize {
        self.offsets.len()
    }

    /// Build an index by scanning a flat FASTA byte stream once.
    pub fn build<R: BufRead>(mut reader: R) -> Result<SeqIndex, SeqError> {
        let mut offsets = Vec::new();
        let mut max_len: u64 = 0;
        let mut current_len: u64 = 0;
        let mut in_record = false;
        let mut pos: u64 = 0;
        let mut line = Vec::new();

        loop {
            line.clear();
            let n = reader.read_until(b'\n', &mut line)?;
            if n == 0 {
                break;
            }
            if line.first() == Some(&b'>') {
                if in_record {
                    max_len = max_len.max(current_len);
                }
                offsets.push(pos);
                current_len = 0;
                in_record = true;
            } else if in_record {
                current_len += line.iter().filter(|b| !b.is_ascii_whitespace()).count() as u64;
            } else if line.iter().any(|b| !b.is_ascii_whitespace()) {
                return Err(SeqError::MalformedFasta(
                    "residues before first header while indexing".into(),
                ));
            }
            pos += n as u64;
        }
        if in_record {
            max_len = max_len.max(current_len);
        }
        Ok(SeqIndex { max_len, offsets })
    }

    /// Build an index for a FASTA file on disk.
    pub fn build_for_file(path: impl AsRef<Path>) -> Result<SeqIndex, SeqError> {
        SeqIndex::build(BufReader::new(File::open(path)?))
    }

    /// Serialise to the binary on-disk layout.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> Result<(), SeqError> {
        writer.write_all(MAGIC)?;
        writer.write_all(&(self.offsets.len() as u64).to_le_bytes())?;
        writer.write_all(&self.max_len.to_le_bytes())?;
        for off in &self.offsets {
            writer.write_all(&off.to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserialise from the binary on-disk layout.
    ///
    /// Truncation anywhere — header or offsets table — is reported as a
    /// [`SeqError::BadIndex`] naming how many entries were promised and
    /// found, not as a bare I/O error.
    pub fn read_from<R: Read>(reader: &mut R) -> Result<SeqIndex, SeqError> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(SeqError::BadIndex(format!(
                "bad magic {magic:?}, expected {MAGIC:?}"
            )));
        }
        let mut buf = [0u8; 8];
        let eof = |what: String| {
            move |e: std::io::Error| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    SeqError::BadIndex(what.clone())
                } else {
                    SeqError::Io(e)
                }
            }
        };
        reader
            .read_exact(&mut buf)
            .map_err(eof("truncated header: sequence count missing".into()))?;
        let count = u64::from_le_bytes(buf) as usize;
        reader
            .read_exact(&mut buf)
            .map_err(eof("truncated header: max_len missing".into()))?;
        let max_len = u64::from_le_bytes(buf);
        // Cap the pre-allocation: a corrupt count must not OOM before the
        // truncation check below catches it.
        let mut offsets = Vec::with_capacity(count.min(1 << 20));
        let mut prev: Option<u64> = None;
        for i in 0..count {
            reader.read_exact(&mut buf).map_err(eof(format!(
                "truncated offsets: header promises {count} entries, file ends at entry {i}"
            )))?;
            let off = u64::from_le_bytes(buf);
            if let Some(p) = prev {
                if off <= p {
                    return Err(SeqError::BadIndex(format!(
                        "offsets not strictly increasing at entry {i}"
                    )));
                }
            }
            prev = Some(off);
            offsets.push(off);
        }
        Ok(SeqIndex { max_len, offsets })
    }

    /// Check every offset against the flat file's byte length: an index
    /// whose offsets point at or past end-of-file describes a different
    /// (or truncated) file and must not be used for seeking.
    pub fn validate_against_len(&self, file_len: u64) -> Result<(), SeqError> {
        for (i, &off) in self.offsets.iter().enumerate() {
            if off >= file_len {
                return Err(SeqError::BadIndex(format!(
                    "offset {off} of entry {i} points past end of file ({file_len} bytes)"
                )));
            }
        }
        Ok(())
    }

    /// Write the index next to the FASTA file (`<path>.swhidx`).
    pub fn save_alongside(&self, fasta_path: impl AsRef<Path>) -> Result<PathBuf, SeqError> {
        let idx_path = index_path_for(fasta_path.as_ref());
        let mut f = std::io::BufWriter::new(File::create(&idx_path)?);
        self.write_to(&mut f)?;
        f.flush()?;
        Ok(idx_path)
    }
}

/// Conventional index path for a FASTA file: `<path>.swhidx`.
pub fn index_path_for(fasta_path: &Path) -> PathBuf {
    let mut os = fasta_path.as_os_str().to_owned();
    os.push(".swhidx");
    PathBuf::from(os)
}

/// A flat FASTA file plus its index: random access to individual records.
pub struct IndexedFasta {
    file: BufReader<File>,
    index: SeqIndex,
    path: PathBuf,
}

impl IndexedFasta {
    /// Open `fasta_path`, loading `<fasta_path>.swhidx` if present or building
    /// (and saving) the index otherwise.
    pub fn open(fasta_path: impl AsRef<Path>) -> Result<IndexedFasta, SeqError> {
        let fasta_path = fasta_path.as_ref();
        let idx_path = index_path_for(fasta_path);
        let index = if idx_path.exists() {
            SeqIndex::read_from(&mut BufReader::new(File::open(&idx_path)?))?
        } else {
            let idx = SeqIndex::build_for_file(fasta_path)?;
            idx.save_alongside(fasta_path)?;
            idx
        };
        IndexedFasta::with_index(fasta_path, index)
    }

    /// Open with an explicit, already-loaded index. The index's offsets are
    /// validated against the flat file's length — a stale or corrupt index
    /// is rejected here instead of producing wrong records on `fetch`.
    pub fn with_index(fasta_path: impl AsRef<Path>, index: SeqIndex) -> Result<Self, SeqError> {
        let file = File::open(fasta_path.as_ref())?;
        index.validate_against_len(file.metadata()?.len())?;
        Ok(IndexedFasta {
            file: BufReader::new(file),
            index,
            path: fasta_path.as_ref().to_path_buf(),
        })
    }

    /// The index metadata.
    pub fn index(&self) -> &SeqIndex {
        &self.index
    }

    /// Number of sequences.
    pub fn count(&self) -> usize {
        self.index.count()
    }

    /// Path of the underlying flat file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Fetch the `i`-th sequence (zero-based) by seeking to its offset.
    pub fn fetch(&mut self, i: usize) -> Result<Sequence, SeqError> {
        let off = *self.index.offsets.get(i).ok_or(SeqError::IndexOutOfRange {
            requested: i,
            available: self.index.count(),
        })?;
        self.file.seek(SeekFrom::Start(off))?;
        let mut reader = FastaReader::new(&mut self.file);
        reader
            .next_record()?
            .ok_or_else(|| SeqError::BadIndex(format!("offset {off} points past end of file")))
    }

    /// Fetch a contiguous range of sequences.
    pub fn fetch_range(
        &mut self,
        range: std::ops::Range<usize>,
    ) -> Result<Vec<Sequence>, SeqError> {
        range.map(|i| self.fetch(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasta;

    fn sample_fasta() -> String {
        let recs = vec![
            Sequence::of("q1", b"MKVLAW"),
            Sequence::of("q2", &[b'A'; 150]),
            Sequence::of("q3", b"W"),
        ];
        fasta::to_string(&recs)
    }

    #[test]
    fn build_records_count_maxlen_offsets() {
        let text = sample_fasta();
        let idx = SeqIndex::build(text.as_bytes()).unwrap();
        assert_eq!(idx.count(), 3);
        assert_eq!(idx.max_len, 150);
        assert_eq!(idx.offsets[0], 0);
        // Every offset must point at a '>' byte.
        for &off in &idx.offsets {
            assert_eq!(text.as_bytes()[off as usize], b'>');
        }
    }

    #[test]
    fn binary_round_trip() {
        let idx = SeqIndex::build(sample_fasta().as_bytes()).unwrap();
        let mut buf = Vec::new();
        idx.write_to(&mut buf).unwrap();
        let back = SeqIndex::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(idx, back);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        SeqIndex::build(sample_fasta().as_bytes())
            .unwrap()
            .write_to(&mut buf)
            .unwrap();
        buf[0] = b'X';
        assert!(SeqIndex::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn non_monotonic_offsets_rejected() {
        let idx = SeqIndex {
            max_len: 5,
            offsets: vec![10, 10],
        };
        let mut buf = Vec::new();
        idx.write_to(&mut buf).unwrap();
        assert!(SeqIndex::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_offsets_rejected_with_clear_error() {
        let idx = SeqIndex::build(sample_fasta().as_bytes()).unwrap();
        let mut buf = Vec::new();
        idx.write_to(&mut buf).unwrap();
        // Chop the last offset in half.
        buf.truncate(buf.len() - 4);
        match SeqIndex::read_from(&mut buf.as_slice()) {
            Err(SeqError::BadIndex(msg)) => {
                assert!(msg.contains("promises 3 entries"), "{msg}");
                assert!(msg.contains("entry 2"), "{msg}");
            }
            other => panic!("expected BadIndex, got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_rejected_with_clear_error() {
        // Magic present, count half-written.
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&[0u8; 3]);
        match SeqIndex::read_from(&mut buf.as_slice()) {
            Err(SeqError::BadIndex(msg)) => assert!(msg.contains("truncated header"), "{msg}"),
            other => panic!("expected BadIndex, got {other:?}"),
        }
    }

    #[test]
    fn huge_count_does_not_preallocate() {
        // Header promises u64::MAX sequences then ends; must error, not OOM.
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            SeqIndex::read_from(&mut buf.as_slice()),
            Err(SeqError::BadIndex(_))
        ));
    }

    #[test]
    fn offsets_past_eof_rejected_at_open() {
        let dir = std::env::temp_dir().join(format!("swhidx_eof_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("queries.fasta");
        let text = sample_fasta();
        std::fs::write(&path, &text).unwrap();

        // An index whose last offset points past the file (e.g. the FASTA
        // was truncated after indexing) must be rejected at open.
        let mut idx = SeqIndex::build(text.as_bytes()).unwrap();
        idx.offsets.push(text.len() as u64 + 100);
        idx.save_alongside(&path).unwrap();
        match IndexedFasta::open(&path) {
            Err(SeqError::BadIndex(msg)) => assert!(msg.contains("past end of file"), "{msg}"),
            other => panic!("expected BadIndex, got {:?}", other.map(|_| ())),
        }

        // with_index performs the same validation.
        let stale = SeqIndex {
            max_len: 10,
            offsets: vec![0, text.len() as u64],
        };
        assert!(IndexedFasta::with_index(&path, stale).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_fasta_indexes_to_zero() {
        let idx = SeqIndex::build(&b""[..]).unwrap();
        assert_eq!(idx.count(), 0);
        assert_eq!(idx.max_len, 0);
    }

    #[test]
    fn residues_before_header_rejected() {
        assert!(SeqIndex::build(&b"MKVL\n>a\nMK\n"[..]).is_err());
    }

    #[test]
    fn indexed_fasta_random_access() {
        let dir = std::env::temp_dir().join(format!("swhidx_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("queries.fasta");
        std::fs::write(&path, sample_fasta()).unwrap();

        let mut ixf = IndexedFasta::open(&path).unwrap();
        assert_eq!(ixf.count(), 3);
        // Out-of-order access must work (that is the point of the index).
        let q3 = ixf.fetch(2).unwrap();
        assert_eq!(q3.id, "q3");
        assert_eq!(q3.residues, b"W");
        let q1 = ixf.fetch(0).unwrap();
        assert_eq!(q1.id, "q1");
        let range = ixf.fetch_range(1..3).unwrap();
        assert_eq!(range.len(), 2);
        assert_eq!(range[0].id, "q2");

        // Second open must load the saved index file instead of rebuilding.
        assert!(index_path_for(&path).exists());
        let mut again = IndexedFasta::open(&path).unwrap();
        assert_eq!(again.fetch(1).unwrap().residues.len(), 150);

        assert!(matches!(
            ixf.fetch(3),
            Err(SeqError::IndexOutOfRange {
                requested: 3,
                available: 3
            })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
