//! An immutable, shareable view of one database generation.
//!
//! The serve daemon holds exactly one of these per generation: the subject
//! ids, the database-order residue arena the scan kernels stream through,
//! the FNV db digest (cache key + remote-slave handshake), and per-chunk
//! residue counts for shard balancing. A query captures an
//! `Arc<DbSnapshot>` at admission and scans that snapshot to completion —
//! a concurrent hot-reload swaps the daemon's pointer but never mutates a
//! snapshot, so no query can observe a mixed-generation database.
//!
//! Snapshots come from two places: packed out of freshly parsed FASTA
//! ([`DbSnapshot::from_encoded`]), or borrowed zero-copy out of a
//! memory-mapped `.swdb` store file ([`DbSnapshot::from_parts`] over a
//! shared-window [`DbArena`]). Both are indistinguishable to consumers.

use crate::alphabet::Alphabet;
use crate::arena::DbArena;
use crate::digest::{db_digest, db_digest_parts};
use crate::error::SeqError;
use crate::sequence::EncodedSequence;

/// Sequences per entry of the chunked residue-count table.
pub const CHUNK_STRIDE: usize = 1024;

/// One immutable database generation: ids + database-order arena + digest.
#[derive(Debug, Clone)]
pub struct DbSnapshot {
    /// Human-readable database name ("" when unnamed).
    name: String,
    /// The alphabet every sequence is encoded in.
    alphabet: Alphabet,
    /// Subject ids, in database order.
    ids: Vec<String>,
    /// Residues in database order (never permuted — scan position is the
    /// database index, which the serve shard scheduler relies on).
    arena: DbArena,
    /// FNV-1a digest over ids + codes (see [`crate::digest::db_digest`]).
    digest: u64,
    /// Weighted prefix sums over [`CHUNK_STRIDE`]-sequence chunks:
    /// `weighted_prefix[j]` = Σ (len+1) of sequences `[0, j·STRIDE)`.
    /// Lets shard balancing skip whole chunks instead of walking every
    /// span (the per-chunk residue counts a `.swdb` store persists).
    weighted_prefix: Vec<u64>,
}

impl DbSnapshot {
    /// Build a snapshot by packing encoded sequences (the FASTA load path).
    /// The digest is computed here — O(db), once per load.
    pub fn from_encoded(name: impl Into<String>, subjects: &[EncodedSequence]) -> DbSnapshot {
        let alphabet = subjects
            .first()
            .map(|s| s.alphabet)
            .unwrap_or(Alphabet::Protein);
        let arena = DbArena::from_encoded(subjects);
        let ids = subjects.iter().map(|s| s.id.clone()).collect();
        let digest = db_digest(subjects);
        let weighted_prefix = weighted_chunk_prefix(&arena);
        DbSnapshot {
            name: name.into(),
            alphabet,
            ids,
            arena,
            digest,
            weighted_prefix,
        }
    }

    /// Assemble a snapshot from pre-built parts (the store load path). The
    /// digest is **trusted**, not recomputed — stores record it so cold
    /// start stays O(1) in database size; callers wanting paranoia re-hash
    /// with [`DbSnapshot::verify_digest`].
    ///
    /// `chunk_residues`, when given, are per-[`CHUNK_STRIDE`] *residue*
    /// sums (unweighted, as a store persists them); they are verified
    /// against the arena spans, so a store whose chunk table disagrees
    /// with its spans is rejected instead of silently mis-balancing.
    pub fn from_parts(
        name: impl Into<String>,
        alphabet: Alphabet,
        ids: Vec<String>,
        arena: DbArena,
        digest: u64,
        chunk_residues: Option<&[u64]>,
    ) -> Result<DbSnapshot, SeqError> {
        if arena.is_permuted() {
            return Err(SeqError::BadArena(
                "snapshot arena must be in database order".into(),
            ));
        }
        if ids.len() != arena.len() {
            return Err(SeqError::BadArena(format!(
                "{} ids for {} sequences",
                ids.len(),
                arena.len()
            )));
        }
        let weighted_prefix = weighted_chunk_prefix(&arena);
        if let Some(stored) = chunk_residues {
            let chunks = arena.len().div_ceil(CHUNK_STRIDE);
            if stored.len() != chunks {
                return Err(SeqError::BadArena(format!(
                    "chunk table has {} entries, expected {chunks}",
                    stored.len()
                )));
            }
            for (j, &res) in stored.iter().enumerate() {
                let seqs_in_chunk = (arena.len() - j * CHUNK_STRIDE).min(CHUNK_STRIDE) as u64;
                let expect = weighted_prefix[j + 1] - weighted_prefix[j] - seqs_in_chunk;
                if res != expect {
                    return Err(SeqError::BadArena(format!(
                        "chunk {j} records {res} residues but spans sum to {expect}"
                    )));
                }
            }
        }
        Ok(DbSnapshot {
            name: name.into(),
            alphabet,
            ids,
            arena,
            digest,
            weighted_prefix,
        })
    }

    /// Recompute the digest from ids + arena and compare against the
    /// recorded one. `Ok(())` on match.
    pub fn verify_digest(&self) -> Result<(), SeqError> {
        let actual = db_digest_parts(&self.ids, &self.arena);
        if actual != self.digest {
            return Err(SeqError::BadArena(format!(
                "db digest mismatch: recorded {:016x}, content hashes to {actual:016x}",
                self.digest
            )));
        }
        Ok(())
    }

    /// Database name ("" when unnamed).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The alphabet the residues are encoded in.
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Total residues across all sequences.
    pub fn total_residues(&self) -> u64 {
        self.arena.total_residues()
    }

    /// Id of sequence `i` (database order).
    pub fn id(&self, i: usize) -> &str {
        &self.ids[i]
    }

    /// All ids, in database order.
    pub fn ids(&self) -> &[String] {
        &self.ids
    }

    /// Residues of sequence `i` (database order).
    pub fn residues(&self, i: usize) -> &[u8] {
        self.arena.residues(i)
    }

    /// Length in residues of sequence `i`.
    pub fn seq_len(&self, i: usize) -> usize {
        self.arena.seq_len(i)
    }

    /// The database-order arena the kernels scan.
    pub fn arena(&self) -> &DbArena {
        &self.arena
    }

    /// The FNV-1a database digest (ids + codes, database order).
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Total residues of sequences in `range` (database order).
    pub fn range_residues(&self, range: std::ops::Range<usize>) -> u64 {
        self.arena.range_residues(range)
    }

    /// Materialise owned `EncodedSequence`s (test/oracle convenience —
    /// copies every residue).
    pub fn to_encoded(&self) -> Vec<EncodedSequence> {
        (0..self.len())
            .map(|i| EncodedSequence {
                id: self.ids[i].clone(),
                codes: self.arena.residues(i).to_vec(),
                alphabet: self.alphabet,
            })
            .collect()
    }

    /// Per-chunk residue counts as a store persists them:
    /// entry `j` = Σ residues of sequences `[j·STRIDE, (j+1)·STRIDE)`.
    pub fn chunk_residues(&self) -> Vec<u64> {
        let chunks = self.len().div_ceil(CHUNK_STRIDE);
        (0..chunks)
            .map(|j| {
                let seqs = (self.len() - j * CHUNK_STRIDE).min(CHUNK_STRIDE) as u64;
                self.weighted_prefix[j + 1] - self.weighted_prefix[j] - seqs
            })
            .collect()
    }

    /// Split the database into `shards` contiguous index ranges of roughly
    /// equal residue weight (each sequence weighs `len + 1`, so runs of
    /// empty sequences still advance the split).
    ///
    /// Produces exactly the ranges of a sequential weighted walk, but uses
    /// the chunked prefix sums to skip whole chunks — O(shards · (log c +
    /// STRIDE)) instead of O(sequences).
    pub fn shard_ranges(&self, shards: usize) -> Vec<(usize, usize)> {
        let count = self.len();
        if count == 0 {
            return vec![(0, 0)];
        }
        let n = shards.clamp(1, count) as u64;
        let total = *self.weighted_prefix.last().expect("prefix never empty");
        let mut out = Vec::with_capacity(n as usize);
        let mut start = 0usize;
        let mut i_floor = 0usize; // first index eligible to end the next shard
        for k in 1..n {
            // Smallest i in [i_floor, count-1) with A(i)·n ≥ k·total, where
            // A(i) is the weighted prefix through sequence i inclusive.
            let target = k * total;
            // First chunk whose end-of-chunk prefix crosses the target.
            let mut lo = i_floor / CHUNK_STRIDE;
            let mut hi = self.weighted_prefix.len() - 1; // number of chunks
            while lo < hi {
                let mid = (lo + hi) / 2;
                if self.weighted_prefix[mid + 1] * n >= target {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            let chunk = lo;
            let mut i = (chunk * CHUNK_STRIDE).max(i_floor);
            let mut acc = self.weighted_prefix[chunk]
                + self.arena.range_residues(chunk * CHUNK_STRIDE..i)
                + (i - chunk * CHUNK_STRIDE) as u64;
            let mut found = None;
            while i + 1 < count {
                acc += self.arena.seq_len(i) as u64 + 1;
                if acc * n >= target {
                    found = Some(i);
                    break;
                }
                i += 1;
            }
            match found {
                Some(i) => {
                    out.push((start, i + 1));
                    start = i + 1;
                    i_floor = i + 1;
                }
                None => break,
            }
        }
        out.push((start, count));
        out
    }
}

/// Weighted (`len + 1`) prefix sums at chunk granularity; entry `j` covers
/// sequences `[0, j·STRIDE)`, final entry covers the whole database.
fn weighted_chunk_prefix(arena: &DbArena) -> Vec<u64> {
    let count = arena.len();
    let chunks = count.div_ceil(CHUNK_STRIDE);
    let mut prefix = Vec::with_capacity(chunks + 1);
    prefix.push(0u64);
    let mut acc = 0u64;
    for j in 0..chunks {
        let lo = j * CHUNK_STRIDE;
        let hi = ((j + 1) * CHUNK_STRIDE).min(count);
        acc += arena.range_residues(lo..hi) + (hi - lo) as u64;
        prefix.push(acc);
    }
    prefix
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(lens: &[usize]) -> Vec<EncodedSequence> {
        lens.iter()
            .enumerate()
            .map(|(i, &len)| EncodedSequence {
                id: format!("s{i}"),
                codes: (0..len).map(|j| ((i + j) % 20) as u8).collect(),
                alphabet: Alphabet::Protein,
            })
            .collect()
    }

    /// The sequential reference the chunked shard_ranges must reproduce.
    fn naive_shard_ranges(lens: &[usize], shards: usize) -> Vec<(usize, usize)> {
        if lens.is_empty() {
            return vec![(0, 0)];
        }
        let n = shards.clamp(1, lens.len());
        let total: u64 = lens.iter().map(|&l| l as u64 + 1).sum();
        let mut out = Vec::with_capacity(n);
        let mut start = 0usize;
        let mut acc = 0u64;
        for (i, &l) in lens.iter().enumerate() {
            acc += l as u64 + 1;
            let k = out.len() as u64 + 1;
            if out.len() < n - 1 && i + 1 < lens.len() && acc * n as u64 >= k * total {
                out.push((start, i + 1));
                start = i + 1;
            }
        }
        out.push((start, lens.len()));
        out
    }

    #[test]
    fn from_encoded_matches_db_digest_and_ids() {
        let db = seqs(&[5, 0, 9, 3]);
        let snap = DbSnapshot::from_encoded("toy", &db);
        assert_eq!(snap.len(), 4);
        assert_eq!(snap.total_residues(), 17);
        assert_eq!(snap.digest(), db_digest(&db));
        assert_eq!(snap.id(2), "s2");
        assert_eq!(snap.residues(2), &db[2].codes[..]);
        assert_eq!(snap.to_encoded(), db);
        snap.verify_digest().unwrap();
    }

    #[test]
    fn from_parts_validates_geometry_and_chunks() {
        let db = seqs(&[4, 2]);
        let good = DbSnapshot::from_encoded("", &db);
        let arena = DbArena::from_encoded(&db);
        // id count mismatch
        assert!(DbSnapshot::from_parts(
            "",
            Alphabet::Protein,
            vec!["only-one".into()],
            arena.clone(),
            good.digest(),
            None
        )
        .is_err());
        // permuted arena rejected
        assert!(DbSnapshot::from_parts(
            "",
            Alphabet::Protein,
            vec!["a".into(), "b".into()],
            DbArena::length_sorted(&db),
            good.digest(),
            None
        )
        .is_err());
        // chunk table disagreeing with spans rejected
        assert!(DbSnapshot::from_parts(
            "",
            Alphabet::Protein,
            vec!["s0".into(), "s1".into()],
            arena.clone(),
            good.digest(),
            Some(&[7])
        )
        .is_err());
        // consistent parts accepted, digest trusted as recorded
        let snap = DbSnapshot::from_parts(
            "x",
            Alphabet::Protein,
            vec!["s0".into(), "s1".into()],
            arena,
            good.digest(),
            Some(&good.chunk_residues()),
        )
        .unwrap();
        assert_eq!(snap.digest(), good.digest());
        snap.verify_digest().unwrap();
        // A lying digest is carried verbatim but caught by verify_digest.
        let lying = DbSnapshot::from_parts(
            "x",
            Alphabet::Protein,
            vec!["s0".into(), "s1".into()],
            DbArena::from_encoded(&db),
            good.digest() ^ 1,
            None,
        )
        .unwrap();
        assert!(lying.verify_digest().is_err());
    }

    #[test]
    fn shard_ranges_match_sequential_reference() {
        // Deterministic pseudo-random lengths, sizes crossing CHUNK_STRIDE.
        let mut state = 0x9e37_79b9_u64;
        let mut lens = Vec::new();
        for _ in 0..(CHUNK_STRIDE * 3 + 77) {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lens.push((state >> 33) as usize % 50);
        }
        let db = seqs(&lens);
        let snap = DbSnapshot::from_encoded("", &db);
        for shards in [1, 2, 3, 7, 16, 64, 1000, lens.len(), lens.len() * 2] {
            assert_eq!(
                snap.shard_ranges(shards),
                naive_shard_ranges(&lens, shards),
                "shards={shards}"
            );
        }
        // Small and degenerate databases.
        for lens in [vec![], vec![0], vec![0, 0, 0], vec![9], vec![1, 100, 1]] {
            let db = seqs(&lens);
            let snap = DbSnapshot::from_encoded("", &db);
            for shards in 1..6 {
                assert_eq!(snap.shard_ranges(shards), naive_shard_ranges(&lens, shards));
            }
        }
    }

    #[test]
    fn chunk_residues_round_trip() {
        let lens: Vec<usize> = (0..CHUNK_STRIDE + 10).map(|i| i % 7).collect();
        let db = seqs(&lens);
        let snap = DbSnapshot::from_encoded("", &db);
        let chunks = snap.chunk_residues();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks.iter().sum::<u64>(), snap.total_residues());
        // Feeding them back through from_parts re-verifies them.
        DbSnapshot::from_parts(
            "",
            Alphabet::Protein,
            snap.ids().to_vec(),
            snap.arena().clone(),
            snap.digest(),
            Some(&chunks),
        )
        .unwrap();
    }
}
