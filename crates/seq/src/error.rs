//! Error type shared across the sequence substrate.

use std::fmt;
use std::io;

/// Errors produced while parsing, encoding, or indexing sequence data.
#[derive(Debug)]
pub enum SeqError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A residue character is not part of the selected alphabet.
    InvalidResidue {
        /// The offending byte.
        byte: u8,
        /// Zero-based position within the sequence.
        position: usize,
    },
    /// The input is not syntactically valid FASTA.
    MalformedFasta(String),
    /// The index file is corrupt or was written by an incompatible version.
    BadIndex(String),
    /// An arena's geometry (window, spans, permutation) is inconsistent.
    BadArena(String),
    /// A sequence identifier was requested that does not exist.
    UnknownSequence(String),
    /// A sequence ordinal was requested that is out of range.
    IndexOutOfRange {
        /// Requested ordinal.
        requested: usize,
        /// Number of sequences actually present.
        available: usize,
    },
    /// An empty sequence or database where one is not allowed.
    Empty(String),
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::Io(e) => write!(f, "I/O error: {e}"),
            SeqError::InvalidResidue { byte, position } => write!(
                f,
                "invalid residue {:?} (0x{byte:02x}) at position {position}",
                *byte as char
            ),
            SeqError::MalformedFasta(msg) => write!(f, "malformed FASTA: {msg}"),
            SeqError::BadIndex(msg) => write!(f, "bad index file: {msg}"),
            SeqError::BadArena(msg) => write!(f, "bad arena: {msg}"),
            SeqError::UnknownSequence(id) => write!(f, "unknown sequence {id:?}"),
            SeqError::IndexOutOfRange {
                requested,
                available,
            } => write!(
                f,
                "sequence index {requested} out of range (database holds {available})"
            ),
            SeqError::Empty(what) => write!(f, "empty {what}"),
        }
    }
}

impl std::error::Error for SeqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SeqError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SeqError {
    fn from(e: io::Error) -> Self {
        SeqError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_residue() {
        let e = SeqError::InvalidResidue {
            byte: b'!',
            position: 3,
        };
        let s = e.to_string();
        assert!(s.contains("'!'"), "{s}");
        assert!(s.contains("position 3"), "{s}");
    }

    #[test]
    fn display_index_out_of_range() {
        let e = SeqError::IndexOutOfRange {
            requested: 10,
            available: 2,
        };
        assert_eq!(
            e.to_string(),
            "sequence index 10 out of range (database holds 2)"
        );
    }

    #[test]
    fn io_error_round_trips_through_source() {
        use std::error::Error;
        let e: SeqError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
