//! In-memory sequence databases and their summary statistics.
//!
//! A *task* in the paper's execution environment is the comparison of one
//! query sequence against one whole genomic database (very coarse-grained
//! parallelisation, §IV). The scheduler never needs the residues themselves —
//! only the aggregate statistics ([`DbStats`]) that determine how many DP
//! cells a task updates — while the compute kernels need the materialised
//! [`Database`].

use crate::alphabet::Alphabet;
use crate::error::SeqError;
use crate::sequence::{EncodedSequence, Sequence};

/// Summary statistics of a sequence database.
///
/// `total_residues` is the quantity that matters for scheduling: comparing a
/// query of length `m` against the database updates
/// `m × total_residues` DP cells.
#[derive(Debug, Clone, PartialEq)]
pub struct DbStats {
    /// Human-readable database name.
    pub name: String,
    /// Number of sequences.
    pub num_sequences: usize,
    /// Sum of all sequence lengths.
    pub total_residues: u64,
    /// Length of the shortest sequence (0 for an empty database).
    pub min_len: usize,
    /// Length of the longest sequence (0 for an empty database).
    pub max_len: usize,
}

impl DbStats {
    /// Mean sequence length (0.0 for an empty database).
    pub fn mean_len(&self) -> f64 {
        if self.num_sequences == 0 {
            0.0
        } else {
            self.total_residues as f64 / self.num_sequences as f64
        }
    }

    /// DP cells updated when a query of `query_len` residues is compared to
    /// the whole database.
    pub fn cells_for_query(&self, query_len: usize) -> u64 {
        query_len as u64 * self.total_residues
    }
}

/// An in-memory sequence database.
#[derive(Debug, Clone, PartialEq)]
pub struct Database {
    /// Human-readable name (e.g. `"UniProtKB/SwissProt"`).
    pub name: String,
    /// The alphabet all member sequences are drawn from.
    pub alphabet: Alphabet,
    /// The sequences.
    pub sequences: Vec<Sequence>,
}

impl Database {
    /// Build a database from records, validating nothing (residues are
    /// validated when encoded).
    pub fn new(name: impl Into<String>, alphabet: Alphabet, sequences: Vec<Sequence>) -> Self {
        Database {
            name: name.into(),
            alphabet,
            sequences,
        }
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// Whether the database holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// Compute summary statistics.
    pub fn stats(&self) -> DbStats {
        let mut total = 0u64;
        let mut min_len = usize::MAX;
        let mut max_len = 0usize;
        for s in &self.sequences {
            total += s.len() as u64;
            min_len = min_len.min(s.len());
            max_len = max_len.max(s.len());
        }
        if self.sequences.is_empty() {
            min_len = 0;
        }
        DbStats {
            name: self.name.clone(),
            num_sequences: self.sequences.len(),
            total_residues: total,
            min_len,
            max_len,
        }
    }

    /// Encode every sequence under the database alphabet.
    pub fn encode_all(&self) -> Result<Vec<EncodedSequence>, SeqError> {
        self.sequences
            .iter()
            .map(|s| EncodedSequence::from_sequence(s, self.alphabet))
            .collect()
    }

    /// Find a sequence by identifier.
    pub fn get(&self, id: &str) -> Option<&Sequence> {
        self.sequences.iter().find(|s| s.id == id)
    }

    /// Split the database into `n` chunks of near-equal *residue* counts
    /// (coarse-grained parallelisation, Fig. 3b): chunk boundaries never
    /// split a sequence.
    pub fn chunks_by_residues(&self, n: usize) -> Vec<&[Sequence]> {
        assert!(n > 0, "chunk count must be positive");
        let total: u64 = self.sequences.iter().map(|s| s.len() as u64).sum();
        let target = total.div_ceil(n as u64).max(1);
        let mut out = Vec::with_capacity(n);
        let mut start = 0usize;
        let mut acc = 0u64;
        for (i, s) in self.sequences.iter().enumerate() {
            acc += s.len() as u64;
            if acc >= target && out.len() + 1 < n {
                out.push(&self.sequences[start..=i]);
                start = i + 1;
                acc = 0;
            }
        }
        if start <= self.sequences.len() {
            out.push(&self.sequences[start..]);
        }
        while out.len() < n {
            out.push(&self.sequences[self.sequences.len()..]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        Database::new(
            "toy",
            Alphabet::Protein,
            vec![
                Sequence::of("a", b"MKVL"),
                Sequence::of("b", b"AW"),
                Sequence::of("c", b"ACDEFGHIKL"),
            ],
        )
    }

    #[test]
    fn stats_basic() {
        let s = db().stats();
        assert_eq!(s.num_sequences, 3);
        assert_eq!(s.total_residues, 16);
        assert_eq!(s.min_len, 2);
        assert_eq!(s.max_len, 10);
        assert!((s.mean_len() - 16.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_empty() {
        let d = Database::new("e", Alphabet::Protein, vec![]);
        let s = d.stats();
        assert_eq!(s.num_sequences, 0);
        assert_eq!(s.min_len, 0);
        assert_eq!(s.max_len, 0);
        assert_eq!(s.mean_len(), 0.0);
        assert!(d.is_empty());
    }

    #[test]
    fn cells_for_query_is_product() {
        let s = db().stats();
        assert_eq!(s.cells_for_query(100), 1600);
        assert_eq!(s.cells_for_query(0), 0);
    }

    #[test]
    fn get_by_id() {
        let d = db();
        assert_eq!(d.get("b").unwrap().residues, b"AW");
        assert!(d.get("zzz").is_none());
    }

    #[test]
    fn encode_all_sizes() {
        let enc = db().encode_all().unwrap();
        assert_eq!(enc.len(), 3);
        assert_eq!(enc[2].len(), 10);
    }

    #[test]
    fn chunks_cover_all_sequences_without_overlap() {
        let d = db();
        for n in 1..=5 {
            let chunks = d.chunks_by_residues(n);
            assert_eq!(chunks.len(), n);
            let reassembled: Vec<_> = chunks.iter().flat_map(|c| c.iter()).collect();
            assert_eq!(reassembled.len(), d.len());
            for (orig, got) in d.sequences.iter().zip(reassembled) {
                assert_eq!(orig, got);
            }
        }
    }

    #[test]
    fn chunks_balance_residues() {
        let seqs: Vec<Sequence> = (0..100)
            .map(|i| Sequence::of(format!("s{i}"), &[b'A'; 50]))
            .collect();
        let d = Database::new("uniform", Alphabet::Protein, seqs);
        let chunks = d.chunks_by_residues(4);
        let counts: Vec<u64> = chunks
            .iter()
            .map(|c| c.iter().map(|s| s.len() as u64).sum())
            .collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 50, "imbalanced: {counts:?}");
    }
}
