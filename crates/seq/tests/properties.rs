//! Property-based tests of the sequence substrate: FASTA round-trips,
//! index correctness on arbitrary inputs, encoding laws.

use proptest::prelude::*;
use swhybrid_seq::alphabet::Alphabet;
use swhybrid_seq::fasta;
use swhybrid_seq::index::SeqIndex;
use swhybrid_seq::sequence::Sequence;

/// Characters legal in generated identifiers and description words.
const ID_CHARS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_.|-";

fn word(min: usize, max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(prop::sample::select(ID_CHARS.to_vec()), min..max + 1)
        .prop_map(|chars| String::from_utf8(chars).unwrap())
}

/// Identifier strings that survive a FASTA header round-trip (no spaces —
/// FASTA splits at the first whitespace).
fn fasta_id() -> impl Strategy<Value = String> {
    word(1, 24)
}

/// Description text (may be empty; single spaces between words, so equality
/// is exact — FASTA collapses neither but we avoid leading/trailing runs).
fn fasta_desc() -> impl Strategy<Value = String> {
    prop::collection::vec(word(1, 12), 0..5).prop_map(|words| words.join(" "))
}

/// Residue strings over the protein alphabet's canonical letters.
fn residues() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop::sample::select(b"ARNDCQEGHILKMFPSTWYV".to_vec()),
        0..200,
    )
}

fn records() -> impl Strategy<Value = Vec<Sequence>> {
    prop::collection::vec(
        (fasta_id(), fasta_desc(), residues())
            .prop_map(|(id, desc, res)| Sequence::new(id, desc, res)),
        0..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fasta_write_parse_round_trips(recs in records()) {
        let text = fasta::to_string(&recs);
        let parsed = fasta::parse_str(&text).unwrap();
        prop_assert_eq!(parsed, recs);
    }

    #[test]
    fn index_counts_and_offsets_are_exact(recs in records()) {
        let text = fasta::to_string(&recs);
        let idx = SeqIndex::build(text.as_bytes()).unwrap();
        prop_assert_eq!(idx.count(), recs.len());
        let max_len = recs.iter().map(|r| r.len()).max().unwrap_or(0);
        prop_assert_eq!(idx.max_len, max_len as u64);
        // Every offset points at the '>' of the right record.
        for (i, &off) in idx.offsets.iter().enumerate() {
            prop_assert_eq!(text.as_bytes()[off as usize], b'>');
            let rest = &text[off as usize..];
            let mut reader = swhybrid_seq::fasta::FastaReader::new(rest.as_bytes());
            let rec = reader.next_record().unwrap().unwrap();
            prop_assert_eq!(&rec, &recs[i]);
        }
    }

    #[test]
    fn index_binary_serialisation_round_trips(recs in records()) {
        let text = fasta::to_string(&recs);
        let idx = SeqIndex::build(text.as_bytes()).unwrap();
        let mut buf = Vec::new();
        idx.write_to(&mut buf).unwrap();
        let back = SeqIndex::read_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(idx, back);
    }

    #[test]
    fn protein_encode_decode_is_identity(res in residues()) {
        let codes = Alphabet::Protein.encode(&res).unwrap();
        prop_assert_eq!(Alphabet::Protein.decode_all(&codes), res);
    }

    #[test]
    fn encoding_is_case_insensitive(res in residues()) {
        let lower: Vec<u8> = res.iter().map(|b| b.to_ascii_lowercase()).collect();
        prop_assert_eq!(
            Alphabet::Protein.encode(&res).unwrap(),
            Alphabet::Protein.encode(&lower).unwrap()
        );
    }

    #[test]
    fn chunking_partitions_any_database(recs in records(), n in 1usize..6) {
        let db = swhybrid_seq::Database::new("p", Alphabet::Protein, recs.clone());
        let chunks = db.chunks_by_residues(n);
        prop_assert_eq!(chunks.len(), n);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, recs.len());
        let flattened: Vec<&Sequence> = chunks.iter().flat_map(|c| c.iter()).collect();
        for (orig, got) in recs.iter().zip(flattened) {
            prop_assert_eq!(orig, got);
        }
    }
}
