//! Classic quadratic-space Smith-Waterman with linear gaps (paper §II-A).
//!
//! Phase 1 builds the similarity matrix `H` of Eq. 1:
//!
//! ```text
//! H[i][j] = max( H[i-1][j-1] + sub(s[i], t[j]),
//!                H[i][j-1]   - g,
//!                H[i-1][j]   - g,
//!                0 )
//! ```
//!
//! Each cell also records which predecessor produced its value; phase 2
//! starts from the highest cell and follows those arrows until a zero is
//! reached (Fig. 2), yielding the optimal local alignment.
//!
//! This implementation is intentionally simple and allocation-honest: it is
//! the *oracle* the linear-space, banded, and SIMD kernels are validated
//! against, and the engine behind the didactic examples.

use crate::alignment::{AlignOp, Alignment};
use crate::scoring::{GapModel, Scoring};

/// Traceback direction flags stored per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Score was clamped to zero: local alignment starts here.
    Stop,
    /// Came from `H[i-1][j-1]` (diagonal arrow: `s[i]` aligned to `t[j]`).
    Diag,
    /// Came from `H[i-1][j]` (up arrow: `s[i]` aligned to a gap).
    Up,
    /// Came from `H[i][j-1]` (left arrow: gap aligned to `t[j]`).
    Left,
}

/// The full similarity matrix, with per-cell traceback directions.
///
/// Rows correspond to `s` (0..=m), columns to `t` (0..=n); row 0 and
/// column 0 are the zero border of Eq. 1.
pub struct SwMatrix {
    m: usize,
    n: usize,
    h: Vec<i32>,
    dir: Vec<Dir>,
    best: (usize, usize),
}

impl SwMatrix {
    /// Phase 1: compute the similarity matrix for encoded sequences
    /// `s` (length m) and `t` (length n).
    ///
    /// # Panics
    /// Panics if the scoring scheme uses affine gaps — use
    /// [`crate::gotoh`] for those.
    pub fn build(s: &[u8], t: &[u8], scoring: &Scoring) -> SwMatrix {
        let g = match scoring.gap {
            GapModel::Linear { penalty } => penalty,
            GapModel::Affine { .. } => {
                panic!("SwMatrix implements Eq. 1 (linear gaps); use gotoh for affine")
            }
        };
        let (m, n) = (s.len(), t.len());
        let cols = n + 1;
        let mut h = vec![0i32; (m + 1) * cols];
        let mut dir = vec![Dir::Stop; (m + 1) * cols];
        let mut best = (0usize, 0usize);
        let mut best_score = 0i32;

        for i in 1..=m {
            let si = s[i - 1];
            let row = scoring.matrix.row(si);
            for j in 1..=n {
                let diag = h[(i - 1) * cols + (j - 1)] + row[t[j - 1] as usize] as i32;
                let up = h[(i - 1) * cols + j] - g;
                let left = h[i * cols + (j - 1)] - g;
                // Tie-break preference diag > up > left matches the common
                // textbook convention and keeps tracebacks deterministic.
                let (mut val, mut d) = (diag, Dir::Diag);
                if up > val {
                    val = up;
                    d = Dir::Up;
                }
                if left > val {
                    val = left;
                    d = Dir::Left;
                }
                if val <= 0 {
                    val = 0;
                    d = Dir::Stop;
                }
                h[i * cols + j] = val;
                dir[i * cols + j] = d;
                if h[i * cols + j] > best_score {
                    best_score = h[i * cols + j];
                    best = (i, j);
                }
            }
        }
        SwMatrix { m, n, h, dir, best }
    }

    /// Dimensions `(m, n)` of the aligned sequences.
    pub fn dims(&self) -> (usize, usize) {
        (self.m, self.n)
    }

    /// Value of `H[i][j]`.
    #[inline]
    pub fn h(&self, i: usize, j: usize) -> i32 {
        self.h[i * (self.n + 1) + j]
    }

    /// Traceback direction of cell `(i, j)`.
    #[inline]
    pub fn dir(&self, i: usize, j: usize) -> Dir {
        self.dir[i * (self.n + 1) + j]
    }

    /// Coordinates of the highest-scoring cell.
    pub fn best_cell(&self) -> (usize, usize) {
        self.best
    }

    /// The optimal local alignment score (the "similarity" of §II).
    pub fn best_score(&self) -> i32 {
        self.h(self.best.0, self.best.1)
    }

    /// Phase 2: follow the arrows from the best cell down to a zero cell,
    /// producing the optimal local alignment.
    pub fn traceback(&self, s: &[u8], t: &[u8]) -> Alignment {
        self.traceback_from(self.best, s, t)
    }

    /// Phase 2 starting from an arbitrary cell (used by tests and by
    /// suboptimal-alignment exploration).
    pub fn traceback_from(&self, cell: (usize, usize), s: &[u8], t: &[u8]) -> Alignment {
        let (mut i, mut j) = cell;
        let score = self.h(i, j);
        let mut ops = Vec::new();
        while self.dir(i, j) != Dir::Stop {
            match self.dir(i, j) {
                Dir::Diag => {
                    ops.push(if s[i - 1] == t[j - 1] {
                        AlignOp::Match
                    } else {
                        AlignOp::Mismatch
                    });
                    i -= 1;
                    j -= 1;
                }
                Dir::Up => {
                    ops.push(AlignOp::Delete);
                    i -= 1;
                }
                Dir::Left => {
                    ops.push(AlignOp::Insert);
                    j -= 1;
                }
                Dir::Stop => unreachable!(),
            }
        }
        ops.reverse();
        Alignment {
            score,
            s_range: (i, cell.0),
            t_range: (j, cell.1),
            ops,
        }
    }

    /// Render the matrix with row/column residue headers, in the style of
    /// the paper's Fig. 2.
    pub fn render(&self, s_ascii: &[u8], t_ascii: &[u8]) -> String {
        let mut out = String::new();
        out.push_str("    *  ");
        for &c in t_ascii {
            out.push_str(&format!("{:>3} ", c as char));
        }
        out.push('\n');
        for i in 0..=self.m {
            let label = if i == 0 { b'*' } else { s_ascii[i - 1] };
            out.push_str(&format!("{} ", label as char));
            for j in 0..=self.n {
                out.push_str(&format!("{:>3} ", self.h(i, j)));
            }
            out.push('\n');
        }
        out
    }
}

/// One-shot convenience: score and optimal local alignment (linear gaps).
///
/// ```
/// use swhybrid_align::scoring::Scoring;
/// use swhybrid_seq::Alphabet;
///
/// let s = Alphabet::Dna.encode(b"GCTGAC").unwrap();
/// let t = Alphabet::Dna.encode(b"GAAGCTA").unwrap();
/// let alignment = swhybrid_align::sw::sw_align(&s, &t, &Scoring::paper_dna());
/// assert_eq!(alignment.score, 3); // "GCT" aligns with "GCT"
/// assert_eq!(alignment.cigar(), "3=");
/// ```
pub fn sw_align(s: &[u8], t: &[u8], scoring: &Scoring) -> Alignment {
    SwMatrix::build(s, t, scoring).traceback(s, t)
}

/// One-shot convenience: optimal local score only (still quadratic space —
/// see [`crate::score_only`] for the linear-space version).
pub fn sw_score(s: &[u8], t: &[u8], scoring: &Scoring) -> i32 {
    SwMatrix::build(s, t, scoring).best_score()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::SubstMatrix;
    use swhybrid_seq::Alphabet;

    fn dna(s: &str) -> Vec<u8> {
        Alphabet::Dna.encode(s.as_bytes()).unwrap()
    }

    fn prot(s: &str) -> Vec<u8> {
        Alphabet::Protein.encode(s.as_bytes()).unwrap()
    }

    #[test]
    fn identical_sequences_score_full_diagonal() {
        let s = dna("ACGTACGT");
        let a = sw_align(&s, &s, &Scoring::paper_dna());
        assert_eq!(a.score, 8);
        assert_eq!(a.cigar(), "8=");
        assert_eq!(a.s_range, (0, 8));
        assert_eq!(a.identity(), 1.0);
    }

    #[test]
    fn disjoint_alphabets_score_zero() {
        let s = dna("AAAA");
        let t = dna("GGGG");
        let a = sw_align(&s, &t, &Scoring::paper_dna());
        assert_eq!(a.score, 0);
        assert!(a.is_empty());
    }

    #[test]
    fn paper_fig2_style_example() {
        // Same shape as the paper's Fig. 2: short DNA pair, ma=+1 mi=-1 g=-2.
        // s = GCTGAC (down), t = GAAGCTA (across). Best local alignment is
        // G C T (s[3..6] would be GAC...) — verified by hand: "GCT" vs "GCT"
        // appears in t as G C T at positions 4..6, score 3.
        let s = dna("GCTGAC");
        let t = dna("GAAGCTA");
        let m = SwMatrix::build(&s, &t, &Scoring::paper_dna());
        assert_eq!(m.best_score(), 3);
        let a = m.traceback(&s, &t);
        assert_eq!(a.score, 3);
        assert_eq!(a.cigar(), "3=");
        assert_eq!(a.s_range, (0, 3)); // "GCT" prefix of s
        assert_eq!(a.t_range, (3, 6)); // "GCT" inside t
    }

    #[test]
    fn local_alignment_ignores_noise_prefix_suffix() {
        let s = prot("WWWWMKVLAWWWWW");
        let t = prot("HHMKVLAHH");
        let scoring = Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: crate::scoring::GapModel::Linear { penalty: 10 },
        };
        let a = sw_align(&s, &t, &scoring);
        // MKVLA self-score under BLOSUM62 = 5+5+4+4+4 = 22.
        assert_eq!(a.score, 22);
        assert_eq!(a.cigar(), "5=");
        assert_eq!(&s[a.s_range.0..a.s_range.1], &prot("MKVLA")[..]);
    }

    #[test]
    fn gap_is_taken_when_cheaper_than_mismatches() {
        // s = ACGTTT, t = ACG_TT: deleting one residue beats mismatching.
        let s = dna("ACGGTT");
        let t = dna("ACGTT");
        let a = sw_align(&s, &t, &Scoring::paper_dna());
        // ACG + G deleted + TT: 5 matches - 2 = 3... vs alignment without
        // gap: ACG match + GT mismatch etc. DP decides; verify via rescore.
        assert_eq!(a.rescore(&s, &t, &Scoring::paper_dna()), a.score);
        assert!(a.score >= 3);
    }

    #[test]
    fn traceback_rescore_agrees_on_random_pairs() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        let scoring = Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: crate::scoring::GapModel::Linear { penalty: 3 },
        };
        for _ in 0..40 {
            let sl = rng.random_range(1..60);
            let tl = rng.random_range(1..60);
            let s: Vec<u8> = (0..sl).map(|_| rng.random_range(0..20u8)).collect();
            let t: Vec<u8> = (0..tl).map(|_| rng.random_range(0..20u8)).collect();
            let a = sw_align(&s, &t, &scoring);
            assert_eq!(a.rescore(&s, &t, &scoring), a.score);
            assert!(a.score >= 0);
        }
    }

    #[test]
    fn score_symmetric_under_swap() {
        let s = prot("MKVLAWCD");
        let t = prot("MKVAWCD");
        let scoring = Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: crate::scoring::GapModel::Linear { penalty: 4 },
        };
        assert_eq!(sw_score(&s, &t, &scoring), sw_score(&t, &s, &scoring));
    }

    #[test]
    fn empty_inputs_give_zero() {
        let s = dna("ACGT");
        let e: Vec<u8> = vec![];
        assert_eq!(sw_score(&s, &e, &Scoring::paper_dna()), 0);
        assert_eq!(sw_score(&e, &e, &Scoring::paper_dna()), 0);
        let a = sw_align(&e, &s, &Scoring::paper_dna());
        assert!(a.is_empty());
    }

    #[test]
    fn matrix_borders_are_zero() {
        let s = dna("ACGT");
        let t = dna("TGCA");
        let m = SwMatrix::build(&s, &t, &Scoring::paper_dna());
        for i in 0..=4 {
            assert_eq!(m.h(i, 0), 0);
            assert_eq!(m.h(0, i), 0);
        }
    }

    #[test]
    #[should_panic(expected = "linear gaps")]
    fn affine_scoring_rejected() {
        let s = dna("ACGT");
        let scoring = Scoring {
            matrix: SubstMatrix::match_mismatch(Alphabet::Dna, 1, -1),
            gap: crate::scoring::GapModel::Affine { open: 2, extend: 1 },
        };
        SwMatrix::build(&s, &s, &scoring);
    }
}
