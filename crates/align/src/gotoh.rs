//! Gotoh's affine-gap Smith-Waterman (paper §II-A-3).
//!
//! In nature gaps tend to cluster, so a higher penalty is associated with
//! the first gap column and a lower one with the following columns. Gotoh's
//! algorithm implements this with three DP matrices:
//!
//! * `H[i][j]` — best local alignment score ending at `(i, j)`,
//! * `E[i][j]` — best score ending at `(i, j)` with a gap in `s`
//!   (an [`AlignOp::Insert`] run),
//! * `F[i][j]` — best score ending at `(i, j)` with a gap in `t`
//!   (an [`AlignOp::Delete`] run).
//!
//! A linear gap model is accepted too (it is the `open = 0` special case),
//! so this module is the general-purpose exact aligner of the crate.

use crate::alignment::{AlignOp, Alignment};
use crate::scoring::{GapModel, Scoring};

/// Traceback provenance of an `H` cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HFrom {
    Stop,
    Diag,
    FromE,
    FromF,
}

/// Whether a gap-matrix cell opened a new gap or extended an existing one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GapFrom {
    Open,
    Extend,
}

/// Result matrices of a Gotoh run, retaining traceback information.
pub struct GotohMatrix {
    m: usize,
    n: usize,
    h: Vec<i32>,
    hdir: Vec<HFrom>,
    edir: Vec<GapFrom>,
    fdir: Vec<GapFrom>,
    best: (usize, usize),
}

const NEG_INF: i32 = i32::MIN / 4;

impl GotohMatrix {
    /// Build the three matrices for encoded sequences `s`, `t`.
    pub fn build(s: &[u8], t: &[u8], scoring: &Scoring) -> GotohMatrix {
        let (open, extend) = gap_params(scoring.gap);
        let (m, n) = (s.len(), t.len());
        let cols = n + 1;
        let mut h = vec![0i32; (m + 1) * cols];
        let mut e = vec![NEG_INF; (m + 1) * cols];
        let mut f = vec![NEG_INF; (m + 1) * cols];
        let mut hdir = vec![HFrom::Stop; (m + 1) * cols];
        let mut edir = vec![GapFrom::Open; (m + 1) * cols];
        let mut fdir = vec![GapFrom::Open; (m + 1) * cols];
        let mut best = (0usize, 0usize);
        let mut best_score = 0i32;

        for i in 1..=m {
            let row = scoring.matrix.row(s[i - 1]);
            for j in 1..=n {
                let idx = i * cols + j;
                // E: gap in s, coming from the left.
                let e_open = h[idx - 1] - (open + extend);
                let e_ext = e[idx - 1] - extend;
                if e_ext > e_open {
                    e[idx] = e_ext;
                    edir[idx] = GapFrom::Extend;
                } else {
                    e[idx] = e_open;
                    edir[idx] = GapFrom::Open;
                }
                // F: gap in t, coming from above.
                let f_open = h[idx - cols] - (open + extend);
                let f_ext = f[idx - cols] - extend;
                if f_ext > f_open {
                    f[idx] = f_ext;
                    fdir[idx] = GapFrom::Extend;
                } else {
                    f[idx] = f_open;
                    fdir[idx] = GapFrom::Open;
                }
                // H: max of diagonal, E, F, 0.
                let diag = h[idx - cols - 1] + row[t[j - 1] as usize] as i32;
                let (mut val, mut d) = (diag, HFrom::Diag);
                if f[idx] > val {
                    val = f[idx];
                    d = HFrom::FromF;
                }
                if e[idx] > val {
                    val = e[idx];
                    d = HFrom::FromE;
                }
                if val <= 0 {
                    val = 0;
                    d = HFrom::Stop;
                }
                h[idx] = val;
                hdir[idx] = d;
                if val > best_score {
                    best_score = val;
                    best = (i, j);
                }
            }
        }
        GotohMatrix {
            m,
            n,
            h,
            hdir,
            edir,
            fdir,
            best,
        }
    }

    /// Value of `H[i][j]`.
    #[inline]
    pub fn h(&self, i: usize, j: usize) -> i32 {
        self.h[i * (self.n + 1) + j]
    }

    /// The optimal local score.
    pub fn best_score(&self) -> i32 {
        self.h(self.best.0, self.best.1)
    }

    /// Coordinates of the best cell.
    pub fn best_cell(&self) -> (usize, usize) {
        self.best
    }

    /// Dimensions `(m, n)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.m, self.n)
    }

    /// Trace back the optimal local alignment (the paper's phase 2 adapted
    /// to three matrices: the current matrix is part of the state).
    pub fn traceback(&self, s: &[u8], t: &[u8]) -> Alignment {
        let cols = self.n + 1;
        let (mut i, mut j) = self.best;
        let score = self.best_score();
        let mut ops = Vec::new();

        #[derive(PartialEq)]
        enum State {
            InH,
            InE,
            InF,
        }
        let mut state = State::InH;
        loop {
            let idx = i * cols + j;
            match state {
                State::InH => match self.hdir[idx] {
                    HFrom::Stop => break,
                    HFrom::Diag => {
                        ops.push(if s[i - 1] == t[j - 1] {
                            AlignOp::Match
                        } else {
                            AlignOp::Mismatch
                        });
                        i -= 1;
                        j -= 1;
                    }
                    HFrom::FromE => state = State::InE,
                    HFrom::FromF => state = State::InF,
                },
                State::InE => {
                    ops.push(AlignOp::Insert);
                    let from = self.edir[idx];
                    j -= 1;
                    if from == GapFrom::Open {
                        state = State::InH;
                    }
                }
                State::InF => {
                    ops.push(AlignOp::Delete);
                    let from = self.fdir[idx];
                    i -= 1;
                    if from == GapFrom::Open {
                        state = State::InH;
                    }
                }
            }
        }
        ops.reverse();
        Alignment {
            score,
            s_range: (i, self.best.0),
            t_range: (j, self.best.1),
            ops,
        }
    }
}

/// Map a [`GapModel`] onto Gotoh's `(open, extend)` pair.
pub fn gap_params(gap: GapModel) -> (i32, i32) {
    match gap {
        GapModel::Linear { penalty } => (0, penalty),
        GapModel::Affine { open, extend } => (open, extend),
    }
}

/// One-shot: optimal local alignment under any gap model.
///
/// ```
/// use swhybrid_align::scoring::{GapModel, Scoring, SubstMatrix};
/// use swhybrid_seq::Alphabet;
///
/// let scoring = Scoring {
///     matrix: SubstMatrix::blosum62(),
///     gap: GapModel::Affine { open: 10, extend: 2 },
/// };
/// let q = Alphabet::Protein.encode(b"MKVLAW").unwrap();
/// let alignment = swhybrid_align::gotoh::gotoh_align(&q, &q, &scoring);
/// assert_eq!(alignment.score, 33); // self-alignment: sum of BLOSUM62 diagonal
/// assert_eq!(alignment.identity(), 1.0);
/// ```
pub fn gotoh_align(s: &[u8], t: &[u8], scoring: &Scoring) -> Alignment {
    GotohMatrix::build(s, t, scoring).traceback(s, t)
}

/// One-shot: optimal local score under any gap model (quadratic space;
/// see [`crate::score_only::sw_score_affine`] for the linear-space kernel).
pub fn gotoh_score(s: &[u8], t: &[u8], scoring: &Scoring) -> i32 {
    GotohMatrix::build(s, t, scoring).best_score()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::{GapModel, SubstMatrix};
    use crate::sw;
    use swhybrid_seq::Alphabet;

    fn prot(s: &str) -> Vec<u8> {
        Alphabet::Protein.encode(s.as_bytes()).unwrap()
    }

    fn blosum(gap: GapModel) -> Scoring {
        Scoring {
            matrix: SubstMatrix::blosum62(),
            gap,
        }
    }

    #[test]
    fn matches_linear_sw_when_open_is_zero() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let linear = blosum(GapModel::Linear { penalty: 3 });
        for _ in 0..30 {
            let sl = rng.random_range(1..50);
            let tl = rng.random_range(1..50);
            let s: Vec<u8> = (0..sl).map(|_| rng.random_range(0..20u8)).collect();
            let t: Vec<u8> = (0..tl).map(|_| rng.random_range(0..20u8)).collect();
            assert_eq!(
                gotoh_score(&s, &t, &linear),
                sw::sw_score(&s, &t, &linear),
                "gotoh(open=0) must equal linear SW"
            );
        }
    }

    #[test]
    fn affine_prefers_one_long_gap_over_two_short() {
        // s has two residues missing relative to t in one block.
        let s = prot("MKVLAWCDEF");
        let t = prot("MKVLCDEF"); // "AW" deleted as a single block
        let a = gotoh_align(
            &s,
            &t,
            &blosum(GapModel::Affine {
                open: 10,
                extend: 1,
            }),
        );
        assert_eq!(
            a.rescore(
                &s,
                &t,
                &blosum(GapModel::Affine {
                    open: 10,
                    extend: 1
                })
            ),
            a.score
        );
        // The deletion must be one contiguous 2-column run.
        assert!(a.cigar().contains("2D"), "cigar {}", a.cigar());
    }

    #[test]
    fn traceback_rescore_agrees_on_random_pairs() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        let scoring = blosum(GapModel::Affine {
            open: 10,
            extend: 2,
        });
        for _ in 0..40 {
            let sl = rng.random_range(1..60);
            let tl = rng.random_range(1..60);
            let s: Vec<u8> = (0..sl).map(|_| rng.random_range(0..20u8)).collect();
            let t: Vec<u8> = (0..tl).map(|_| rng.random_range(0..20u8)).collect();
            let a = gotoh_align(&s, &t, &scoring);
            assert_eq!(a.rescore(&s, &t, &scoring), a.score, "s={s:?} t={t:?}");
            assert!(a.score >= 0);
        }
    }

    #[test]
    fn affine_score_at_most_linear_score_with_same_extend() {
        // Affine with open > 0 can never beat the pure-extend model.
        use rand::{RngExt, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(23);
        let linear = blosum(GapModel::Linear { penalty: 2 });
        let affine = blosum(GapModel::Affine { open: 8, extend: 2 });
        for _ in 0..20 {
            let s: Vec<u8> = (0..40).map(|_| rng.random_range(0..20u8)).collect();
            let t: Vec<u8> = (0..40).map(|_| rng.random_range(0..20u8)).collect();
            assert!(gotoh_score(&s, &t, &affine) <= sw::sw_score(&s, &t, &linear));
        }
    }

    #[test]
    fn identical_sequences() {
        let s = prot("MKVLAW");
        let scoring = blosum(GapModel::Affine {
            open: 10,
            extend: 2,
        });
        let a = gotoh_align(&s, &s, &scoring);
        // Self score: M5 K5 V4 L4 A4 W11 = 33.
        assert_eq!(a.score, 33);
        assert_eq!(a.cigar(), "6=");
    }

    #[test]
    fn empty_inputs() {
        let s = prot("MKV");
        let e: Vec<u8> = vec![];
        let scoring = blosum(GapModel::Affine {
            open: 10,
            extend: 2,
        });
        assert_eq!(gotoh_score(&s, &e, &scoring), 0);
        assert_eq!(gotoh_score(&e, &e, &scoring), 0);
    }

    #[test]
    fn score_symmetric_under_swap() {
        let s = prot("MKVLAWCDEFGH");
        let t = prot("MKVAWCEFGH");
        let scoring = blosum(GapModel::Affine { open: 6, extend: 1 });
        assert_eq!(gotoh_score(&s, &t, &scoring), gotoh_score(&t, &s, &scoring));
    }
}
