//! Alignment representation: edit operations, CIGAR strings, scoring
//! verification, and the three-line pretty rendering of the paper's Fig. 1.

use crate::scoring::Scoring;

/// One alignment column, described relative to the pair `(s, t)`:
/// `s` is the query and `t` the subject/database sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOp {
    /// `s[i]` aligned with `t[j]` and the residues are identical.
    Match,
    /// `s[i]` aligned with `t[j]` but the residues differ.
    Mismatch,
    /// `s[i]` aligned with a gap in `t` (the "up arrow" of the paper's
    /// Fig. 2 traceback): consumes one residue of `s`.
    Delete,
    /// A gap in `s` aligned with `t[j]` (the "left arrow"): consumes one
    /// residue of `t`.
    Insert,
}

impl AlignOp {
    /// CIGAR operation letter (extended CIGAR: `=`, `X`, `D`, `I`).
    pub fn cigar_char(self) -> char {
        match self {
            AlignOp::Match => '=',
            AlignOp::Mismatch => 'X',
            AlignOp::Delete => 'D',
            AlignOp::Insert => 'I',
        }
    }

    /// Whether the op consumes a residue of `s`.
    pub fn consumes_s(self) -> bool {
        matches!(self, AlignOp::Match | AlignOp::Mismatch | AlignOp::Delete)
    }

    /// Whether the op consumes a residue of `t`.
    pub fn consumes_t(self) -> bool {
        matches!(self, AlignOp::Match | AlignOp::Mismatch | AlignOp::Insert)
    }
}

/// A (local or global) pairwise alignment between `s` and `t`.
///
/// `s_range`/`t_range` give the half-open residue ranges the alignment
/// covers; for a global alignment they span the full sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Alignment score under the scheme it was computed with.
    pub score: i32,
    /// Half-open range of `s` covered by the alignment.
    pub s_range: (usize, usize),
    /// Half-open range of `t` covered by the alignment.
    pub t_range: (usize, usize),
    /// Column operations, from the start of the ranges.
    pub ops: Vec<AlignOp>,
}

impl Alignment {
    /// Number of alignment columns.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the alignment has no columns.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Fraction of columns that are exact matches (0.0 for empty).
    pub fn identity(&self) -> f64 {
        if self.ops.is_empty() {
            return 0.0;
        }
        let matches = self.ops.iter().filter(|&&o| o == AlignOp::Match).count();
        matches as f64 / self.ops.len() as f64
    }

    /// Run-length-encoded extended CIGAR string (e.g. `"5=1X2D3="`).
    pub fn cigar(&self) -> String {
        let mut out = String::new();
        let mut iter = self.ops.iter().peekable();
        while let Some(&op) = iter.next() {
            let mut run = 1usize;
            while iter.peek() == Some(&&op) {
                iter.next();
                run += 1;
            }
            out.push_str(&run.to_string());
            out.push(op.cigar_char());
        }
        out
    }

    /// Verify internal consistency and recompute the score against the raw
    /// (ASCII or encoded) sequences. Returns the recomputed score.
    ///
    /// This is the test oracle: every kernel's traceback must satisfy
    /// `alignment.rescore(s, t, scoring) == alignment.score`.
    pub fn rescore(&self, s: &[u8], t: &[u8], scoring: &Scoring) -> i32 {
        let mut i = self.s_range.0;
        let mut j = self.t_range.0;
        let mut score: i64 = 0;
        let mut gap_in_t = 0usize; // current run of Delete
        let mut gap_in_s = 0usize; // current run of Insert
        for &op in &self.ops {
            match op {
                AlignOp::Match | AlignOp::Mismatch => {
                    score -= scoring.gap.cost(gap_in_t) + scoring.gap.cost(gap_in_s);
                    gap_in_t = 0;
                    gap_in_s = 0;
                    score += scoring.sub(s[i], t[j]) as i64;
                    i += 1;
                    j += 1;
                }
                AlignOp::Delete => {
                    // A Delete ends any Insert run and vice versa.
                    score -= scoring.gap.cost(gap_in_s);
                    gap_in_s = 0;
                    gap_in_t += 1;
                    i += 1;
                }
                AlignOp::Insert => {
                    score -= scoring.gap.cost(gap_in_t);
                    gap_in_t = 0;
                    gap_in_s += 1;
                    j += 1;
                }
            }
        }
        score -= scoring.gap.cost(gap_in_t) + scoring.gap.cost(gap_in_s);
        assert_eq!(i, self.s_range.1, "ops do not span s_range");
        assert_eq!(j, self.t_range.1, "ops do not span t_range");
        i32::try_from(score).expect("alignment score overflows i32")
    }

    /// Three-line rendering in the style of the paper's Fig. 1:
    ///
    /// ```text
    /// A C T T G T C C G
    /// | |   | | | |
    /// A T - T G T C A G
    /// ```
    ///
    /// `s`/`t` are the *ASCII* residues of the full sequences.
    pub fn pretty(&self, s: &[u8], t: &[u8]) -> String {
        let mut top = String::new();
        let mut mid = String::new();
        let mut bot = String::new();
        let mut i = self.s_range.0;
        let mut j = self.t_range.0;
        for &op in &self.ops {
            match op {
                AlignOp::Match | AlignOp::Mismatch => {
                    top.push(s[i] as char);
                    mid.push(if op == AlignOp::Match { '|' } else { ' ' });
                    bot.push(t[j] as char);
                    i += 1;
                    j += 1;
                }
                AlignOp::Delete => {
                    top.push(s[i] as char);
                    mid.push(' ');
                    bot.push('-');
                    i += 1;
                }
                AlignOp::Insert => {
                    top.push('-');
                    mid.push(' ');
                    bot.push(t[j] as char);
                    j += 1;
                }
            }
        }
        format!("{top}\n{mid}\n{bot}")
    }

    /// Number of `s` residues consumed.
    pub fn s_consumed(&self) -> usize {
        self.ops.iter().filter(|o| o.consumes_s()).count()
    }

    /// Number of `t` residues consumed.
    pub fn t_consumed(&self) -> usize {
        self.ops.iter().filter(|o| o.consumes_t()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::{GapModel, Scoring, SubstMatrix};
    use swhybrid_seq::Alphabet;

    fn dna(s: &str) -> Vec<u8> {
        Alphabet::Dna.encode(s.as_bytes()).unwrap()
    }

    fn toy() -> Alignment {
        Alignment {
            score: 0,
            s_range: (0, 5),
            t_range: (0, 5),
            ops: vec![
                AlignOp::Match,
                AlignOp::Mismatch,
                AlignOp::Delete,
                AlignOp::Insert,
                AlignOp::Match,
                AlignOp::Match,
            ],
        }
    }

    #[test]
    fn cigar_run_length_encoding() {
        assert_eq!(toy().cigar(), "1=1X1D1I2=");
        let a = Alignment {
            score: 0,
            s_range: (0, 3),
            t_range: (0, 3),
            ops: vec![AlignOp::Match; 3],
        };
        assert_eq!(a.cigar(), "3=");
    }

    #[test]
    fn identity_fraction() {
        assert!((toy().identity() - 0.5).abs() < 1e-12);
        let empty = Alignment {
            score: 0,
            s_range: (0, 0),
            t_range: (0, 0),
            ops: vec![],
        };
        assert_eq!(empty.identity(), 0.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn consumed_counts() {
        let a = toy();
        assert_eq!(a.s_consumed(), 5);
        assert_eq!(a.t_consumed(), 5);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn rescore_linear_gap_matches_hand_computation() {
        // s = ACTG, t = AATG, with one column of each kind.
        let s = dna("ACTG");
        let t = dna("ATG");
        let a = Alignment {
            score: 1,
            s_range: (0, 4),
            t_range: (0, 3),
            ops: vec![
                AlignOp::Match,  // A-A  +1
                AlignOp::Delete, // C-(-) -2
                AlignOp::Match,  // T-T  +1
                AlignOp::Match,  // G-G  +1
            ],
        };
        let scoring = Scoring::paper_dna();
        assert_eq!(a.rescore(&s, &t, &scoring), 1);
    }

    #[test]
    fn rescore_affine_charges_open_once_per_run() {
        let s = dna("AAAA");
        let t = dna("A");
        // A aligned, then 3 deletes: affine cost = open + 3*extend.
        let a = Alignment {
            score: 0,
            s_range: (0, 4),
            t_range: (0, 1),
            ops: vec![
                AlignOp::Match,
                AlignOp::Delete,
                AlignOp::Delete,
                AlignOp::Delete,
            ],
        };
        let scoring = Scoring {
            matrix: SubstMatrix::match_mismatch(Alphabet::Dna, 2, -1),
            gap: GapModel::Affine { open: 5, extend: 1 },
        };
        assert_eq!(a.rescore(&s, &t, &scoring), 2 - (5 + 3));
    }

    #[test]
    fn rescore_separates_adjacent_opposite_gap_runs() {
        // Delete then Insert are *two* gap openings under the affine model.
        let s = dna("AC");
        let t = dna("AG");
        let a = Alignment {
            score: 0,
            s_range: (0, 2),
            t_range: (0, 2),
            ops: vec![AlignOp::Match, AlignOp::Delete, AlignOp::Insert],
        };
        let scoring = Scoring {
            matrix: SubstMatrix::match_mismatch(Alphabet::Dna, 2, -1),
            gap: GapModel::Affine { open: 4, extend: 1 },
        };
        assert_eq!(a.rescore(&s, &t, &scoring), 2 - 5 - 5);
    }

    #[test]
    #[should_panic(expected = "ops do not span")]
    fn rescore_detects_inconsistent_ranges() {
        let s = dna("ACT");
        let t = dna("ACT");
        let a = Alignment {
            score: 0,
            s_range: (0, 3),
            t_range: (0, 3),
            ops: vec![AlignOp::Match], // consumes only one residue
        };
        a.rescore(&s, &t, &Scoring::paper_dna());
    }

    #[test]
    fn pretty_renders_three_lines() {
        let a = Alignment {
            score: 4,
            s_range: (0, 4),
            t_range: (0, 3),
            ops: vec![
                AlignOp::Match,
                AlignOp::Delete,
                AlignOp::Match,
                AlignOp::Mismatch,
            ],
        };
        let text = a.pretty(b"ACTG", b"ATA");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["ACTG", "| | ", "A-TA"]);
    }
}
