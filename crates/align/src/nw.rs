//! Needleman-Wunsch global alignment.
//!
//! The paper's Fig. 1 shows a *global* alignment and its score; this module
//! provides the algorithm behind that figure (linear gaps, full matrix with
//! traceback) plus a linear-space score-only variant used by
//! [`crate::hirschberg`].

use crate::alignment::{AlignOp, Alignment};
use crate::scoring::{GapModel, Scoring};

fn linear_penalty(scoring: &Scoring) -> i32 {
    match scoring.gap {
        GapModel::Linear { penalty } => penalty,
        GapModel::Affine { .. } => {
            panic!("nw implements linear gaps; affine global alignment is out of scope")
        }
    }
}

/// Global alignment with linear gaps: full matrix + traceback.
pub fn nw_align(s: &[u8], t: &[u8], scoring: &Scoring) -> Alignment {
    let g = linear_penalty(scoring);
    let (m, n) = (s.len(), t.len());
    let cols = n + 1;
    let mut h = vec![0i32; (m + 1) * cols];
    for (j, cell) in h.iter_mut().enumerate().take(n + 1) {
        *cell = -(g * j as i32);
    }
    for i in 1..=m {
        h[i * cols] = -(g * i as i32);
        let row = scoring.matrix.row(s[i - 1]);
        for j in 1..=n {
            let diag = h[(i - 1) * cols + j - 1] + row[t[j - 1] as usize] as i32;
            let up = h[(i - 1) * cols + j] - g;
            let left = h[i * cols + j - 1] - g;
            h[i * cols + j] = diag.max(up).max(left);
        }
    }

    // Traceback from (m, n) to (0, 0), re-deriving the argmax.
    let mut ops = Vec::with_capacity(m + n);
    let (mut i, mut j) = (m, n);
    while i > 0 || j > 0 {
        let cur = h[i * cols + j];
        if i > 0 && j > 0 && cur == h[(i - 1) * cols + j - 1] + scoring.sub(s[i - 1], t[j - 1]) {
            ops.push(if s[i - 1] == t[j - 1] {
                AlignOp::Match
            } else {
                AlignOp::Mismatch
            });
            i -= 1;
            j -= 1;
        } else if i > 0 && cur == h[(i - 1) * cols + j] - g {
            ops.push(AlignOp::Delete);
            i -= 1;
        } else {
            debug_assert!(j > 0 && cur == h[i * cols + j - 1] - g);
            ops.push(AlignOp::Insert);
            j -= 1;
        }
    }
    ops.reverse();
    Alignment {
        score: h[m * cols + n],
        s_range: (0, m),
        t_range: (0, n),
        ops,
    }
}

/// Global alignment with **affine** gaps (Gotoh's recurrence applied
/// globally): full H/E/F matrices + traceback.
pub fn nw_affine_align(s: &[u8], t: &[u8], scoring: &Scoring) -> Alignment {
    let (open, extend) = crate::gotoh::gap_params(scoring.gap);
    let goe = open + extend;
    let (m, n) = (s.len(), t.len());
    let cols = n + 1;
    const NEG_INF: i32 = i32::MIN / 4;
    let mut h = vec![NEG_INF; (m + 1) * cols];
    let mut e = vec![NEG_INF; (m + 1) * cols];
    let mut f = vec![NEG_INF; (m + 1) * cols];
    h[0] = 0;
    for j in 1..=n {
        e[j] = -(open + extend * j as i32);
        h[j] = e[j];
    }
    for i in 1..=m {
        f[i * cols] = -(open + extend * i as i32);
        h[i * cols] = f[i * cols];
        let row = scoring.matrix.row(s[i - 1]);
        for j in 1..=n {
            let idx = i * cols + j;
            e[idx] = (h[idx - 1] - goe).max(e[idx - 1] - extend);
            f[idx] = (h[idx - cols] - goe).max(f[idx - cols] - extend);
            let diag = h[idx - cols - 1] + row[t[j - 1] as usize] as i32;
            h[idx] = diag.max(e[idx]).max(f[idx]);
        }
    }

    // Traceback with the current matrix as part of the state.
    #[derive(PartialEq)]
    enum State {
        InH,
        InE,
        InF,
    }
    let mut ops = Vec::with_capacity(m + n);
    let (mut i, mut j) = (m, n);
    let mut state = State::InH;
    while i > 0 || j > 0 {
        let idx = i * cols + j;
        match state {
            State::InH => {
                if i > 0 && j > 0 && h[idx] == h[idx - cols - 1] + scoring.sub(s[i - 1], t[j - 1]) {
                    ops.push(if s[i - 1] == t[j - 1] {
                        AlignOp::Match
                    } else {
                        AlignOp::Mismatch
                    });
                    i -= 1;
                    j -= 1;
                } else if i > 0 && h[idx] == f[idx] {
                    state = State::InF;
                } else {
                    debug_assert!(j > 0 && h[idx] == e[idx]);
                    state = State::InE;
                }
            }
            State::InE => {
                ops.push(AlignOp::Insert);
                let opened = e[idx] == h[idx - 1] - goe;
                j -= 1;
                if opened {
                    state = State::InH;
                }
            }
            State::InF => {
                ops.push(AlignOp::Delete);
                let opened = f[idx] == h[idx - cols] - goe;
                i -= 1;
                if opened {
                    state = State::InH;
                }
            }
        }
    }
    ops.reverse();
    Alignment {
        score: h[m * cols + n],
        s_range: (0, m),
        t_range: (0, n),
        ops,
    }
}

/// Global affine score only.
pub fn nw_affine_score(s: &[u8], t: &[u8], scoring: &Scoring) -> i32 {
    nw_affine_align(s, t, scoring).score
}

/// Global alignment score only.
pub fn nw_score(s: &[u8], t: &[u8], scoring: &Scoring) -> i32 {
    *nw_last_row(s, t, scoring).last().expect("row is non-empty")
}

/// The last DP row of a global alignment of `s` against every prefix of
/// `t` — the Hirschberg building block. `O(|t|)` space.
pub fn nw_last_row(s: &[u8], t: &[u8], scoring: &Scoring) -> Vec<i32> {
    let g = linear_penalty(scoring);
    let n = t.len();
    let mut row: Vec<i32> = (0..=n as i32).map(|j| -(g * j)).collect();
    for &si in s {
        let matrix_row = scoring.matrix.row(si);
        let mut diag = row[0];
        row[0] -= g;
        for j in 1..=n {
            let d = diag + matrix_row[t[j - 1] as usize] as i32;
            let up = row[j] - g;
            let left = row[j - 1] - g;
            diag = row[j];
            row[j] = d.max(up).max(left);
        }
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::SubstMatrix;
    use rand::{RngExt, SeedableRng};
    use swhybrid_seq::Alphabet;

    fn dna(s: &str) -> Vec<u8> {
        Alphabet::Dna.encode(s.as_bytes()).unwrap()
    }

    #[test]
    fn paper_fig1_example() {
        // Fig. 1: global alignment of two DNA sequences with ma=+1, mi=-1,
        // g=-2 scoring 4:
        //   A C T T G T C C G
        //   A T - T G T C A G
        // 7 matches (A,T,T,G,T,C,G), 1 mismatch (C/A), 1 gap:
        // 7 - 1 - 2 = 4.
        let s = dna("ACTTGTCCG");
        let t = dna("ATTGTCAG");
        let a = nw_align(&s, &t, &Scoring::paper_dna());
        assert_eq!(a.score, 4);
        assert_eq!(a.rescore(&s, &t, &Scoring::paper_dna()), 4);
        assert_eq!(a.s_consumed(), 9);
        assert_eq!(a.t_consumed(), 8);
    }

    #[test]
    fn identical_sequences() {
        let s = dna("ACGTACGT");
        let a = nw_align(&s, &s, &Scoring::paper_dna());
        assert_eq!(a.score, 8);
        assert_eq!(a.cigar(), "8=");
    }

    #[test]
    fn empty_vs_nonempty_is_all_gaps() {
        let s = dna("ACGT");
        let e: Vec<u8> = vec![];
        let a = nw_align(&s, &e, &Scoring::paper_dna());
        assert_eq!(a.score, -8);
        assert_eq!(a.cigar(), "4D");
        let b = nw_align(&e, &s, &Scoring::paper_dna());
        assert_eq!(b.score, -8);
        assert_eq!(b.cigar(), "4I");
        let c = nw_align(&e, &e, &Scoring::paper_dna());
        assert_eq!(c.score, 0);
        assert!(c.is_empty());
    }

    #[test]
    fn global_score_at_most_local_score() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let scoring = Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Linear { penalty: 3 },
        };
        for _ in 0..20 {
            let s: Vec<u8> = (0..30).map(|_| rng.random_range(0..20u8)).collect();
            let t: Vec<u8> = (0..30).map(|_| rng.random_range(0..20u8)).collect();
            assert!(nw_score(&s, &t, &scoring) <= crate::sw::sw_score(&s, &t, &scoring));
        }
    }

    #[test]
    fn last_row_matches_full_alignment_score() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let scoring = Scoring::paper_dna();
        for _ in 0..20 {
            let sl = rng.random_range(0..25);
            let tl = rng.random_range(0..25);
            let s: Vec<u8> = (0..sl).map(|_| rng.random_range(0..4u8)).collect();
            let t: Vec<u8> = (0..tl).map(|_| rng.random_range(0..4u8)).collect();
            let row = nw_last_row(&s, &t, &scoring);
            assert_eq!(row[t.len()], nw_align(&s, &t, &scoring).score);
        }
    }

    #[test]
    fn traceback_rescore_agrees() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        let scoring = Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Linear { penalty: 4 },
        };
        for _ in 0..30 {
            let sl = rng.random_range(1..40);
            let tl = rng.random_range(1..40);
            let s: Vec<u8> = (0..sl).map(|_| rng.random_range(0..20u8)).collect();
            let t: Vec<u8> = (0..tl).map(|_| rng.random_range(0..20u8)).collect();
            let a = nw_align(&s, &t, &scoring);
            assert_eq!(a.rescore(&s, &t, &scoring), a.score);
        }
    }

    use crate::scoring::GapModel;

    fn blosum_affine(open: i32, extend: i32) -> Scoring {
        Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine { open, extend },
        }
    }

    #[test]
    fn nw_affine_matches_linear_when_open_is_zero() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(19);
        for _ in 0..25 {
            let sl = rng.random_range(0..35);
            let tl = rng.random_range(0..35);
            let s: Vec<u8> = (0..sl).map(|_| rng.random_range(0..20u8)).collect();
            let t: Vec<u8> = (0..tl).map(|_| rng.random_range(0..20u8)).collect();
            let affine = blosum_affine(0, 3);
            let linear = Scoring {
                matrix: SubstMatrix::blosum62(),
                gap: GapModel::Linear { penalty: 3 },
            };
            assert_eq!(nw_affine_score(&s, &t, &affine), nw_score(&s, &t, &linear));
        }
    }

    #[test]
    fn nw_affine_traceback_rescores() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(29);
        let scoring = blosum_affine(10, 2);
        for _ in 0..30 {
            let sl = rng.random_range(0..40);
            let tl = rng.random_range(0..40);
            let s: Vec<u8> = (0..sl).map(|_| rng.random_range(0..20u8)).collect();
            let t: Vec<u8> = (0..tl).map(|_| rng.random_range(0..20u8)).collect();
            let a = nw_affine_align(&s, &t, &scoring);
            assert_eq!(a.rescore(&s, &t, &scoring), a.score);
            assert_eq!(a.s_consumed(), s.len());
            assert_eq!(a.t_consumed(), t.len());
        }
    }

    #[test]
    fn nw_affine_prefers_one_block_gap() {
        let s = Alphabet::Protein.encode(b"MKVLAWCDEF").unwrap();
        let t = Alphabet::Protein.encode(b"MKVLCDEF").unwrap();
        let a = nw_affine_align(&s, &t, &blosum_affine(10, 1));
        assert!(a.cigar().contains("2D"), "cigar {}", a.cigar());
    }

    #[test]
    fn nw_affine_global_at_most_local() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
        let scoring = blosum_affine(8, 2);
        for _ in 0..20 {
            let s: Vec<u8> = (0..30).map(|_| rng.random_range(0..20u8)).collect();
            let t: Vec<u8> = (0..30).map(|_| rng.random_range(0..20u8)).collect();
            assert!(
                nw_affine_score(&s, &t, &scoring) <= crate::gotoh::gotoh_score(&s, &t, &scoring)
            );
        }
    }

    #[test]
    fn nw_affine_empty_cases() {
        let scoring = blosum_affine(5, 1);
        let s = Alphabet::Protein.encode(b"MKV").unwrap();
        let e: Vec<u8> = vec![];
        let a = nw_affine_align(&s, &e, &scoring);
        assert_eq!(a.score, -(5 + 3));
        assert_eq!(a.cigar(), "3D");
        let b = nw_affine_align(&e, &s, &scoring);
        assert_eq!(b.score, -(5 + 3));
        assert_eq!(b.cigar(), "3I");
        assert_eq!(nw_affine_align(&e, &e, &scoring).score, 0);
    }

    #[test]
    #[should_panic(expected = "linear gaps")]
    fn affine_rejected() {
        let s = dna("AC");
        let scoring = Scoring {
            matrix: SubstMatrix::match_mismatch(Alphabet::Dna, 1, -1),
            gap: GapModel::Affine { open: 2, extend: 1 },
        };
        nw_align(&s, &s, &scoring);
    }
}
