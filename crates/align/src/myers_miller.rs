//! Myers–Miller: global alignment with **affine** gaps in linear space.
//!
//! Hirschberg's divide-and-conquer ([`crate::hirschberg`]) assumes linear
//! gap costs; with affine costs a gap can straddle the split row, so the
//! join step must consider two midpoint types (Myers & Miller, 1988):
//!
//! * **type 1** — the optimal path crosses the split between two aligned
//!   columns: join on `CC[j] + RR[j]`,
//! * **type 2** — the optimal path crosses the split *inside a deletion
//!   run*: join on `DD[j] + SS[j] − open` (the gap-open penalty was charged
//!   by both halves; one is refunded) and recurse with the boundary
//!   gap-open waived.
//!
//! Internally this follows the classical cost-minimising formulation (the
//! substitution cost is the negated score), emitting edit operations; the
//! final score is recomputed from the operations, so the result is
//! *self-certifying* against [`crate::alignment::Alignment::rescore`].

use crate::alignment::{AlignOp, Alignment};
use crate::gotoh::gap_params;
use crate::scoring::Scoring;

const INF: i32 = i32::MAX / 4;

struct Ctx<'a> {
    scoring: &'a Scoring,
    /// Gap-open cost `g` (charged once per gap run).
    g: i32,
    /// Gap-extension cost `h` (charged per gap column).
    h: i32,
}

impl Ctx<'_> {
    /// Substitution *cost* (negated score).
    #[inline]
    fn w(&self, a: u8, b: u8) -> i32 {
        -self.scoring.sub(a, b)
    }

    /// Cost of an insert run of `k` columns.
    #[inline]
    fn ins(&self, k: usize) -> i32 {
        if k == 0 {
            0
        } else {
            self.g + self.h * k as i32
        }
    }
}

/// Global affine-gap alignment of `s` × `t` in `O(min)` space.
///
/// Produces the same score as [`crate::nw::nw_affine_align`] (possibly a
/// different co-optimal alignment).
pub fn myers_miller_global(s: &[u8], t: &[u8], scoring: &Scoring) -> Alignment {
    let (open, extend) = gap_params(scoring.gap);
    let ctx = Ctx {
        scoring,
        g: open,
        h: extend,
    };
    let mut ops = Vec::with_capacity(s.len() + t.len());
    diff(&ctx, s, t, ctx.g, ctx.g, &mut ops);
    let score = Alignment {
        score: 0,
        s_range: (0, s.len()),
        t_range: (0, t.len()),
        ops: ops.clone(),
    }
    .rescore(s, t, scoring);
    Alignment {
        score,
        s_range: (0, s.len()),
        t_range: (0, t.len()),
        ops,
    }
}

/// Forward pass: `CC[j]` = min cost of converting `a` into `b[..j]`,
/// `DD[j]` = same but constrained to end with a delete; the first delete
/// run touching the top border opens at cost `tb` instead of `g`.
fn forward_pass(ctx: &Ctx, a: &[u8], b: &[u8], tb: i32) -> (Vec<i32>, Vec<i32>) {
    let n = b.len();
    let mut cc = vec![0i32; n + 1];
    let mut dd = vec![0i32; n + 1];
    // Row 0: no delete can end here.
    dd[0] = INF;
    let mut t = ctx.g;
    for j in 1..=n {
        t += ctx.h;
        cc[j] = t;
        dd[j] = t + ctx.g;
    }
    // Rows 1..=M.
    let mut t = tb;
    for &ai in a {
        let mut s = cc[0];
        t += ctx.h;
        let mut c = t;
        cc[0] = c;
        // The all-deletes border path ends with a delete.
        dd[0] = c;
        let mut e = t + ctx.g;
        for j in 1..=n {
            e = (e.min(c + ctx.g)) + ctx.h; // best ending in insert
            dd[j] = (dd[j].min(cc[j] + ctx.g)) + ctx.h; // best ending in delete
            c = dd[j].min(e).min(s + ctx.w(ai, b[j - 1]));
            s = cc[j];
            cc[j] = c;
        }
    }
    (cc, dd)
}

/// Backward pass: `RR[j]` = min cost of converting `a` into `b[j..]`,
/// `SS[j]` constrained to *begin* with a delete; the last delete run
/// touching the bottom border opens at `te`.
fn backward_pass(ctx: &Ctx, a: &[u8], b: &[u8], te: i32) -> (Vec<i32>, Vec<i32>) {
    let ra: Vec<u8> = a.iter().rev().copied().collect();
    let rb: Vec<u8> = b.iter().rev().copied().collect();
    let (cc_r, dd_r) = forward_pass(ctx, &ra, &rb, te);
    let n = b.len();
    let rr = (0..=n).map(|j| cc_r[n - j]).collect();
    let ss = (0..=n).map(|j| dd_r[n - j]).collect();
    (rr, ss)
}

#[allow(clippy::needless_range_loop)] // index math mirrors the published pseudocode
fn diff(ctx: &Ctx, a: &[u8], b: &[u8], tb: i32, te: i32, ops: &mut Vec<AlignOp>) {
    let (m, n) = (a.len(), b.len());
    if n == 0 {
        ops.extend(std::iter::repeat_n(AlignOp::Delete, m));
        return;
    }
    if m == 0 {
        ops.extend(std::iter::repeat_n(AlignOp::Insert, n));
        return;
    }
    if m == 1 {
        // Option 1: delete a[0] and insert all of b; the delete merges with
        // whichever boundary is cheaper and must sit adjacent to it.
        let delete_cost = tb.min(te) + ctx.h + ctx.ins(n);
        // Option 2: align a[0] with b[j], inserts around it.
        let mut best_j = 0usize;
        let mut best_cost = INF;
        for j in 0..n {
            let cost = ctx.ins(j) + ctx.w(a[0], b[j]) + ctx.ins(n - 1 - j);
            if cost < best_cost {
                best_cost = cost;
                best_j = j;
            }
        }
        if delete_cost < best_cost {
            if tb <= te {
                ops.push(AlignOp::Delete);
                ops.extend(std::iter::repeat_n(AlignOp::Insert, n));
            } else {
                ops.extend(std::iter::repeat_n(AlignOp::Insert, n));
                ops.push(AlignOp::Delete);
            }
        } else {
            ops.extend(std::iter::repeat_n(AlignOp::Insert, best_j));
            ops.push(if a[0] == b[best_j] {
                AlignOp::Match
            } else {
                AlignOp::Mismatch
            });
            ops.extend(std::iter::repeat_n(AlignOp::Insert, n - 1 - best_j));
        }
        return;
    }

    let imid = m / 2;
    let (cc, dd) = forward_pass(ctx, &a[..imid], b, tb);
    let (rr, ss) = backward_pass(ctx, &a[imid..], b, te);

    let mut best = (INF, 0usize, false); // (cost, j, is_type2)
    for j in 0..=n {
        let type1 = cc[j].saturating_add(rr[j]);
        let type2 = dd[j].saturating_add(ss[j]) - ctx.g;
        if type1 < best.0 {
            best = (type1, j, false);
        }
        if type2 < best.0 {
            best = (type2, j, true);
        }
    }
    let (_, jmid, type2) = best;

    if type2 {
        // The split row is inside a delete run covering a[imid-1], a[imid]:
        // both halves see a zero open cost at the shared boundary.
        diff(ctx, &a[..imid - 1], &b[..jmid], tb, 0, ops);
        ops.push(AlignOp::Delete);
        ops.push(AlignOp::Delete);
        diff(ctx, &a[imid + 1..], &b[jmid..], 0, te, ops);
    } else {
        diff(ctx, &a[..imid], &b[..jmid], tb, ctx.g, ops);
        diff(ctx, &a[imid..], &b[jmid..], ctx.g, te, ops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nw::nw_affine_align;
    use crate::scoring::{GapModel, SubstMatrix};
    use rand::{RngExt, SeedableRng};
    use swhybrid_seq::Alphabet;

    fn blosum(open: i32, extend: i32) -> Scoring {
        Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine { open, extend },
        }
    }

    #[test]
    fn matches_quadratic_nw_affine_on_random_pairs() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(401);
        for round in 0..120 {
            let open = rng.random_range(0..14);
            let extend = rng.random_range(1..5);
            let scoring = blosum(open, extend);
            let sl = rng.random_range(0..45);
            let tl = rng.random_range(0..45);
            let s: Vec<u8> = (0..sl).map(|_| rng.random_range(0..20u8)).collect();
            let t: Vec<u8> = (0..tl).map(|_| rng.random_range(0..20u8)).collect();
            let mm = myers_miller_global(&s, &t, &scoring);
            let reference = nw_affine_align(&s, &t, &scoring);
            assert_eq!(
                mm.score, reference.score,
                "round {round}: open {open} ext {extend} sl={sl} tl={tl}"
            );
            assert_eq!(mm.rescore(&s, &t, &scoring), mm.score);
            assert_eq!(mm.s_consumed(), s.len());
            assert_eq!(mm.t_consumed(), t.len());
        }
    }

    #[test]
    fn long_gap_straddles_the_split() {
        // A 30-residue deletion spans many recursion boundaries: the type-2
        // handling must charge the open exactly once.
        let scoring = blosum(12, 1);
        let core = Alphabet::Protein.encode(b"MKVLAWCDEFGHIKLMNPQRST").unwrap();
        let mut s = core.clone();
        s.extend(std::iter::repeat_n(7u8, 30)); // 30 glycines inserted
        s.extend(core.iter().copied());
        let mut t = core.clone();
        t.extend(core.iter().copied());
        let mm = myers_miller_global(&s, &t, &scoring);
        assert_eq!(mm.score, nw_affine_align(&s, &t, &scoring).score);
        assert!(mm.cigar().contains("30D"), "cigar {}", mm.cigar());
    }

    #[test]
    fn identical_sequences_align_diagonally() {
        let s = Alphabet::Protein.encode(b"MKVLAWCDEFGHIKLMNPQR").unwrap();
        let mm = myers_miller_global(&s, &s, &blosum(10, 2));
        assert_eq!(mm.cigar(), format!("{}=", s.len()));
    }

    #[test]
    fn empty_cases() {
        let scoring = blosum(6, 2);
        let s = Alphabet::Protein.encode(b"MKV").unwrap();
        let e: Vec<u8> = vec![];
        assert_eq!(myers_miller_global(&s, &e, &scoring).cigar(), "3D");
        assert_eq!(myers_miller_global(&e, &s, &scoring).cigar(), "3I");
        assert!(myers_miller_global(&e, &e, &scoring).is_empty());
    }

    #[test]
    fn single_residue_each_side() {
        let scoring = blosum(10, 2);
        for (a, b) in [(b"W", b"W"), (b"W", b"A")] {
            let s = Alphabet::Protein.encode(a).unwrap();
            let t = Alphabet::Protein.encode(b).unwrap();
            let mm = myers_miller_global(&s, &t, &scoring);
            assert_eq!(mm.score, nw_affine_align(&s, &t, &scoring).score);
        }
    }
}
