//! Linear-space, score-only Smith-Waterman kernels.
//!
//! A database search does not need alignments for every subject — only the
//! best score (and, for later alignment recovery, where it ends). These
//! kernels keep a single DP row, so memory is `O(n)` regardless of query
//! length. They are also the scalar reference implementations the striped
//! SIMD kernels in `swhybrid-simd` are validated against.

use crate::scoring::{GapModel, Scoring};

/// Result of a score-only scan: the optimal local score and the cell where
/// it is achieved (1-based DP coordinates; `(0, 0)` when the score is 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoreHit {
    /// Optimal local alignment score.
    pub score: i32,
    /// Row (s index + 1) of the best cell.
    pub s_end: usize,
    /// Column (t index + 1) of the best cell.
    pub t_end: usize,
}

/// Linear-gap score-only kernel (Eq. 1 with one DP row).
pub fn sw_score_linear(s: &[u8], t: &[u8], scoring: &Scoring) -> ScoreHit {
    let g = match scoring.gap {
        GapModel::Linear { penalty } => penalty,
        GapModel::Affine { .. } => panic!("use sw_score_affine for affine gaps"),
    };
    let n = t.len();
    let mut row = vec![0i32; n + 1];
    let mut best = ScoreHit {
        score: 0,
        s_end: 0,
        t_end: 0,
    };
    for (i, &si) in s.iter().enumerate() {
        let matrix_row = scoring.matrix.row(si);
        let mut diag = 0i32; // H[i-1][j-1]
        for j in 1..=n {
            let up = row[j] - g;
            let left = row[j - 1] - g;
            let d = diag + matrix_row[t[j - 1] as usize] as i32;
            diag = row[j];
            let mut v = d.max(up).max(left);
            if v < 0 {
                v = 0;
            }
            row[j] = v;
            if v > best.score {
                best = ScoreHit {
                    score: v,
                    s_end: i + 1,
                    t_end: j,
                };
            }
        }
    }
    best
}

/// Affine-gap (Gotoh) score-only kernel with two DP rows (`H` and `E`) and a
/// running `F` scalar.
pub fn sw_score_affine(s: &[u8], t: &[u8], scoring: &Scoring) -> ScoreHit {
    let (open, extend) = crate::gotoh::gap_params(scoring.gap);
    let goe = open + extend;
    let n = t.len();
    const NEG_INF: i32 = i32::MIN / 4;
    let mut h = vec![0i32; n + 1];
    let mut e = vec![NEG_INF; n + 1];
    let mut best = ScoreHit {
        score: 0,
        s_end: 0,
        t_end: 0,
    };
    for (i, &si) in s.iter().enumerate() {
        let matrix_row = scoring.matrix.row(si);
        let mut diag = 0i32;
        let mut f = NEG_INF;
        for j in 1..=n {
            e[j] = (h[j] - goe).max(e[j] - extend);
            f = (h[j - 1] - goe).max(f - extend);
            let d = diag + matrix_row[t[j - 1] as usize] as i32;
            diag = h[j];
            let mut v = d.max(e[j]).max(f).max(0);
            if v < 0 {
                v = 0;
            }
            h[j] = v;
            if v > best.score {
                best = ScoreHit {
                    score: v,
                    s_end: i + 1,
                    t_end: j,
                };
            }
        }
    }
    best
}

/// Dispatch on the gap model.
pub fn sw_score(s: &[u8], t: &[u8], scoring: &Scoring) -> ScoreHit {
    match scoring.gap {
        GapModel::Linear { .. } => sw_score_linear(s, t, scoring),
        GapModel::Affine { .. } => sw_score_affine(s, t, scoring),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gotoh;
    use crate::scoring::{GapModel, SubstMatrix};
    use crate::sw;
    use rand::SeedableRng;
    use swhybrid_seq::Alphabet;

    fn blosum(gap: GapModel) -> Scoring {
        Scoring {
            matrix: SubstMatrix::blosum62(),
            gap,
        }
    }

    fn random_pair(rng: &mut impl rand::Rng, max: usize) -> (Vec<u8>, Vec<u8>) {
        use rand::RngExt as _;
        let sl = rng.random_range(1..max);
        let tl = rng.random_range(1..max);
        (
            (0..sl).map(|_| rng.random_range(0..20u8)).collect(),
            (0..tl).map(|_| rng.random_range(0..20u8)).collect(),
        )
    }

    #[test]
    fn linear_matches_full_matrix_on_random_pairs() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
        let scoring = blosum(GapModel::Linear { penalty: 3 });
        for _ in 0..50 {
            let (s, t) = random_pair(&mut rng, 70);
            let full = sw::SwMatrix::build(&s, &t, &scoring);
            let hit = sw_score_linear(&s, &t, &scoring);
            assert_eq!(hit.score, full.best_score());
        }
    }

    #[test]
    fn affine_matches_gotoh_on_random_pairs() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(37);
        let scoring = blosum(GapModel::Affine {
            open: 10,
            extend: 2,
        });
        for _ in 0..50 {
            let (s, t) = random_pair(&mut rng, 70);
            let hit = sw_score_affine(&s, &t, &scoring);
            assert_eq!(hit.score, gotoh::gotoh_score(&s, &t, &scoring));
        }
    }

    #[test]
    fn best_cell_matches_full_matrix() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(41);
        let scoring = blosum(GapModel::Linear { penalty: 3 });
        for _ in 0..20 {
            let (s, t) = random_pair(&mut rng, 40);
            let full = sw::SwMatrix::build(&s, &t, &scoring);
            let hit = sw_score_linear(&s, &t, &scoring);
            // The full matrix records the first-encountered maximum in
            // row-major order; so does the row kernel.
            assert_eq!((hit.s_end, hit.t_end), full.best_cell());
        }
    }

    #[test]
    fn dispatch_selects_kernel() {
        let s = Alphabet::Protein.encode(b"MKVLAW").unwrap();
        let t = Alphabet::Protein.encode(b"MKVAW").unwrap();
        let lin = blosum(GapModel::Linear { penalty: 3 });
        let aff = blosum(GapModel::Affine {
            open: 10,
            extend: 2,
        });
        assert_eq!(
            sw_score(&s, &t, &lin).score,
            sw_score_linear(&s, &t, &lin).score
        );
        assert_eq!(
            sw_score(&s, &t, &aff).score,
            sw_score_affine(&s, &t, &aff).score
        );
    }

    #[test]
    fn empty_inputs_score_zero() {
        let s = Alphabet::Protein.encode(b"MKV").unwrap();
        let e: Vec<u8> = vec![];
        for scoring in [
            blosum(GapModel::Linear { penalty: 2 }),
            blosum(GapModel::Affine { open: 5, extend: 1 }),
        ] {
            let hit = sw_score(&s, &e, &scoring);
            assert_eq!(hit.score, 0);
            assert_eq!((hit.s_end, hit.t_end), (0, 0));
            assert_eq!(sw_score(&e, &e, &scoring).score, 0);
        }
    }

    #[test]
    #[should_panic(expected = "affine")]
    fn linear_kernel_rejects_affine_model() {
        let s = Alphabet::Protein.encode(b"MK").unwrap();
        sw_score_linear(&s, &s, &blosum(GapModel::Affine { open: 5, extend: 1 }));
    }
}
