//! Substitution matrices and gap models.
//!
//! A score is associated with each alignment column (paper §II): a reward
//! for a match, a penalty for a mismatch — generalised here to a full
//! substitution matrix for proteins — and a penalty for a gap, either linear
//! (Eq. 1) or affine (Gotoh's model, §II-A-3, where opening a gap costs more
//! than extending one).

use swhybrid_seq::alphabet::Alphabet;

mod matrices;
pub use matrices::{BLOSUM50, BLOSUM62, PAM250};

/// Gap penalty model. Penalties are stored as **positive magnitudes** and
/// subtracted by the kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapModel {
    /// Every gap column costs `penalty` (the model of the paper's Eq. 1).
    Linear {
        /// Cost of each gap column (positive).
        penalty: i32,
    },
    /// A gap of length `L` costs `open + L × extend` (Gotoh): the *first*
    /// column of a gap costs `open + extend`, each following column `extend`.
    Affine {
        /// Additional cost of starting a gap (positive).
        open: i32,
        /// Cost of each gap column (positive).
        extend: i32,
    },
}

impl GapModel {
    /// Cost of a gap of `len` columns (positive magnitude).
    #[inline]
    pub fn cost(self, len: usize) -> i64 {
        match self {
            GapModel::Linear { penalty } => penalty as i64 * len as i64,
            GapModel::Affine { open, extend } => {
                if len == 0 {
                    0
                } else {
                    open as i64 + extend as i64 * len as i64
                }
            }
        }
    }

    /// Cost of opening a new gap (first column).
    #[inline]
    pub fn open_cost(self) -> i32 {
        match self {
            GapModel::Linear { penalty } => penalty,
            GapModel::Affine { open, extend } => open + extend,
        }
    }

    /// Cost of extending an existing gap by one column.
    #[inline]
    pub fn extend_cost(self) -> i32 {
        match self {
            GapModel::Linear { penalty } => penalty,
            GapModel::Affine { extend, .. } => extend,
        }
    }
}

/// A substitution matrix over the codes of an [`Alphabet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubstMatrix {
    /// Human-readable name (e.g. `"BLOSUM62"`).
    pub name: String,
    /// The alphabet whose codes index the matrix.
    pub alphabet: Alphabet,
    dim: usize,
    scores: Vec<i8>,
}

impl SubstMatrix {
    /// Build from a flat row-major table of `dim × dim` scores.
    pub fn from_flat(name: impl Into<String>, alphabet: Alphabet, scores: Vec<i8>) -> SubstMatrix {
        let dim = alphabet.size();
        assert_eq!(
            scores.len(),
            dim * dim,
            "substitution table must be {dim}×{dim}"
        );
        SubstMatrix {
            name: name.into(),
            alphabet,
            dim,
            scores,
        }
    }

    /// The standard BLOSUM62 protein matrix (NCBI 24×24).
    pub fn blosum62() -> SubstMatrix {
        SubstMatrix::from_flat("BLOSUM62", Alphabet::Protein, BLOSUM62.to_vec())
    }

    /// The standard BLOSUM50 protein matrix (NCBI 24×24).
    pub fn blosum50() -> SubstMatrix {
        SubstMatrix::from_flat("BLOSUM50", Alphabet::Protein, BLOSUM50.to_vec())
    }

    /// The classic PAM250 protein matrix (NCBI 24×24).
    pub fn pam250() -> SubstMatrix {
        SubstMatrix::from_flat("PAM250", Alphabet::Protein, PAM250.to_vec())
    }

    /// A simple match/mismatch matrix (the paper's Fig. 1/2 uses
    /// `ma = +1`, `mi = -1` over the DNA alphabet). The unknown code scores
    /// `mismatch` against everything including itself.
    pub fn match_mismatch(alphabet: Alphabet, ma: i8, mi: i8) -> SubstMatrix {
        let dim = alphabet.size();
        let unknown = alphabet.unknown_code() as usize;
        let mut scores = vec![mi; dim * dim];
        for i in 0..dim {
            if i != unknown {
                scores[i * dim + i] = ma;
            }
        }
        SubstMatrix::from_flat(format!("match/mismatch({ma},{mi})"), alphabet, scores)
    }

    /// Dimension of the (square) matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Score of aligning codes `a` and `b`.
    #[inline]
    pub fn score(&self, a: u8, b: u8) -> i32 {
        debug_assert!((a as usize) < self.dim && (b as usize) < self.dim);
        self.scores[a as usize * self.dim + b as usize] as i32
    }

    /// Raw row for code `a` — used to build SIMD query profiles.
    #[inline]
    pub fn row(&self, a: u8) -> &[i8] {
        &self.scores[a as usize * self.dim..(a as usize + 1) * self.dim]
    }

    /// Minimum entry of the matrix.
    pub fn min_score(&self) -> i32 {
        self.scores.iter().copied().min().unwrap_or(0) as i32
    }

    /// Maximum entry of the matrix.
    pub fn max_score(&self) -> i32 {
        self.scores.iter().copied().max().unwrap_or(0) as i32
    }

    /// Whether the matrix is symmetric (all standard matrices are).
    pub fn is_symmetric(&self) -> bool {
        for i in 0..self.dim {
            for j in 0..i {
                if self.scores[i * self.dim + j] != self.scores[j * self.dim + i] {
                    return false;
                }
            }
        }
        true
    }
}

/// A complete scoring scheme: substitution matrix + gap model.
#[derive(Debug, Clone, PartialEq)]
pub struct Scoring {
    /// Substitution matrix.
    pub matrix: SubstMatrix,
    /// Gap model.
    pub gap: GapModel,
}

impl Scoring {
    /// BLOSUM62 with the CUDASW++ default affine gaps (open 10, extend 2).
    pub fn blosum62_affine() -> Scoring {
        Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine {
                open: 10,
                extend: 2,
            },
        }
    }

    /// The paper's didactic DNA scheme: `ma = +1`, `mi = −1`, `g = −2`
    /// (Fig. 1 and Fig. 2).
    pub fn paper_dna() -> Scoring {
        Scoring {
            matrix: SubstMatrix::match_mismatch(Alphabet::Dna, 1, -1),
            gap: GapModel::Linear { penalty: 2 },
        }
    }

    /// Substitution score for codes `a`, `b`.
    #[inline]
    pub fn sub(&self, a: u8, b: u8) -> i32 {
        self.matrix.score(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swhybrid_seq::alphabet::PROTEIN_RESIDUES;

    fn code(res: u8) -> u8 {
        Alphabet::Protein.encode_byte(res).unwrap()
    }

    #[test]
    fn blosum62_spot_values() {
        let m = SubstMatrix::blosum62();
        assert_eq!(m.score(code(b'A'), code(b'A')), 4);
        assert_eq!(m.score(code(b'W'), code(b'W')), 11);
        assert_eq!(m.score(code(b'C'), code(b'C')), 9);
        assert_eq!(m.score(code(b'A'), code(b'R')), -1);
        assert_eq!(m.score(code(b'W'), code(b'A')), -3);
        assert_eq!(m.score(code(b'*'), code(b'*')), 1);
        assert_eq!(m.score(code(b'A'), code(b'*')), -4);
    }

    #[test]
    fn blosum50_spot_values() {
        let m = SubstMatrix::blosum50();
        assert_eq!(m.score(code(b'A'), code(b'A')), 5);
        assert_eq!(m.score(code(b'W'), code(b'W')), 15);
        assert_eq!(m.score(code(b'C'), code(b'C')), 13);
        assert_eq!(m.score(code(b'*'), code(b'*')), 1);
    }

    #[test]
    fn pam250_spot_values() {
        let m = SubstMatrix::pam250();
        assert_eq!(m.score(code(b'W'), code(b'W')), 17);
        assert_eq!(m.score(code(b'C'), code(b'C')), 12);
        assert_eq!(m.score(code(b'A'), code(b'A')), 2);
    }

    #[test]
    fn standard_matrices_are_symmetric() {
        for m in [
            SubstMatrix::blosum62(),
            SubstMatrix::blosum50(),
            SubstMatrix::pam250(),
        ] {
            assert!(m.is_symmetric(), "{} is not symmetric", m.name);
        }
    }

    #[test]
    fn diagonal_dominates_rows_for_blosum62() {
        // For the 20 standard amino acids, the self-score is the row maximum.
        let m = SubstMatrix::blosum62();
        for a in 0..20u8 {
            let diag = m.score(a, a);
            for b in 0..20u8 {
                if a != b {
                    assert!(
                        m.score(a, b) < diag,
                        "{}-{} >= {}-{}",
                        PROTEIN_RESIDUES[a as usize] as char,
                        PROTEIN_RESIDUES[b as usize] as char,
                        PROTEIN_RESIDUES[a as usize] as char,
                        PROTEIN_RESIDUES[a as usize] as char,
                    );
                }
            }
        }
    }

    #[test]
    fn match_mismatch_matrix() {
        let m = SubstMatrix::match_mismatch(Alphabet::Dna, 1, -1);
        assert_eq!(m.score(0, 0), 1);
        assert_eq!(m.score(0, 1), -1);
        // Unknown (N) never matches, not even itself.
        let n = Alphabet::Dna.unknown_code();
        assert_eq!(m.score(n, n), -1);
        assert!(m.is_symmetric());
    }

    #[test]
    fn min_max_scores() {
        let m = SubstMatrix::blosum62();
        assert_eq!(m.max_score(), 11);
        assert_eq!(m.min_score(), -4);
    }

    #[test]
    fn gap_costs_linear() {
        let g = GapModel::Linear { penalty: 2 };
        assert_eq!(g.cost(0), 0);
        assert_eq!(g.cost(3), 6);
        assert_eq!(g.open_cost(), 2);
        assert_eq!(g.extend_cost(), 2);
    }

    #[test]
    fn gap_costs_affine() {
        let g = GapModel::Affine {
            open: 10,
            extend: 2,
        };
        assert_eq!(g.cost(0), 0);
        assert_eq!(g.cost(1), 12);
        assert_eq!(g.cost(5), 20);
        assert_eq!(g.open_cost(), 12);
        assert_eq!(g.extend_cost(), 2);
    }

    #[test]
    fn affine_with_zero_open_equals_linear() {
        let a = GapModel::Affine { open: 0, extend: 3 };
        let l = GapModel::Linear { penalty: 3 };
        for len in 0..10 {
            assert_eq!(a.cost(len), l.cost(len));
        }
    }

    #[test]
    fn row_matches_score() {
        let m = SubstMatrix::blosum62();
        for a in 0..24u8 {
            let row = m.row(a);
            for b in 0..24u8 {
                assert_eq!(row[b as usize] as i32, m.score(a, b));
            }
        }
    }

    #[test]
    #[should_panic(expected = "substitution table")]
    fn from_flat_rejects_wrong_size() {
        SubstMatrix::from_flat("bad", Alphabet::Dna, vec![0; 7]);
    }
}
