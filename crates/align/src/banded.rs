//! Banded Smith-Waterman.
//!
//! When two sequences are known to be similar, the optimal local alignment
//! stays close to the main diagonal and the DP can be restricted to a band
//! `|i - j - offset| ≤ k`, reducing work from `O(mn)` to `O((m+n)k)`.
//! Used as a fast re-alignment step after a score-only pass has located the
//! best cell, and as an ablation in the benchmarks.

use crate::scoring::{GapModel, Scoring};

/// Banded, score-only, linear-gap Smith-Waterman.
///
/// `band` is the half-width `k`: cell `(i, j)` (1-based) participates iff
/// `|j - i - offset| ≤ k`. With `band ≥ max(m, n)` the result equals the
/// unbanded kernel.
pub fn sw_score_banded(s: &[u8], t: &[u8], scoring: &Scoring, band: usize, offset: isize) -> i32 {
    let g = match scoring.gap {
        GapModel::Linear { penalty } => penalty,
        GapModel::Affine { .. } => panic!("banded kernel implements linear gaps"),
    };
    let n = t.len();
    if s.is_empty() || t.is_empty() {
        return 0;
    }
    const NEG_INF: i32 = i32::MIN / 4;
    // prev[j] holds H[i-1][j]; cells outside the band read as NEG_INF so a
    // path can never leave and re-enter the band.
    let mut prev = vec![NEG_INF; n + 1];
    let mut cur = vec![NEG_INF; n + 1];
    // Row 0 border: zero inside the band's column range for i = 0.
    for (j, p) in prev.iter_mut().enumerate() {
        let diag_dist = j as isize - offset;
        if diag_dist.unsigned_abs() <= band {
            *p = 0;
        }
    }
    let mut best = 0i32;
    for (i, &si) in s.iter().enumerate() {
        let i1 = (i + 1) as isize;
        let row = scoring.matrix.row(si);
        let lo = (i1 + offset - band as isize).max(1) as usize;
        let hi = (i1 + offset + band as isize).min(n as isize);
        if hi < lo as isize {
            // Band has left the matrix: nothing more can improve the score.
            break;
        }
        let hi = hi as usize;
        for c in cur.iter_mut() {
            *c = NEG_INF;
        }
        // Column 0 border is 0 when it is inside the band.
        if (0 - i1 - offset).unsigned_abs() <= band {
            cur[0] = 0;
        }
        for j in lo..=hi {
            let diag = if prev[j - 1] == NEG_INF {
                0
            } else {
                prev[j - 1]
            };
            let d = diag + row[t[j - 1] as usize] as i32;
            let up = if prev[j] == NEG_INF {
                NEG_INF
            } else {
                prev[j] - g
            };
            let left = if cur[j - 1] == NEG_INF {
                NEG_INF
            } else {
                cur[j - 1] - g
            };
            let v = d.max(up).max(left).max(0);
            cur[j] = v;
            if v > best {
                best = v;
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::{GapModel, SubstMatrix};
    use crate::sw;
    use rand::{RngExt, SeedableRng};
    use swhybrid_seq::Alphabet;

    fn blosum_linear(g: i32) -> Scoring {
        Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Linear { penalty: g },
        }
    }

    #[test]
    fn full_band_equals_unbanded() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(51);
        let scoring = blosum_linear(3);
        for _ in 0..30 {
            let sl = rng.random_range(1..50);
            let tl = rng.random_range(1..50);
            let s: Vec<u8> = (0..sl).map(|_| rng.random_range(0..20u8)).collect();
            let t: Vec<u8> = (0..tl).map(|_| rng.random_range(0..20u8)).collect();
            let banded = sw_score_banded(&s, &t, &scoring, sl.max(tl) + 1, 0);
            assert_eq!(banded, sw::sw_score(&s, &t, &scoring));
        }
    }

    #[test]
    fn banded_score_never_exceeds_unbanded() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(53);
        let scoring = blosum_linear(2);
        for _ in 0..30 {
            let s: Vec<u8> = (0..40).map(|_| rng.random_range(0..20u8)).collect();
            let t: Vec<u8> = (0..40).map(|_| rng.random_range(0..20u8)).collect();
            for band in [0usize, 1, 3, 8] {
                assert!(
                    sw_score_banded(&s, &t, &scoring, band, 0) <= sw::sw_score(&s, &t, &scoring)
                );
            }
        }
    }

    #[test]
    fn wide_enough_band_recovers_similar_pair_score() {
        // Two near-identical sequences differ by one insertion: a band of 2
        // suffices to capture the optimal alignment.
        let s = Alphabet::Protein.encode(b"MKVLAWCDEFGHIKLMNPQRST").unwrap();
        let t = Alphabet::Protein
            .encode(b"MKVLAWCDEFGGHIKLMNPQRST")
            .unwrap();
        let scoring = blosum_linear(4);
        let full = sw::sw_score(&s, &t, &scoring);
        assert_eq!(sw_score_banded(&s, &t, &scoring, 2, 0), full);
    }

    #[test]
    fn offset_shifts_the_band() {
        // The similar region sits at a diagonal offset of +5 in t.
        let s = Alphabet::Protein.encode(b"MKVLAWCDEF").unwrap();
        let t = Alphabet::Protein.encode(b"GGGGGMKVLAWCDEF").unwrap();
        let scoring = blosum_linear(4);
        let full = sw::sw_score(&s, &t, &scoring);
        // A tight band at offset 0 misses the alignment...
        assert!(sw_score_banded(&s, &t, &scoring, 1, 0) < full);
        // ...but the same width at offset +5 finds it.
        assert_eq!(sw_score_banded(&s, &t, &scoring, 1, 5), full);
    }

    #[test]
    fn zero_band_is_diagonal_only() {
        let s = Alphabet::Dna.encode(b"ACGT").unwrap();
        let scoring = Scoring::paper_dna();
        // Diagonal-only on identical sequences = full match run.
        assert_eq!(sw_score_banded(&s, &s, &scoring, 0, 0), 4);
    }

    #[test]
    fn empty_inputs() {
        let s = Alphabet::Dna.encode(b"ACGT").unwrap();
        let e: Vec<u8> = vec![];
        assert_eq!(sw_score_banded(&s, &e, &Scoring::paper_dna(), 3, 0), 0);
        assert_eq!(sw_score_banded(&e, &s, &Scoring::paper_dna(), 3, 0), 0);
    }
}
