//! Cell-count and GCUPS helpers.
//!
//! The paper's performance metric is **GCUPS** — Billions (Giga) of DP Cell
//! Updates Per Second. Comparing a query of `m` residues against a subject
//! of `n` residues updates `m × n` cells; a query against a whole database
//! updates `m × total_residues` cells.

/// Cells updated aligning a query of `query_len` residues against a subject
/// of `subject_len` residues.
#[inline]
pub fn cells(query_len: usize, subject_len: usize) -> u64 {
    query_len as u64 * subject_len as u64
}

/// Cells updated comparing a query against a whole database.
#[inline]
pub fn cells_vs_db(query_len: usize, db_residues: u64) -> u64 {
    query_len as u64 * db_residues
}

/// GCUPS for `cells` updated in `seconds` (0.0 when `seconds == 0`).
#[inline]
pub fn gcups(cells: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        0.0
    } else {
        cells as f64 / seconds / 1e9
    }
}

/// Seconds needed to update `cells` at a sustained `gcups` rate.
#[inline]
pub fn seconds_for(cells: u64, gcups: f64) -> f64 {
    assert!(gcups > 0.0, "rate must be positive");
    cells as f64 / (gcups * 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_products() {
        assert_eq!(cells(100, 200), 20_000);
        assert_eq!(cells(0, 200), 0);
        assert_eq!(cells_vs_db(5000, 190_814_275), 5000 * 190_814_275);
    }

    #[test]
    fn gcups_round_trip() {
        let c = 2_700_000_000u64; // 2.7 Gcells
        let secs = 1.0;
        assert!((gcups(c, secs) - 2.7).abs() < 1e-12);
        assert!((seconds_for(c, 2.7) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gcups_zero_time_is_zero() {
        assert_eq!(gcups(100, 0.0), 0.0);
        assert_eq!(gcups(100, -1.0), 0.0);
    }

    #[test]
    fn paper_headline_magnitudes() {
        // 40 queries (~102k residues) × SwissProt (~190.8M residues)
        // ≈ 1.95e13 cells; at 2.7 GCUPS that is ~7,200 s (the paper's
        // "7,190 seconds on one SSE core" headline).
        let c = cells_vs_db(102_000, 190_814_275);
        let secs = seconds_for(c, 2.7);
        assert!((7000.0..7500.0).contains(&secs), "secs = {secs}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn seconds_for_rejects_zero_rate() {
        seconds_for(100, 0.0);
    }
}
