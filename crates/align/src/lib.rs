//! Smith-Waterman / Gotoh / Needleman-Wunsch alignment algorithms.
//!
//! This crate is the algorithmic substrate of `swhybrid` (paper §II):
//!
//! * [`evalue`] — Karlin–Altschul bit scores and E-values,
//! * [`scoring`] — substitution matrices (BLOSUM62/50, PAM250,
//!   match/mismatch) and linear / affine gap models,
//! * [`alignment`] — alignment representation (ops, CIGAR, pretty printing
//!   as in the paper's Fig. 1),
//! * [`sw`] — the classic quadratic-space Smith-Waterman (Eq. 1: phase 1
//!   builds the similarity matrix, phase 2 obtains the optimal local
//!   alignment by traceback, Fig. 2),
//! * [`gotoh`] — the affine-gap variant with the three DP matrices H/E/F
//!   (§II-A-3),
//! * [`nw`] — Needleman-Wunsch global alignment (used by the didactic
//!   Fig. 1 example and by Hirschberg),
//! * [`score_only`] — linear-space score-only kernels; these are the
//!   reference implementations the SIMD kernels are validated against,
//! * [`banded`] — banded Smith-Waterman,
//! * [`hirschberg`] — linear-space alignment recovery (divide and conquer,
//!   linear gaps),
//! * [`myers_miller`] — linear-space alignment recovery with affine gaps,
//! * [`stats`] — GCUPS and cell-count helpers (the paper's performance
//!   metric: Billions of Cell Updates Per Second).
//!
//! All kernels operate on *encoded* sequences (`&[u8]` alphabet codes, see
//! `swhybrid_seq::alphabet`) so that a substitution score is a single table
//! lookup.

pub mod alignment;
pub mod banded;
pub mod evalue;
pub mod gotoh;
pub mod hirschberg;
pub mod myers_miller;
pub mod nw;
pub mod score_only;
pub mod scoring;
pub mod stats;
pub mod sw;

pub use alignment::{AlignOp, Alignment};
pub use scoring::{GapModel, Scoring, SubstMatrix};
