//! Karlin–Altschul statistics: bit scores and E-values for local alignment
//! scores.
//!
//! CUDASW++-class tools report raw SW scores; production database search
//! additionally reports how *surprising* a score is. Under the
//! Karlin–Altschul model, the expected number of alignments with score ≥ S
//! between a query of length `m` and a database of `n` total residues is
//!
//! ```text
//! E = K · m' · n' · e^(−λS)
//! ```
//!
//! with edge-corrected lengths `m' = max(1, m − l)`, `n' = max(1, n − N·l)`
//! (`l` the expected alignment length, `N` the sequence count), and the bit
//! score `S' = (λS − ln K) / ln 2` so that `E = m'·n'·2^(−S')`.
//!
//! The `(λ, K)` pairs are the published BLAST parameters for the supported
//! scoring schemes; arbitrary pairs can be supplied with
//! [`KarlinAltschul::custom`].

use crate::scoring::{GapModel, Scoring};

/// Karlin–Altschul parameters for one scoring scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KarlinAltschul {
    /// The scale parameter λ (per score unit).
    pub lambda: f64,
    /// The search-space constant K.
    pub k: f64,
    /// Expected relative entropy H (bits per aligned pair), used for the
    /// edge-effect length correction.
    pub h: f64,
}

impl KarlinAltschul {
    /// Published parameters for the scheme, if known.
    ///
    /// Supported: BLOSUM62 ungapped, BLOSUM62 with affine (11,1), (10,2)
    /// and (10,1) gaps; BLOSUM50 with (10,2) gaps (values from the NCBI
    /// BLAST parameter tables).
    pub fn for_scoring(scoring: &Scoring) -> Option<KarlinAltschul> {
        let name = scoring.matrix.name.as_str();
        match (name, scoring.gap) {
            ("BLOSUM62", GapModel::Linear { .. }) => Some(KarlinAltschul {
                lambda: 0.3176,
                k: 0.134,
                h: 0.40,
            }),
            (
                "BLOSUM62",
                GapModel::Affine {
                    open: 11,
                    extend: 1,
                },
            ) => Some(KarlinAltschul {
                lambda: 0.267,
                k: 0.041,
                h: 0.14,
            }),
            (
                "BLOSUM62",
                GapModel::Affine {
                    open: 10,
                    extend: 1,
                },
            ) => Some(KarlinAltschul {
                lambda: 0.243,
                k: 0.035,
                h: 0.12,
            }),
            (
                "BLOSUM62",
                GapModel::Affine {
                    open: 10,
                    extend: 2,
                },
            ) => Some(KarlinAltschul {
                lambda: 0.293,
                k: 0.075,
                h: 0.27,
            }),
            (
                "BLOSUM50",
                GapModel::Affine {
                    open: 10,
                    extend: 2,
                },
            ) => Some(KarlinAltschul {
                lambda: 0.166,
                k: 0.036,
                h: 0.12,
            }),
            _ => None,
        }
    }

    /// Build from explicit parameters.
    pub fn custom(lambda: f64, k: f64, h: f64) -> KarlinAltschul {
        assert!(
            lambda > 0.0 && k > 0.0 && h > 0.0,
            "parameters must be positive"
        );
        KarlinAltschul { lambda, k, h }
    }

    /// Bit score for a raw score `s`.
    pub fn bit_score(&self, s: i32) -> f64 {
        (self.lambda * s as f64 - self.k.ln()) / std::f64::consts::LN_2
    }

    /// Raw score needed to reach a given bit score (rounded up).
    pub fn raw_score_for_bits(&self, bits: f64) -> i32 {
        ((bits * std::f64::consts::LN_2 + self.k.ln()) / self.lambda).ceil() as i32
    }

    /// Expected alignment length for a raw score (edge correction):
    /// `l ≈ λS / H` with `H` converted from bits to nats.
    fn expected_length(&self, s: i32) -> f64 {
        self.lambda * s as f64 / (self.h * std::f64::consts::LN_2)
    }

    /// E-value of raw score `s` for a query of `query_len` residues against
    /// a database of `db_residues` residues in `db_sequences` sequences.
    pub fn evalue(&self, s: i32, query_len: usize, db_residues: u64, db_sequences: usize) -> f64 {
        let l = self.expected_length(s);
        let m_eff = (query_len as f64 - l).max(1.0);
        let n_eff = (db_residues as f64 - db_sequences as f64 * l).max(db_sequences.max(1) as f64);
        self.k * m_eff * n_eff * (-self.lambda * s as f64).exp()
    }

    /// The raw score at which the E-value crosses `threshold` for the given
    /// search space (useful for score cutoffs).
    pub fn score_threshold(
        &self,
        threshold: f64,
        query_len: usize,
        db_residues: u64,
        db_sequences: usize,
    ) -> i32 {
        assert!(threshold > 0.0, "threshold must be positive");
        let mut s = 1;
        while self.evalue(s, query_len, db_residues, db_sequences) > threshold {
            s += 1;
            if s > 1_000_000 {
                break; // degenerate parameters
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::SubstMatrix;

    fn default_params() -> KarlinAltschul {
        KarlinAltschul::for_scoring(&Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine {
                open: 10,
                extend: 2,
            },
        })
        .expect("published parameters exist")
    }

    #[test]
    fn known_schemes_have_parameters() {
        assert!(KarlinAltschul::for_scoring(&Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Affine {
                open: 11,
                extend: 1
            },
        })
        .is_some());
        assert!(KarlinAltschul::for_scoring(&Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Linear { penalty: 4 },
        })
        .is_some());
        // Unusual penalties have no published values.
        assert!(KarlinAltschul::for_scoring(&Scoring {
            matrix: SubstMatrix::pam250(),
            gap: GapModel::Affine { open: 3, extend: 3 },
        })
        .is_none());
    }

    #[test]
    fn bit_score_is_affine_in_raw_score() {
        let p = default_params();
        let b10 = p.bit_score(10);
        let b20 = p.bit_score(20);
        let b30 = p.bit_score(30);
        assert!((b30 - b20 - (b20 - b10)).abs() < 1e-9);
        assert!(b20 > b10);
    }

    #[test]
    fn raw_and_bit_scores_round_trip() {
        let p = default_params();
        for s in [20, 50, 100, 500] {
            let bits = p.bit_score(s);
            let back = p.raw_score_for_bits(bits);
            assert!((back - s).abs() <= 1, "{s} → {bits} → {back}");
        }
    }

    #[test]
    fn evalue_decreases_exponentially_with_score() {
        let p = default_params();
        let e = |s| p.evalue(s, 350, 190_000_000, 500_000);
        assert!(e(40) > e(60));
        assert!(e(60) > e(100));
        // One more unit of score divides E by roughly e^λ.
        let ratio = e(100) / e(101);
        assert!(
            (ratio - p.lambda.exp()).abs() / p.lambda.exp() < 0.05,
            "ratio {ratio}"
        );
    }

    #[test]
    fn evalue_scales_with_search_space() {
        let p = default_params();
        let small = p.evalue(80, 350, 12_000_000, 25_000);
        let big = p.evalue(80, 350, 190_000_000, 500_000);
        assert!(big > small * 5.0, "big {big} vs small {small}");
    }

    #[test]
    fn high_scores_are_significant_in_swissprot_space() {
        // A planted-homolog score (≥ 1,000) must be overwhelming even
        // against all of SwissProt.
        let p = default_params();
        let e = p.evalue(1000, 400, 190_000_000, 537_505);
        assert!(e < 1e-100, "E = {e}");
        // While a random-noise score (~50) is not.
        assert!(p.evalue(50, 400, 190_000_000, 537_505) > 1e-3);
    }

    #[test]
    fn score_threshold_crosses_at_the_right_point() {
        let p = default_params();
        let s = p.score_threshold(0.001, 350, 190_000_000, 537_505);
        assert!(p.evalue(s, 350, 190_000_000, 537_505) <= 0.001);
        assert!(p.evalue(s - 1, 350, 190_000_000, 537_505) > 0.001);
    }

    #[test]
    #[should_panic(expected = "parameters must be positive")]
    fn custom_rejects_nonpositive() {
        KarlinAltschul::custom(0.0, 0.1, 0.1);
    }
}
