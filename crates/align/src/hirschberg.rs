//! Linear-space alignment recovery (Hirschberg's divide and conquer).
//!
//! The related work the paper builds on ([4], Sandes & de Melo, "SW
//! alignment of huge sequences with GPU in linear space") recovers
//! alignments without a quadratic traceback matrix. This module implements
//! the classic CPU analogue:
//!
//! * [`hirschberg_global`] — global alignment in `O(m + n)` space by
//!   recursively splitting the query at its midpoint,
//! * [`hirschberg_local`] — optimal *local* alignment in linear space by
//!   locating the end cell with a forward score-only pass, the start cell
//!   with a reverse pass, and aligning the delimited substrings globally.
//!
//! Only the linear gap model is supported (the affine extension — Myers &
//! Miller — is noted as future work in `DESIGN.md`).

use crate::alignment::{AlignOp, Alignment};
use crate::nw::{nw_align, nw_last_row};
use crate::score_only::sw_score_linear;
use crate::scoring::{GapModel, Scoring};

/// Global alignment in linear space. Equivalent to [`nw_align`] (same score,
/// possibly a different co-optimal alignment).
pub fn hirschberg_global(s: &[u8], t: &[u8], scoring: &Scoring) -> Alignment {
    assert!(
        matches!(scoring.gap, GapModel::Linear { .. }),
        "hirschberg implements linear gaps"
    );
    let mut ops = Vec::with_capacity(s.len() + t.len());
    hirsch_rec(s, t, scoring, &mut ops);
    let score = {
        // Recompute the score from the ops (linear space, single pass).
        let a = Alignment {
            score: 0,
            s_range: (0, s.len()),
            t_range: (0, t.len()),
            ops: ops.clone(),
        };
        a.rescore(s, t, scoring)
    };
    Alignment {
        score,
        s_range: (0, s.len()),
        t_range: (0, t.len()),
        ops,
    }
}

fn hirsch_rec(s: &[u8], t: &[u8], scoring: &Scoring, ops: &mut Vec<AlignOp>) {
    if s.is_empty() {
        ops.extend(std::iter::repeat_n(AlignOp::Insert, t.len()));
        return;
    }
    if s.len() == 1 || t.is_empty() {
        // Small base case: quadratic DP on a 1-row problem is linear anyway.
        ops.extend(nw_align(s, t, scoring).ops);
        return;
    }
    let mid = s.len() / 2;
    let fwd = nw_last_row(&s[..mid], t, scoring);
    let rev = {
        let s_rev: Vec<u8> = s[mid..].iter().rev().copied().collect();
        let t_rev: Vec<u8> = t.iter().rev().copied().collect();
        nw_last_row(&s_rev, &t_rev, scoring)
    };
    let n = t.len();
    let split = (0..=n)
        .max_by_key(|&j| fwd[j] as i64 + rev[n - j] as i64)
        .expect("non-empty range");
    hirsch_rec(&s[..mid], &t[..split], scoring, ops);
    hirsch_rec(&s[mid..], &t[split..], scoring, ops);
}

/// Optimal local alignment in linear space (linear gaps).
pub fn hirschberg_local(s: &[u8], t: &[u8], scoring: &Scoring) -> Alignment {
    assert!(
        matches!(scoring.gap, GapModel::Linear { .. }),
        "hirschberg implements linear gaps"
    );
    // 1. Forward pass: where does the optimal local alignment end?
    let end = sw_score_linear(s, t, scoring);
    if end.score == 0 {
        return Alignment {
            score: 0,
            s_range: (0, 0),
            t_range: (0, 0),
            ops: vec![],
        };
    }
    // 2. Reverse pass over the prefixes, *anchored* at the end cell: the
    //    alignment must consume the entire reversed prefixes up to its start
    //    (an unanchored SW scan could lock onto a different co-optimal
    //    region and break step 3). This is an NW-style DP whose maximum
    //    cell marks the start of the optimal local alignment.
    let s_pre: Vec<u8> = s[..end.s_end].iter().rev().copied().collect();
    let t_pre: Vec<u8> = t[..end.t_end].iter().rev().copied().collect();
    let (rev_score, rev_s, rev_t) = nw_best_cell(&s_pre, &t_pre, scoring);
    debug_assert_eq!(rev_score, end.score, "forward/reverse score mismatch");
    let s_start = end.s_end - rev_s;
    let t_start = end.t_end - rev_t;
    // 3. Global alignment of the delimited substrings, linear space.
    let sub = hirschberg_global(&s[s_start..end.s_end], &t[t_start..end.t_end], scoring);
    debug_assert_eq!(sub.score, end.score, "substring global != local score");
    Alignment {
        score: sub.score,
        s_range: (s_start, end.s_end),
        t_range: (t_start, end.t_end),
        ops: sub.ops,
    }
}

/// Maximum cell of the global (NW) DP matrix of `s` × `t`, in linear space.
///
/// Returns `(value, i, j)` with 1-based DP coordinates; the borders
/// (`-g·i`, `-g·j`) participate, so the result is well-defined even for
/// empty inputs (`(0, 0, 0)`).
fn nw_best_cell(s: &[u8], t: &[u8], scoring: &Scoring) -> (i32, usize, usize) {
    let g = match scoring.gap {
        GapModel::Linear { penalty } => penalty,
        GapModel::Affine { .. } => unreachable!("checked by callers"),
    };
    let n = t.len();
    let mut row: Vec<i32> = (0..=n as i32).map(|j| -(g * j)).collect();
    let mut best = (0i32, 0usize, 0usize);
    for (i, &si) in s.iter().enumerate() {
        let matrix_row = scoring.matrix.row(si);
        let mut diag = row[0];
        row[0] = -(g * (i as i32 + 1));
        for j in 1..=n {
            let d = diag + matrix_row[t[j - 1] as usize] as i32;
            let up = row[j] - g;
            let left = row[j - 1] - g;
            diag = row[j];
            row[j] = d.max(up).max(left);
            if row[j] > best.0 {
                best = (row[j], i + 1, j);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::SubstMatrix;
    use crate::sw;
    use rand::{RngExt, SeedableRng};
    use swhybrid_seq::Alphabet;

    fn blosum_linear(g: i32) -> Scoring {
        Scoring {
            matrix: SubstMatrix::blosum62(),
            gap: GapModel::Linear { penalty: g },
        }
    }

    #[test]
    fn global_matches_nw_score_on_random_pairs() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(61);
        let scoring = blosum_linear(3);
        for _ in 0..30 {
            let sl = rng.random_range(0..50);
            let tl = rng.random_range(0..50);
            let s: Vec<u8> = (0..sl).map(|_| rng.random_range(0..20u8)).collect();
            let t: Vec<u8> = (0..tl).map(|_| rng.random_range(0..20u8)).collect();
            let h = hirschberg_global(&s, &t, &scoring);
            let reference = nw_align(&s, &t, &scoring);
            assert_eq!(h.score, reference.score, "sl={sl} tl={tl}");
            assert_eq!(h.rescore(&s, &t, &scoring), h.score);
        }
    }

    #[test]
    fn local_matches_full_sw_on_random_pairs() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(67);
        let scoring = blosum_linear(3);
        for _ in 0..30 {
            let sl = rng.random_range(1..60);
            let tl = rng.random_range(1..60);
            let s: Vec<u8> = (0..sl).map(|_| rng.random_range(0..20u8)).collect();
            let t: Vec<u8> = (0..tl).map(|_| rng.random_range(0..20u8)).collect();
            let h = hirschberg_local(&s, &t, &scoring);
            assert_eq!(h.score, sw::sw_score(&s, &t, &scoring));
            if h.score > 0 {
                assert_eq!(h.rescore(&s, &t, &scoring), h.score);
            }
        }
    }

    #[test]
    fn local_finds_embedded_motif() {
        let scoring = blosum_linear(8);
        let s = Alphabet::Protein.encode(b"GGGGGMKVLAWGGGGG").unwrap();
        let t = Alphabet::Protein.encode(b"PPPMKVLAWPPP").unwrap();
        let a = hirschberg_local(&s, &t, &scoring);
        // MKVLAW self-score: 5+5+4+4+4+11 = 33.
        assert_eq!(a.score, 33);
        assert_eq!(a.s_range, (5, 11));
        assert_eq!(a.t_range, (3, 9));
        assert_eq!(a.cigar(), "6=");
    }

    #[test]
    fn local_zero_score_for_disjoint_content() {
        let scoring = Scoring::paper_dna();
        let s = Alphabet::Dna.encode(b"AAAA").unwrap();
        let t = Alphabet::Dna.encode(b"GGGG").unwrap();
        let a = hirschberg_local(&s, &t, &scoring);
        assert_eq!(a.score, 0);
        assert!(a.is_empty());
    }

    #[test]
    fn global_empty_cases() {
        let scoring = Scoring::paper_dna();
        let s = Alphabet::Dna.encode(b"ACG").unwrap();
        let e: Vec<u8> = vec![];
        assert_eq!(hirschberg_global(&s, &e, &scoring).cigar(), "3D");
        assert_eq!(hirschberg_global(&e, &s, &scoring).cigar(), "3I");
        assert!(hirschberg_global(&e, &e, &scoring).is_empty());
    }
}
